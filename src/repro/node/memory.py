"""Memory-pool accounting for action containers."""

from __future__ import annotations

__all__ = ["MemoryPool"]


class MemoryPool:
    """Synchronous accounting of the node's action-container memory.

    The pool never blocks: callers check :meth:`can_reserve` / free memory
    by evicting before calling :meth:`reserve`.  This mirrors the OpenWhisk
    invoker, which makes eviction decisions synchronously.
    """

    def __init__(self, capacity_mb: int) -> None:
        if capacity_mb <= 0:
            raise ValueError(f"capacity_mb must be positive, got {capacity_mb!r}")
        self.capacity_mb = int(capacity_mb)
        self.used_mb = 0
        #: High-water mark, for diagnostics.
        self.peak_used_mb = 0

    @property
    def free_mb(self) -> int:
        return self.capacity_mb - self.used_mb

    def can_reserve(self, amount_mb: int) -> bool:
        return amount_mb <= self.free_mb

    def reserve(self, amount_mb: int) -> None:
        if amount_mb < 0:
            raise ValueError("cannot reserve negative memory")
        if amount_mb > self.free_mb:
            raise MemoryError(
                f"memory pool exhausted: need {amount_mb} MiB, free {self.free_mb} MiB"
            )
        self.used_mb += amount_mb
        self.peak_used_mb = max(self.peak_used_mb, self.used_mb)

    def release(self, amount_mb: int) -> None:
        if amount_mb < 0:
            raise ValueError("cannot release negative memory")
        if amount_mb > self.used_mb:
            raise ValueError(
                f"releasing {amount_mb} MiB but only {self.used_mb} MiB in use"
            )
        self.used_mb -= amount_mb
