"""Action-container lifecycle.

States::

    CREATING ──▶ HOT ⟷ PAUSED        (warm: HOT or PAUSED)
                  │        │
                  ▼        ▼
                DEAD     DEAD         (evicted / removed)

A *hot* container has recently run a call and can accept another one
immediately; after :attr:`~repro.node.config.NodeConfig.pause_grace_s` of
idleness it is paused (freeing its CPU cgroup but keeping memory).  A
paused container needs a daemon ``unpause`` before running again.
"""

from __future__ import annotations

import enum
from itertools import count
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workload.functions import FunctionSpec

__all__ = ["Container", "ContainerState"]

_ids = count(1)


class ContainerState(enum.Enum):
    CREATING = "creating"
    HOT = "hot"
    PAUSING = "pausing"
    PAUSED = "paused"
    DEAD = "dead"


class Container:
    """One action container bound to a function (or a prewarm shell)."""

    __slots__ = (
        "cid",
        "function",
        "memory_mb",
        "state",
        "busy",
        "created_at",
        "last_used",
        "calls_served",
        "pause_version",
    )

    def __init__(
        self,
        function: Optional["FunctionSpec"],
        memory_mb: int,
        created_at: float,
    ) -> None:
        self.cid = next(_ids)
        #: None for an unspecialised prewarm container.
        self.function = function
        self.memory_mb = memory_mb
        self.state = ContainerState.CREATING
        #: True while executing a call.
        self.busy = False
        self.created_at = created_at
        self.last_used = created_at
        self.calls_served = 0
        #: Monotone counter invalidating superseded pause timers.
        self.pause_version = 0

    @property
    def is_warm(self) -> bool:
        """Initialized and idle (HOT, PAUSING or PAUSED), i.e. reusable."""
        return not self.busy and self.state in (
            ContainerState.HOT,
            ContainerState.PAUSING,
            ContainerState.PAUSED,
        )

    @property
    def is_prewarm(self) -> bool:
        return self.function is None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        fname = self.function.name if self.function else "<prewarm>"
        return f"<Container #{self.cid} {fname} {self.state.value}{' busy' if self.busy else ''}>"
