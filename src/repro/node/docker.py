"""The Docker daemon as a serialized container-operation server.

Heavy container lifecycle operations — ``docker run`` (creation), our
invoker's per-dispatch cpu-limit/unpause cycle, removals and pauses —
funnel through a single daemon whose throughput is roughly constant
regardless of how many CPU cores the action containers use.  Under a
request burst this serialization, not the CPU, pins the node's dispatch
rate — exactly the pathology the paper measures ("the system overheads
related to container management have a significant impact … for the same
core-level intensity, the best performance is presented by nodes that
have lower numbers of cores", Sect. VII-C).

Light operations (the baseline's unpause of a warm container) happen
concurrently and are modelled as plain latency by the callers.

Operations are served FIFO.  Background operations (pausing or removing
an idle container) enter the same queue and steal capacity from
foreground dispatch operations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator

from repro.sim.resources import PriorityResource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment
    from repro.node.config import NodeConfig

__all__ = ["DockerDaemon"]


class DockerDaemon:
    """Serialized executor of heavy container operations.

    Operations carry a *priority* (lower served first; ties FIFO).  The
    invoker pipeline issues its foreground operations with the call's
    scheduling priority — the single dispatch pipeline is part of the same
    modified invoker, so a short call jumps ahead of a long one here too —
    while background operations (pauses, removals) default to their
    enqueue time, which interleaves them fairly with FIFO-ordered work.
    """

    #: Known operation kinds, mapped to their NodeConfig duration field.
    OP_FIELDS = {
        "create": "create_op_s",
        "dispatch": "dispatch_op_s",
        "pause": "pause_op_s",
        "remove": "remove_op_s",
    }

    def __init__(self, env: "Environment", config: "NodeConfig") -> None:
        self.env = env
        self.config = config
        self._server = PriorityResource(env, capacity=1)
        #: Completed-operation counters by kind.
        self.op_counts: Dict[str, int] = {kind: 0 for kind in self.OP_FIELDS}
        #: Total seconds the daemon has spent serving operations.
        self.busy_seconds = 0.0

    @property
    def queue_length(self) -> int:
        """Operations waiting for the daemon (excludes the one in service)."""
        return self._server.queued

    def duration_of(self, kind: str) -> float:
        field_name = self.OP_FIELDS.get(kind)
        if field_name is None:
            raise KeyError(f"unknown docker operation {kind!r}")
        return getattr(self.config, field_name)

    def op(self, kind: str, priority: float | None = None) -> Generator:
        """A generator performing one serialized operation.

        Usage (inside a process): ``yield from daemon.op("create")`` or
        ``yield env.process(daemon.op("remove"))``.  Without an explicit
        *priority* the operation is served in enqueue-time order.
        """
        duration = self.duration_of(kind)
        if priority is None:
            priority = self.env.now
        with self._server.request(priority=priority) as slot:
            yield slot
            yield self.env.timeout(duration)
        self.op_counts[kind] += 1
        self.busy_seconds += duration

    def utilization(self) -> float:
        """Fraction of elapsed time the daemon has been busy."""
        if self.env.now <= 0:
            return 0.0
        return self.busy_seconds / self.env.now
