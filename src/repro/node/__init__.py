"""Worker-node substrate: containers, memory, docker daemon, invokers.

This package models a single OpenWhisk worker node (an *invoker* plus its
action containers) at the level of detail the paper's evaluation depends
on:

* :mod:`repro.node.config` — all calibration knobs (:class:`NodeConfig`);
* :mod:`repro.node.docker` — the Docker daemon as a serialized FIFO server
  for container operations (create/unpause/pause/remove), the node-wide
  bottleneck that makes container management dominate under load;
* :mod:`repro.node.container` / :mod:`repro.node.memory` /
  :mod:`repro.node.pool` — container lifecycle (cold → warm → hot → paused
  → evicted), memory-pool accounting, and the warm/prewarm pools with LRU
  eviction;
* :mod:`repro.node.invoker` — the paper's invoker: priority queue + at most
  ``cores`` busy containers, each pinned to one core;
* :mod:`repro.node.baseline` — the stock OpenWhisk invoker: FIFO with
  greedy container creation, memory-bounded concurrency and
  memory-proportional CPU shares (OS-level preemption).
"""

from repro.node.config import NodeConfig
from repro.node.container import Container, ContainerState
from repro.node.docker import DockerDaemon
from repro.node.invoker import Invoker
from repro.node.baseline import BaselineInvoker
from repro.node.memory import MemoryPool
from repro.node.pool import ContainerPool

__all__ = [
    "BaselineInvoker",
    "Container",
    "ContainerPool",
    "ContainerState",
    "DockerDaemon",
    "Invoker",
    "MemoryPool",
    "NodeConfig",
]
