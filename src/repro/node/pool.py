"""Warm/prewarm container pools with LRU eviction.

The pool makes synchronous placement decisions (which container serves a
call; which idle containers to evict to free memory) and owns the
baseline's hot→paused lifecycle timers.  Docker operations for placement
(create, our invoker's dispatch cycle) are executed by the caller via the
:class:`~repro.node.docker.DockerDaemon`; the pool itself fires the
background pause and remove operations.

Two reuse disciplines exist (see NodeConfig's rationale):

* ``manage_pause=True`` (baseline): a container stays *hot* for a short
  grace after a call and can be reused for free; it is then paused in the
  background and must be unpaused (cheap, parallel) on reuse.
* ``manage_pause=False`` (our invoker): the invoker enforces its CPU
  guarantee with a serialized per-dispatch docker cycle, so hot reuse
  does not exist — every released container immediately counts as paused
  (without a daemon pause op: the dispatch cycle itself leaves the
  container quiesced).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Literal, Optional

from repro.node.container import Container, ContainerState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment
    from repro.node.config import NodeConfig
    from repro.node.docker import DockerDaemon
    from repro.node.memory import MemoryPool
    from repro.workload.functions import FunctionSpec

__all__ = ["AcquirePlan", "ContainerPool"]

AcquireKind = Literal["hot", "warm", "prewarm", "cold"]


@dataclass
class AcquirePlan:
    """Placement decision for one call.

    ``kind`` tells the invoker which docker/init steps it still has to
    perform before the container can run the call:

    * ``hot`` — none (container still unpaused from its previous call);
    * ``warm`` — revive a paused, initialized container;
    * ``prewarm`` — function initialisation in a prewarmed runtime shell;
    * ``cold`` — daemon ``create`` plus full in-container initialisation.
    """

    kind: AcquireKind
    container: Container


class ContainerPool:
    """All containers of one worker node."""

    def __init__(
        self,
        env: "Environment",
        config: "NodeConfig",
        daemon: "DockerDaemon",
        memory: "MemoryPool",
        manage_pause: bool = True,
    ) -> None:
        self.env = env
        self.config = config
        self.daemon = daemon
        self.memory = memory
        self.manage_pause = manage_pause
        #: All live containers (busy or warm), insertion order.
        self.containers: List[Container] = []
        #: Live containers grouped by function name, each group in the
        #: same relative (insertion) order as :attr:`containers` — the
        #: placement scan for a call touches only its own function's
        #: containers instead of the whole node.
        self._by_function: dict = {}
        #: Unspecialised prewarm shells.
        self.prewarm_shells: List[Container] = []
        # -- statistics ---------------------------------------------------
        self.cold_starts = 0
        self.prewarm_starts = 0
        self.warm_hits = 0
        self.hot_hits = 0
        self.evictions = 0
        self.creations = 0

    # ------------------------------------------------------------------
    # Bootstrap
    # ------------------------------------------------------------------
    def bootstrap_prewarm(self, count: Optional[int] = None) -> None:
        """Stock prewarmed runtime shells at node start (no daemon time)."""
        n = self.config.prewarm_stock if count is None else count
        for _ in range(n):
            if not self.memory.can_reserve(self.config.prewarm_memory_mb):
                break
            self.memory.reserve(self.config.prewarm_memory_mb)
            shell = Container(None, self.config.prewarm_memory_mb, self.env.now)
            shell.state = ContainerState.PAUSED
            self.prewarm_shells.append(shell)

    def seed_warm(self, spec: "FunctionSpec", count: int) -> int:
        """Warm-up: directly materialise *count* paused, initialized
        containers for *spec* (evicting LRU idle ones if memory requires).

        Models the paper's unmeasured warm-up calls (Sect. V-A).  Returns
        the number actually created.
        """
        created = 0
        for _ in range(count):
            if not self._ensure_memory(spec.memory_mb):
                break
            self.memory.reserve(spec.memory_mb)
            container = Container(spec, spec.memory_mb, self.env.now)
            container.state = ContainerState.PAUSED
            self.containers.append(container)
            self._index_add(container)
            created += 1
        return created

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _index_add(self, container: Container) -> None:
        """Register a (specialised) container in the per-function index."""
        self._by_function.setdefault(container.function.name, []).append(container)

    def warm_count(self, spec: "FunctionSpec") -> int:
        """Idle warm containers currently available for *spec*."""
        return sum(1 for c in self._by_function.get(spec.name, ()) if c.is_warm)

    def acquire(self, spec: "FunctionSpec", allow_prewarm: bool = True) -> Optional[AcquirePlan]:
        """Claim a container for a call of *spec*, or None if impossible.

        Preference order (paper Sect. III): hot container → paused warm
        container → prewarm shell → new container.  The returned container
        is already marked busy and its memory reserved.
        """
        # 1) warm container for this function: prefer HOT (free reuse),
        #    then the most-recently-used paused one.  The per-function
        #    index preserves insertion order, so ties on last_used resolve
        #    exactly as the historical whole-node scan did.
        best_hot: Optional[Container] = None
        best_paused: Optional[Container] = None
        for c in self._by_function.get(spec.name, ()):
            if not c.is_warm:
                continue
            if c.state is ContainerState.HOT:
                if best_hot is None or c.last_used > best_hot.last_used:
                    best_hot = c
            else:
                if best_paused is None or c.last_used > best_paused.last_used:
                    best_paused = c
        if best_hot is not None:
            self._claim(best_hot)
            self.hot_hits += 1
            return AcquirePlan("hot", best_hot)
        if best_paused is not None:
            self._claim(best_paused)
            self.warm_hits += 1
            return AcquirePlan("warm", best_paused)

        # 2) prewarm shell (runtime present, function not initialized).
        if allow_prewarm and self.prewarm_shells:
            delta = spec.memory_mb - self.config.prewarm_memory_mb
            if delta <= 0 or self._ensure_memory(delta):
                shell = self.prewarm_shells.pop()
                if delta > 0:
                    self.memory.reserve(delta)
                elif delta < 0:
                    self.memory.release(-delta)
                shell.function = spec
                shell.memory_mb = spec.memory_mb
                shell.state = ContainerState.CREATING
                shell.busy = True
                shell.last_used = self.env.now
                self.containers.append(shell)
                self._index_add(shell)
                self.prewarm_starts += 1
                return AcquirePlan("prewarm", shell)

        # 3) new container (full cold start), evicting idle LRU if needed.
        if self._ensure_memory(spec.memory_mb):
            self.memory.reserve(spec.memory_mb)
            container = Container(spec, spec.memory_mb, self.env.now)
            container.busy = True
            self.containers.append(container)
            self._index_add(container)
            self.cold_starts += 1
            self.creations += 1
            return AcquirePlan("cold", container)
        return None

    def release(self, container: Container) -> None:
        """Return a container after a call.

        Baseline (``manage_pause``): the container stays HOT for the pause
        grace, then a background daemon ``pause`` moves it to PAUSED.
        Our invoker: the container counts as paused immediately.
        """
        container.busy = False
        container.last_used = self.env.now
        container.calls_served += 1
        container.pause_version += 1
        if self.manage_pause:
            container.state = ContainerState.HOT
            self.env.process(self._pause_after_grace(container, container.pause_version))
        else:
            container.state = ContainerState.PAUSED

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def idle_warm_containers(self) -> List[Container]:
        """Evictable containers, least-recently-used first."""
        idle = [c for c in self.containers if c.is_warm]
        idle.sort(key=lambda c: c.last_used)
        return idle

    def evict(self, container: Container) -> None:
        """Remove *container*: memory freed now, daemon ``remove`` queued."""
        if container.busy:
            raise ValueError(f"cannot evict busy container {container!r}")
        container.state = ContainerState.DEAD
        container.pause_version += 1
        self.containers.remove(container)
        self._by_function[container.function.name].remove(container)
        self.memory.release(container.memory_mb)
        self.evictions += 1
        self.env.process(self.daemon.op("remove"))

    def _ensure_memory(self, amount_mb: int) -> bool:
        """Evict idle LRU containers until *amount_mb* fits; False if the
        pool cannot free enough (all remaining containers busy)."""
        if self.memory.can_reserve(amount_mb):
            return True
        for candidate in self.idle_warm_containers():
            self.evict(candidate)
            if self.memory.can_reserve(amount_mb):
                return True
        return self.memory.can_reserve(amount_mb)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _claim(self, container: Container) -> None:
        container.busy = True
        container.last_used = self.env.now
        container.pause_version += 1  # invalidate pending pause timers

    def _pause_after_grace(self, container: Container, version: int):
        yield self.env.timeout(self.config.pause_grace_s)
        if container.pause_version != version or container.busy:
            return  # reused (or evicted) in the meantime
        if container.state is not ContainerState.HOT:
            return
        container.state = ContainerState.PAUSING
        yield from self.daemon.op("pause")
        if container.pause_version == version and not container.busy:
            if container.state is ContainerState.PAUSING:
                container.state = ContainerState.PAUSED
        # else: claimed mid-pause; the claimant's unpause happens after this
        # op anyway (docker serializes per-container state changes).
