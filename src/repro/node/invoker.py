"""The paper's invoker: priority queue + CPU-based container management.

Differences from the stock OpenWhisk invoker (paper Sect. IV):

1. queued calls are ordered by a :class:`~repro.scheduling.policies.
   SchedulingPolicy` priority computed from node-local history, not FIFO;
2. at most ``cores`` containers are busy at any time, each assigned
   exactly one CPU core — the CPU is never oversubscribed, so the OS never
   preempts a running call (a near non-preemptive model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional

from repro.node.container import ContainerState
from repro.node.docker import DockerDaemon
from repro.node.memory import MemoryPool
from repro.node.pool import ContainerPool
from repro.scheduling.policies import SchedulingPolicy
from repro.scheduling.queue import StablePriorityQueue
from repro.scheduling.registry import build_policy
from repro.sim.cpu import SharedCPU, linear_overhead_efficiency
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.failures.rng import AttemptFault
    from repro.sim.core import Environment
    from repro.node.config import NodeConfig
    from repro.workload.functions import FunctionSpec
    from repro.workload.generator import Request

__all__ = ["Invoker", "NodeCallInfo"]


@dataclass
class NodeCallInfo:
    """Node-level timeline of one executed call."""

    request: "Request"
    invoker: str
    received_at: float
    dispatched_at: float = 0.0
    exec_start: float = 0.0
    exec_end: float = 0.0
    finished_at: float = 0.0
    #: Placement kind: hot / paused / prewarm / cold.
    start_kind: str = ""
    queue_length_at_receipt: int = 0
    #: Attempt disposition: ``"ok"``, or a failure kind
    #: (``"node-crash"`` / ``"container-kill"`` — see docs/FAILURES.md).
    outcome: str = "ok"

    @property
    def cold_start(self) -> bool:
        return self.start_kind in ("cold", "prewarm")

    @property
    def processing_time(self) -> float:
        """Node-measured execution duration (what the estimator sees)."""
        return self.exec_end - self.exec_start

    @property
    def wait_time(self) -> float:
        """Queueing delay at the invoker."""
        return self.dispatched_at - self.received_at


class Invoker:
    """Our worker-node resource manager (paper Sect. IV).

    Parameters
    ----------
    env, config:
        Simulation environment and node configuration.
    policy:
        A registered policy name (``FIFO``/``SEPT``/.../``SEPT-EMA`` —
        see ``faas-sched policies``) or a ready :class:`SchedulingPolicy`
        instance.
    name:
        Diagnostic identifier (used in multi-node runs).
    policy_params:
        Declared parameters for a named policy (validated against the
        registry); rejected when *policy* is already an instance.
    """

    is_baseline = False

    def __init__(
        self,
        env: "Environment",
        config: "NodeConfig",
        policy: "str | SchedulingPolicy" = "FIFO",
        name: str = "invoker-0",
        policy_params: "Mapping[str, Any] | None" = None,
    ) -> None:
        self.env = env
        self.config = config
        self.name = name
        self.cpu = SharedCPU(
            env, config.cores, efficiency=linear_overhead_efficiency(config.kappa)
        )
        self.daemon = DockerDaemon(env, config)
        self.memory = MemoryPool(config.memory_mb)
        self.pool = ContainerPool(env, config, self.daemon, self.memory)
        if isinstance(policy, SchedulingPolicy):
            if policy_params:
                raise ValueError(
                    "policy_params only apply when the policy is given by "
                    "name; configure the instance directly instead"
                )
            self.policy = policy
        else:
            self.policy = build_policy(
                policy,
                policy_params,
                window=config.estimator_window,
                frequency_horizon=config.fc_horizon_s,
            )
        self.queue: StablePriorityQueue = StablePriorityQueue()
        self._busy = 0
        #: Per-call timelines (O(calls) memory); streaming runs set
        #: :attr:`retain_completed` to ``False`` to keep only the counter.
        self.completed: List[NodeCallInfo] = []
        self.completed_count = 0
        self.retain_completed = True
        self.submitted = 0
        #: False while crashed (no dispatching; out of the balancer list).
        self.live = True
        #: In-flight attempts, so a crash can fail them (see crash()).
        self._inflight: Dict[Event, NodeCallInfo] = {}
        self.node_crashes = 0
        self.container_kills = 0
        self.crash_dropped = 0

    # ------------------------------------------------------------------
    @property
    def busy_count(self) -> int:
        """Containers currently executing (or being arranged for) calls."""
        return self._busy

    @property
    def queue_length(self) -> int:
        return len(self.queue)

    @property
    def outstanding(self) -> int:
        """Calls received but not yet finished."""
        return self.submitted - self.completed_count

    def warm_up(self, specs: "List[FunctionSpec]", per_function: Optional[int] = None) -> None:
        """Materialise the paper's warm-up (Sect. V-A): up to ``cores``
        warm containers per function, and seed the estimator with idle
        processing-time observations so ``E(p(i))`` is meaningful from the
        first measured call."""
        count = self.config.cores if per_function is None else per_function
        # Seed up to the *policy's* estimator window — a policy may have
        # reconfigured it away from the node default (e.g. SEPT-EMA's
        # window parameter), and a partially seeded window would make the
        # configured and default windows warm up identically.
        window = self.policy.estimator.window
        for spec in specs:
            self.pool.seed_warm(spec, count)
            # What the node measured for each warm-up call: the function's
            # idle execution time (its distribution median as the
            # single-point summary).  Routed through the policy so
            # EMA-keeping policies seed their own state too.
            for _ in range(min(count, window)):
                self.policy.record_warmup(
                    spec.name, spec.service_distribution.median
                )

    def submit(self, request: "Request", fault: "Optional[AttemptFault]" = None) -> Event:
        """Receive a call (``r'(i)`` = now); returns an event that fires
        with the call's :class:`NodeCallInfo` when the response leaves the
        node.  *fault* (failure injection only) degrades or kills this
        attempt's container — see docs/FAILURES.md."""
        received_at = self.env.now
        self.submitted += 1
        done = Event(self.env)
        info = NodeCallInfo(
            request=request,
            invoker=self.name,
            received_at=received_at,
            queue_length_at_receipt=len(self.queue),
        )
        priority = self.policy.on_received(request, received_at)
        self.queue.push(priority, (request, info, done, fault))
        self._maybe_dispatch()
        return done

    def crash(self) -> None:
        """Fail this node: every queued and in-flight call completes with
        outcome ``"node-crash"`` (the client retries or migrates it per
        the failure spec) and dispatching stops until :meth:`recover`.
        Simulation processes already executing attempts notice the
        triggered ``done`` event at their next wake-up and bail out."""
        self.live = False
        self.node_crashes += 1
        while self.queue:
            _, (request, info, done, _fault) = self.queue.pop()
            self._fail_attempt(info, done)
        for done, info in list(self._inflight.items()):
            if not done.triggered:
                self._fail_attempt(info, done)
        self._inflight.clear()

    def recover(self) -> None:
        """Rejoin after a crash (the injector re-inserts this node into
        the balancer live-list)."""
        self.live = True
        self._maybe_dispatch()

    def _fail_attempt(self, info: NodeCallInfo, done: Event) -> None:
        info.outcome = "node-crash"
        info.finished_at = self.env.now
        self.completed_count += 1
        self.crash_dropped += 1
        done.succeed(info)

    # ------------------------------------------------------------------
    def _maybe_dispatch(self) -> None:
        if not self.live:
            return
        limit = self.config.effective_busy_limit
        while self._busy < limit and self.queue:
            priority, (request, info, done, fault) = self.queue.pop()
            self._busy += 1
            self._inflight[done] = info
            self.env.process(self._run(request, info, done, priority, fault))

    def _run(
        self,
        request: "Request",
        info: NodeCallInfo,
        done: Event,
        priority: float,
        fault: "Optional[AttemptFault]" = None,
    ):
        env = self.env
        if done.triggered:  # node crashed before this process first ran
            self._busy -= 1
            return
        info.dispatched_at = env.now
        if self.config.invoker_overhead_s:
            yield env.timeout(self.config.invoker_overhead_s)
        if done.triggered:  # node crashed while we slept
            self._busy -= 1
            return

        # -- arrange a container -----------------------------------------
        plan = self.pool.acquire(request.function)
        while plan is None:
            # Memory exhausted and nothing evictable (all containers busy):
            # wait briefly for a release.  With busy <= cores and bounded
            # per-container memory this is rare by construction.
            yield env.timeout(self.config.pause_grace_s)
            if done.triggered:
                self._busy -= 1
                return
            plan = self.pool.acquire(request.function)
        container = plan.container
        info.start_kind = plan.kind

        if plan.kind == "warm":
            # Placing a call on a paused container costs a serialized docker
            # cycle (cpu-limit update + unpause) that enforces the
            # exactly-one-core guarantee.  A *hot* container (released
            # within the pause grace, its limit already set) is free —
            # which is how SEPT/FC same-function trains stay cheap.  The
            # pipeline serves its operations in call-priority order (it is
            # the same modified invoker that ordered the queue).
            yield from self.daemon.op("dispatch", priority=priority)
        elif plan.kind == "cold":
            yield from self.daemon.op("create", priority=priority)
            yield env.timeout(self.config.cold_init_latency_s)
            if self.config.cold_init_cpu_s:
                task = self.cpu.execute(self.config.cold_init_cpu_s, label="cold-init")
                yield task.event
        elif plan.kind == "prewarm":
            yield from self.daemon.op("dispatch", priority=priority)
            yield env.timeout(self.config.prewarm_init_latency_s)
            if self.config.prewarm_init_cpu_s:
                task = self.cpu.execute(self.config.prewarm_init_cpu_s, label="prewarm-init")
                yield task.event
        container.state = ContainerState.HOT
        if done.triggered:
            self.pool.release(container)
            self._busy -= 1
            return

        # -- execute the call (dedicated core; I/O idles the core) --------
        system_work = self.config.system_cpu_coeff_s * max(
            0, min(self._busy, self.config.cores) - 1
        )
        if system_work > 0:
            # Contention-induced management work (docker exec, cgroup and
            # logging interference with the other busy containers), billed
            # to the call's core.  Happens before the in-container execution
            # window the invoker measures, so the estimator sees the
            # function's own duration (paper Sect. IV).
            task = self.cpu.execute(system_work, weight=1.0, max_rate=1.0, label="system")
            yield task.event
        info.exec_start = env.now
        io_time = request.io_time if fault is None else fault.scale(request.io_time)
        cpu_work = request.cpu_work if fault is None else fault.scale(request.cpu_work)
        if io_time > 0:
            yield env.timeout(io_time)
        if cpu_work > 0:
            task = self.cpu.execute(
                cpu_work, weight=1.0, max_rate=1.0, label=request.function.name
            )
            yield task.event
        info.exec_end = env.now
        if done.triggered:  # crashed mid-execution; crash() settled the call
            self.pool.release(container)
            self._busy -= 1
            return
        if fault is not None and fault.kills:
            info.outcome = "container-kill"
            self.container_kills += 1

        # -- bookkeeping ---------------------------------------------------
        if info.outcome == "ok":
            # Failed attempts teach the estimator nothing: the node never
            # saw the function's own duration.
            self.policy.on_completed(request, info.processing_time)
        self.pool.release(container)
        info.finished_at = env.now
        if self.retain_completed:
            self.completed.append(info)
        self.completed_count += 1
        self._busy -= 1
        self._inflight.pop(done, None)
        done.succeed(info)
        self._maybe_dispatch()
