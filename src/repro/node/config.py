"""Node-level configuration and calibration constants.

Every mechanism the simulation models is controlled from here; the
defaults are calibrated so that the reproduction matches the *shapes* of
the paper's results (see DESIGN.md §5 and EXPERIMENTS.md).  The key
empirical anchors from the paper are:

* under saturation, our-invoker throughput is pinned by container
  management, not CPU: the published FIFO makespans imply a near-constant
  node-wide dispatch rate (≈2.1–2.6 calls/s) *independent of core count*
  (Sect. VII-C: "doubling the number of cores doubles the median response
  time").  Enforcing the 1-core-no-oversubscription guarantee costs a
  serialized docker operation per dispatch (cpu-limit update + unpause of
  the paused container), modelled by ``dispatch_op_s`` on the serialized
  daemon;
* the stock invoker reuses *hot* (not yet paused) containers with no
  docker operation and unpauses paused ones cheaply and concurrently —
  which is why the baseline's median response time stays low even
  under overload — but its greedy container *creations* serialize on the
  daemon (``create_op_s``) and dominate at high intensity (Fig. 2a: >80 %
  cold starts at intensity 120);
* cold starts take "on average 500 ms … up to 2 s" (Sect. VI): a
  serialized create plus in-container init whose CPU part stretches under
  load;
* OS-level preemption (baseline only): each busy container's CPU share is
  proportional to its memory, and oversubscribing the cores costs a
  context-switch efficiency penalty ``kappa``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NodeConfig"]


@dataclass(frozen=True)
class NodeConfig:
    """Configuration of one worker node.

    Attributes
    ----------
    cores:
        CPU cores available to action containers (the paper's ``c``).
    memory_mb:
        Size of the action-container memory pool (MiB); the paper runs its
        main experiments at 32 GiB (Sect. VI).
    dispatch_op_s:
        Serialized docker work our invoker performs per dispatched call
        (cpu-limit update + unpause); the node-wide dispatch bottleneck.
    create_op_s:
        Serialized ``docker run`` time (both invokers).
    remove_op_s:
        Serialized ``docker rm`` time (evictions, background).
    pause_op_s:
        Serialized ``docker pause`` time (baseline background pauses).
    unpause_latency_s:
        Parallel (non-serialized) latency of reviving a paused container
        on the baseline's warm path.
    pause_grace_s:
        Idle time after which the baseline pauses a hot container
        (OpenWhisk default ≈50 ms); hot reuse within the grace is free.
    cold_init_latency_s / cold_init_cpu_s:
        In-container initialisation after ``docker run``: pure latency
        plus CPU work on the node's CPU bank (so init stretches under
        load, reproducing the "up to 2 s" cold starts).
    prewarm_init_latency_s / prewarm_init_cpu_s:
        Lighter initialisation when a prewarmed runtime container is
        specialised for a function.
    prewarm_stock / prewarm_memory_mb:
        The baseline's stock of prewarmed runtime shells.
    invoker_overhead_s:
        Fixed per-call invoker bookkeeping latency.
    kappa:
        Oversubscription efficiency penalty of the CPU bank (context
        switches); only the baseline ever oversubscribes.
    busy_limit:
        Our invoker's cap on concurrently busy containers; ``None`` means
        ``cores`` (the paper's rule).  Exposed for the ablation that
        re-introduces oversubscription.
    estimator_window:
        Samples averaged by the runtime estimator (paper: 10).
    fc_horizon_s:
        Fair-Choice frequency window ``T`` (paper: "e.g. 60 seconds").
    """

    cores: int
    memory_mb: int = 32768

    # --- serialized docker-daemon operations ----------------------------
    dispatch_op_s: float = 0.10
    create_op_s: float = 0.50
    remove_op_s: float = 0.05
    pause_op_s: float = 0.30

    # --- warm path ---------------------------------------------------------
    unpause_latency_s: float = 0.020
    #: Idle time before a hot container is paused.  OpenWhisk's pause grace
    #: is on the order of seconds; its value is load-bearing for the
    #: policies: a container stays hot across SEPT/FC same-function trains
    #: (per-function dispatch gaps well under the grace) but not across
    #: FIFO's interleaved order (gaps of ~11 functions / dispatch rate).
    pause_grace_s: float = 1.2

    # --- container initialisation ---------------------------------------
    cold_init_latency_s: float = 0.35
    cold_init_cpu_s: float = 1.0
    prewarm_init_latency_s: float = 0.20
    prewarm_init_cpu_s: float = 0.20
    prewarm_stock: int = 2
    prewarm_memory_mb: int = 256

    # --- invoker & OS ------------------------------------------------------
    invoker_overhead_s: float = 0.002
    #: Contention-induced management CPU work per invocation: each call
    #: executes ``system_cpu_coeff_s * (min(busy, cores) - 1)`` core-seconds
    #: of docker/cgroup/logging work.  Zero when a call runs alone (Table I
    #: idle latencies are overhead-free), and ≈0.6 core-s on a saturated
    #: 10-core node — the paper observes that managing a container can cost
    #: more time than executing the function itself (Sect. V-B), and that
    #: per-call overhead grows with the node's core count (Sect. VII-C).
    system_cpu_coeff_s: float = 0.067
    kappa: float = 0.02
    busy_limit: int | None = None

    # --- scheduling --------------------------------------------------------
    estimator_window: int = 10
    fc_horizon_s: float = 60.0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores!r}")
        if self.memory_mb < 256:
            raise ValueError(f"memory_mb too small: {self.memory_mb!r}")
        for name in (
            "dispatch_op_s", "create_op_s", "remove_op_s", "pause_op_s",
            "unpause_latency_s", "pause_grace_s",
            "cold_init_latency_s", "cold_init_cpu_s",
            "prewarm_init_latency_s", "prewarm_init_cpu_s",
            "invoker_overhead_s", "system_cpu_coeff_s", "kappa", "fc_horizon_s",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.busy_limit is not None and self.busy_limit < 1:
            raise ValueError(f"busy_limit must be >= 1, got {self.busy_limit!r}")
        if self.estimator_window < 1:
            raise ValueError("estimator_window must be >= 1")

    @property
    def effective_busy_limit(self) -> int:
        """Busy-container cap of our invoker: ``busy_limit or cores``."""
        return self.busy_limit if self.busy_limit is not None else self.cores
