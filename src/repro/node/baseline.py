"""The stock OpenWhisk invoker (the paper's baseline).

Behaviour per paper Sect. III:

* requests are handled in receipt (FIFO) order; a request is queued only
  when it cannot be placed immediately;
* placement is *greedy*: free (warm) pool container → prewarm pool
  container → new container, evicting idle free-pool containers when
  memory is needed; if nothing works, the request waits at the head of
  the queue until a container or memory frees up;
* concurrency is bounded by **memory only** — there may be far more busy
  containers than CPU cores; the OS then time-shares the cores
  (preemption), with each container's CPU weight proportional to its
  memory (the OpenWhisk default), modelled by the processor-sharing CPU
  bank with a context-switch efficiency penalty.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

from repro.node.container import ContainerState
from repro.node.docker import DockerDaemon
from repro.node.invoker import NodeCallInfo
from repro.node.memory import MemoryPool
from repro.node.pool import ContainerPool
from repro.sim.cpu import SharedCPU, linear_overhead_efficiency
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.failures.rng import AttemptFault
    from repro.sim.core import Environment
    from repro.node.config import NodeConfig
    from repro.workload.functions import FunctionSpec
    from repro.workload.generator import Request

__all__ = ["BaselineInvoker"]

#: Memory size whose container gets CPU weight 1.0 (OpenWhisk's
#: ``memory / stdMemory`` share rule).
_STD_MEMORY_MB = 256.0


class BaselineInvoker:
    """Stock OpenWhisk worker-node resource manager."""

    is_baseline = True

    def __init__(
        self,
        env: "Environment",
        config: "NodeConfig",
        name: str = "baseline-0",
    ) -> None:
        self.env = env
        self.config = config
        self.name = name
        self.cpu = SharedCPU(
            env, config.cores, efficiency=linear_overhead_efficiency(config.kappa)
        )
        self.daemon = DockerDaemon(env, config)
        self.memory = MemoryPool(config.memory_mb)
        self.pool = ContainerPool(env, config, self.daemon, self.memory)
        self.pool.bootstrap_prewarm()
        self._queue: Deque[
            Tuple["Request", NodeCallInfo, Event, "Optional[AttemptFault]"]
        ] = deque()
        self._running = 0
        #: Per-call timelines (O(calls) memory); streaming runs set
        #: :attr:`retain_completed` to ``False`` to keep only the counter.
        self.completed: List[NodeCallInfo] = []
        self.completed_count = 0
        self.retain_completed = True
        self.submitted = 0
        #: False while crashed (no dispatching; out of the balancer list).
        self.live = True
        #: In-flight attempts, so a crash can fail them (see crash()).
        self._inflight: Dict[Event, NodeCallInfo] = {}
        self.node_crashes = 0
        self.container_kills = 0
        self.crash_dropped = 0

    # ------------------------------------------------------------------
    @property
    def busy_count(self) -> int:
        return self._running

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def outstanding(self) -> int:
        return self.submitted - self.completed_count

    def warm_up(self, specs: "List[FunctionSpec]", per_function: Optional[int] = None) -> None:
        """Same warm-up protocol as our invoker: up to ``cores`` warm
        containers per function (the baseline keeps no runtime history, so
        only containers are seeded)."""
        count = self.config.cores if per_function is None else per_function
        for spec in specs:
            self.pool.seed_warm(spec, count)

    def submit(self, request: "Request", fault: "Optional[AttemptFault]" = None) -> Event:
        """Receive a call; greedy immediate placement, else FIFO queue.
        *fault* (failure injection only) degrades or kills this attempt's
        container — see docs/FAILURES.md."""
        self.submitted += 1
        done = Event(self.env)
        info = NodeCallInfo(
            request=request,
            invoker=self.name,
            received_at=self.env.now,
            queue_length_at_receipt=len(self._queue),
        )
        self._queue.append((request, info, done, fault))
        self._drain()
        return done

    def crash(self) -> None:
        """Fail this node: every queued and in-flight call completes with
        outcome ``"node-crash"`` (the client retries or migrates it per
        the failure spec) and placement stops until :meth:`recover`."""
        self.live = False
        self.node_crashes += 1
        while self._queue:
            request, info, done, _fault = self._queue.popleft()
            self._fail_attempt(info, done)
        for done, info in list(self._inflight.items()):
            if not done.triggered:
                self._fail_attempt(info, done)
        self._inflight.clear()

    def recover(self) -> None:
        """Rejoin after a crash (the injector re-inserts this node into
        the balancer live-list)."""
        self.live = True
        self._drain()

    def _fail_attempt(self, info: NodeCallInfo, done: Event) -> None:
        info.outcome = "node-crash"
        info.finished_at = self.env.now
        self.completed_count += 1
        self.crash_dropped += 1
        done.succeed(info)

    # ------------------------------------------------------------------
    def _drain(self) -> None:
        """Place queued requests head-first while the greedy algorithm
        succeeds; the head blocks the queue when it cannot be placed
        (it waits for a freed container or freed memory)."""
        if not self.live:
            return
        while self._queue:
            request, info, done, fault = self._queue[0]
            plan = self.pool.acquire(request.function, allow_prewarm=True)
            if plan is None:
                break
            self._queue.popleft()
            self._running += 1
            self._inflight[done] = info
            self.env.process(self._run(request, info, done, plan, fault))

    def _run(
        self,
        request: "Request",
        info: NodeCallInfo,
        done: Event,
        plan,
        fault: "Optional[AttemptFault]" = None,
    ):
        env = self.env
        container = plan.container
        if done.triggered:  # node crashed before this process first ran
            self.pool.release(container)
            self._running -= 1
            return
        info.dispatched_at = env.now
        info.start_kind = plan.kind
        weight = container.memory_mb / _STD_MEMORY_MB

        if self.config.invoker_overhead_s:
            yield env.timeout(self.config.invoker_overhead_s)
        if done.triggered:  # node crashed while we slept
            self.pool.release(container)
            self._running -= 1
            return

        if plan.kind == "warm":
            # Reviving a paused container needs a (cheap) serialized daemon
            # cycle plus the unpause latency; only *hot* reuse is free.
            yield from self.daemon.op("dispatch", priority=info.received_at)
            yield env.timeout(self.config.unpause_latency_s)
        elif plan.kind == "cold":
            yield from self.daemon.op("create", priority=info.received_at)
            yield env.timeout(self.config.cold_init_latency_s)
            if self.config.cold_init_cpu_s:
                task = self.cpu.execute(
                    self.config.cold_init_cpu_s, weight=weight, label="cold-init"
                )
                yield task.event
        elif plan.kind == "prewarm":
            yield env.timeout(self.config.unpause_latency_s)  # shells sit paused
            yield env.timeout(self.config.prewarm_init_latency_s)
            if self.config.prewarm_init_cpu_s:
                task = self.cpu.execute(
                    self.config.prewarm_init_cpu_s, weight=weight, label="prewarm-init"
                )
                yield task.event
        container.state = ContainerState.HOT

        # -- execute: CPU share proportional to memory, capped at 1 core --
        system_work = self.config.system_cpu_coeff_s * max(
            0, min(self._running, self.config.cores) - 1
        )
        if system_work > 0:
            task = self.cpu.execute(system_work, weight=weight, label="system")
            yield task.event
        info.exec_start = env.now
        io_time = request.io_time if fault is None else fault.scale(request.io_time)
        cpu_work = request.cpu_work if fault is None else fault.scale(request.cpu_work)
        if io_time > 0:
            yield env.timeout(io_time)
        if cpu_work > 0:
            task = self.cpu.execute(
                cpu_work,
                weight=weight,
                max_rate=1.0,
                label=request.function.name,
            )
            yield task.event
        info.exec_end = env.now
        if done.triggered:  # crashed mid-execution; crash() settled the call
            self.pool.release(container)
            self._running -= 1
            return
        if fault is not None and fault.kills:
            info.outcome = "container-kill"
            self.container_kills += 1

        self.pool.release(container)
        info.finished_at = env.now
        if self.retain_completed:
            self.completed.append(info)
        self.completed_count += 1
        self._running -= 1
        self._inflight.pop(done, None)
        done.succeed(info)
        # A container and possibly memory freed: retry the queue head.
        self._drain()

    # The baseline replenishes its prewarm stock in the background; we
    # model a fixed initial stock only — under the paper's workloads the
    # stock is consumed in the first seconds of a burst either way.
