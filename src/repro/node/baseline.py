"""The stock OpenWhisk invoker (the paper's baseline).

Behaviour per paper Sect. III:

* requests are handled in receipt (FIFO) order; a request is queued only
  when it cannot be placed immediately;
* placement is *greedy*: free (warm) pool container → prewarm pool
  container → new container, evicting idle free-pool containers when
  memory is needed; if nothing works, the request waits at the head of
  the queue until a container or memory frees up;
* concurrency is bounded by **memory only** — there may be far more busy
  containers than CPU cores; the OS then time-shares the cores
  (preemption), with each container's CPU weight proportional to its
  memory (the OpenWhisk default), modelled by the processor-sharing CPU
  bank with a context-switch efficiency penalty.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, List, Optional, Tuple

from repro.node.container import ContainerState
from repro.node.docker import DockerDaemon
from repro.node.invoker import NodeCallInfo
from repro.node.memory import MemoryPool
from repro.node.pool import ContainerPool
from repro.sim.cpu import SharedCPU, linear_overhead_efficiency
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment
    from repro.node.config import NodeConfig
    from repro.workload.functions import FunctionSpec
    from repro.workload.generator import Request

__all__ = ["BaselineInvoker"]

#: Memory size whose container gets CPU weight 1.0 (OpenWhisk's
#: ``memory / stdMemory`` share rule).
_STD_MEMORY_MB = 256.0


class BaselineInvoker:
    """Stock OpenWhisk worker-node resource manager."""

    is_baseline = True

    def __init__(
        self,
        env: "Environment",
        config: "NodeConfig",
        name: str = "baseline-0",
    ) -> None:
        self.env = env
        self.config = config
        self.name = name
        self.cpu = SharedCPU(
            env, config.cores, efficiency=linear_overhead_efficiency(config.kappa)
        )
        self.daemon = DockerDaemon(env, config)
        self.memory = MemoryPool(config.memory_mb)
        self.pool = ContainerPool(env, config, self.daemon, self.memory)
        self.pool.bootstrap_prewarm()
        self._queue: Deque[Tuple["Request", NodeCallInfo, Event]] = deque()
        self._running = 0
        #: Per-call timelines (O(calls) memory); streaming runs set
        #: :attr:`retain_completed` to ``False`` to keep only the counter.
        self.completed: List[NodeCallInfo] = []
        self.completed_count = 0
        self.retain_completed = True
        self.submitted = 0

    # ------------------------------------------------------------------
    @property
    def busy_count(self) -> int:
        return self._running

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def outstanding(self) -> int:
        return self.submitted - self.completed_count

    def warm_up(self, specs: "List[FunctionSpec]", per_function: Optional[int] = None) -> None:
        """Same warm-up protocol as our invoker: up to ``cores`` warm
        containers per function (the baseline keeps no runtime history, so
        only containers are seeded)."""
        count = self.config.cores if per_function is None else per_function
        for spec in specs:
            self.pool.seed_warm(spec, count)

    def submit(self, request: "Request") -> Event:
        """Receive a call; greedy immediate placement, else FIFO queue."""
        self.submitted += 1
        done = Event(self.env)
        info = NodeCallInfo(
            request=request,
            invoker=self.name,
            received_at=self.env.now,
            queue_length_at_receipt=len(self._queue),
        )
        self._queue.append((request, info, done))
        self._drain()
        return done

    # ------------------------------------------------------------------
    def _drain(self) -> None:
        """Place queued requests head-first while the greedy algorithm
        succeeds; the head blocks the queue when it cannot be placed
        (it waits for a freed container or freed memory)."""
        while self._queue:
            request, info, done = self._queue[0]
            plan = self.pool.acquire(request.function, allow_prewarm=True)
            if plan is None:
                break
            self._queue.popleft()
            self._running += 1
            self.env.process(self._run(request, info, done, plan))

    def _run(self, request: "Request", info: NodeCallInfo, done: Event, plan):
        env = self.env
        info.dispatched_at = env.now
        container = plan.container
        info.start_kind = plan.kind
        weight = container.memory_mb / _STD_MEMORY_MB

        if self.config.invoker_overhead_s:
            yield env.timeout(self.config.invoker_overhead_s)

        if plan.kind == "warm":
            # Reviving a paused container needs a (cheap) serialized daemon
            # cycle plus the unpause latency; only *hot* reuse is free.
            yield from self.daemon.op("dispatch", priority=info.received_at)
            yield env.timeout(self.config.unpause_latency_s)
        elif plan.kind == "cold":
            yield from self.daemon.op("create", priority=info.received_at)
            yield env.timeout(self.config.cold_init_latency_s)
            if self.config.cold_init_cpu_s:
                task = self.cpu.execute(
                    self.config.cold_init_cpu_s, weight=weight, label="cold-init"
                )
                yield task.event
        elif plan.kind == "prewarm":
            yield env.timeout(self.config.unpause_latency_s)  # shells sit paused
            yield env.timeout(self.config.prewarm_init_latency_s)
            if self.config.prewarm_init_cpu_s:
                task = self.cpu.execute(
                    self.config.prewarm_init_cpu_s, weight=weight, label="prewarm-init"
                )
                yield task.event
        container.state = ContainerState.HOT

        # -- execute: CPU share proportional to memory, capped at 1 core --
        system_work = self.config.system_cpu_coeff_s * max(
            0, min(self._running, self.config.cores) - 1
        )
        if system_work > 0:
            task = self.cpu.execute(system_work, weight=weight, label="system")
            yield task.event
        info.exec_start = env.now
        if request.io_time > 0:
            yield env.timeout(request.io_time)
        if request.cpu_work > 0:
            task = self.cpu.execute(
                request.cpu_work,
                weight=weight,
                max_rate=1.0,
                label=request.function.name,
            )
            yield task.event
        info.exec_end = env.now

        self.pool.release(container)
        info.finished_at = env.now
        if self.retain_completed:
            self.completed.append(info)
        self.completed_count += 1
        self._running -= 1
        done.succeed(info)
        # A container and possibly memory freed: retry the queue head.
        self._drain()

    # The baseline replenishes its prewarm stock in the background; we
    # model a fixed initial stock only — under the paper's workloads the
    # stock is consumed in the first seconds of a burst either way.
