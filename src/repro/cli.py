"""Command-line interface.

Examples
--------
List the reproducible artifacts::

    faas-sched list

Reproduce an artifact (scaled-down)::

    faas-sched run fig6

Reproduce the paper's full protocol for one artifact, in parallel with an
on-disk result cache (re-runs only compute missing cells)::

    faas-sched run table3 --full --jobs 8 --cache-dir ~/.cache/faas-sched

Run the experiment grid directly, selecting a slice::

    faas-sched grid --jobs 4 --cores 10 20 --intensities 30 60 --seeds 1 2

Run a single ad-hoc experiment::

    faas-sched simulate --cores 10 --intensity 60 --policy SEPT --seed 1
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.grid import GridSpec, run_grid
from repro.experiments.parallel import ResultCache, progress_printer
from repro.experiments.registry import EXPERIMENTS, run_registered
from repro.experiments.runner import run_experiment
from repro.experiments.artifacts import table3_from_grid
from repro.metrics.report import render_summary_table

__all__ = ["main", "build_parser"]

_POLICY_CHOICES = ["baseline", "FIFO", "SEPT", "EECT", "RECT", "FC"]


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    """Parallel-engine knobs shared by the ``run`` and ``grid`` commands."""
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for grid cells (default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="on-disk result cache; re-runs only compute missing cells",
    )
    parser.add_argument(
        "--no-progress",
        action="store_true",
        help="suppress per-cell progress lines on stderr",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="faas-sched",
        description=(
            "Reproduction of 'Call Scheduling to Reduce Response Time of a "
            "FaaS System' (CLUSTER 2022)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible paper artifacts")

    run = sub.add_parser("run", help="reproduce a paper artifact")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS), help="artifact id")
    run.add_argument(
        "--full",
        action="store_true",
        help="run the paper's full protocol (all seeds/sweeps); slower",
    )
    _add_engine_arguments(run)

    grid = sub.add_parser(
        "grid",
        help="run a slice of the experiment grid (cores x intensity x strategy x seeds)",
    )
    grid.add_argument(
        "--full",
        action="store_true",
        help="start from the paper's full grid instead of the quick slice",
    )
    grid.add_argument("--cores", type=int, nargs="+", metavar="C")
    grid.add_argument("--intensities", type=int, nargs="+", metavar="V")
    grid.add_argument("--strategies", nargs="+", choices=_POLICY_CHOICES, metavar="S")
    grid.add_argument("--seeds", type=int, nargs="+", metavar="K")
    grid.add_argument(
        "--per-seed",
        action="store_true",
        help="render Table-IV style per-seed rows instead of pooled aggregates",
    )
    _add_engine_arguments(grid)

    sim = sub.add_parser("simulate", help="run one ad-hoc single-node experiment")
    sim.add_argument("--cores", type=int, default=10)
    sim.add_argument("--intensity", type=int, default=30)
    sim.add_argument("--policy", default="FIFO", choices=_POLICY_CHOICES)
    sim.add_argument("--seed", type=int, default=1)
    sim.add_argument("--memory-mb", type=int, default=32768)
    sim.add_argument(
        "--scenario", default="uniform", choices=["uniform", "skewed", "azure"]
    )
    return parser


def _grid_spec_from_args(args: argparse.Namespace) -> GridSpec:
    spec = GridSpec() if args.full else GridSpec.quick()
    overrides = {}
    if args.cores:
        overrides["cores"] = tuple(args.cores)
    if args.intensities:
        overrides["intensities"] = tuple(args.intensities)
    if args.strategies:
        overrides["strategies"] = tuple(args.strategies)
    if args.seeds:
        overrides["seeds"] = tuple(args.seeds)
    return replace(spec, **overrides) if overrides else spec


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "list":
        width = max(len(eid) for eid in EXPERIMENTS)
        for eid, (description, _) in EXPERIMENTS.items():
            print(f"{eid.ljust(width)}  {description}")
        return 0

    if args.command in ("run", "grid") and args.cache_dir is not None:
        # Probe the cache root now: a bad --cache-dir should fail before
        # any experiment time is spent, not at the first store().
        try:
            ResultCache(args.cache_dir)
        except OSError as exc:
            print(f"error: cache directory unusable: {exc}", file=sys.stderr)
            return 2

    if args.command == "run":
        report = run_registered(
            args.experiment,
            quick=not args.full,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            progress=None if args.no_progress else progress_printer(),
        )
        print(report)
        return 0

    if args.command == "grid":
        spec = _grid_spec_from_args(args)
        grid = run_grid(
            spec,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            progress=None if args.no_progress else progress_printer(),
        )
        print(table3_from_grid(grid, per_seed=args.per_seed).render())
        stats = grid.stats
        if stats is not None:
            print(
                f"\nengine: {stats.total} runs "
                f"({stats.computed} computed, {stats.cached} from cache, "
                f"jobs={stats.jobs})"
            )
        return 0

    if args.command == "simulate":
        cfg = ExperimentConfig(
            cores=args.cores,
            intensity=args.intensity,
            policy=args.policy,
            seed=args.seed,
            memory_mb=args.memory_mb,
            scenario=args.scenario,
        )
        result = run_experiment(cfg)
        print(render_summary_table([(cfg.label(), result.summary())]))
        stats = result.node_stats[0]
        print(
            f"\ncold starts: {stats['cold_starts']}  evictions: {stats['evictions']}  "
            f"hot hits: {stats['hot_hits']}  warm hits: {stats['warm_hits']}\n"
            f"cpu utilization: {stats['cpu_utilization']:.2f}  "
            f"daemon utilization: {stats['daemon_utilization']:.2f}"
        )
        return 0

    return 1  # pragma: no cover - argparse enforces commands


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
