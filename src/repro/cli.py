"""Command-line interface.

Examples
--------
List the reproducible artifacts, the registered workload scenarios, and
the registered scheduling policies::

    faas-sched list
    faas-sched scenarios
    faas-sched policies

Reproduce an artifact (scaled-down)::

    faas-sched run fig6

Reproduce the paper's full protocol for one artifact, in parallel with an
on-disk result cache (re-runs only compute missing cells)::

    faas-sched run table3 --full --jobs 8 --cache-dir ~/.cache/faas-sched

Rerun a grid-backed artifact under a different registered workload::

    faas-sched run table3 --scenario poisson --scenario-param zipf_exponent=1.1

Run the experiment grid directly, selecting a slice and a scenario::

    faas-sched grid --jobs 4 --cores 10 20 --intensities 30 60 --seeds 1 2
    faas-sched grid --scenario diurnal --scenario-param amplitude=0.9

Sweep registered scheduling policies — including parameterized ones —
through the same grid (the policy name and its parameters are part of
the result-cache fingerprint)::

    faas-sched grid --strategies SEPT SEPT-EMA ORACLE-SPT --policy-param window=5
    faas-sched run table3 --policies FC FC-HYBRID --policy-param deadline_weight=0.8

Sweep the cluster dimension — node counts × balancer flavours — through
the same grid engine (cached and parallelized like any other cell)::

    faas-sched grid --nodes 1 2 4 --balancer least-loaded power-of-d
    faas-sched grid --nodes 3 --balancer locality --balancer-param capacity_factor=1.5

Run a single ad-hoc experiment (optionally on a multi-node cluster)::

    faas-sched simulate --cores 10 --intensity 60 --policy SEPT --seed 1
    faas-sched simulate --scenario replay --scenario-param path=trace.csv
    faas-sched simulate --nodes 3 --balancer power-of-d --autoscale
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from typing import Any, List, Optional, Sequence, Tuple

from repro.cluster.controller import balancer_names
from repro.cluster.spec import ClusterSpec
from repro.experiments.adaptive import (
    DEFAULT_DECISION_METRICS,
    allocate_seeds,
)
from repro.experiments.cache_tools import (
    CacheMergeError,
    cache_stats,
    gc_cache,
    merge_caches,
)
from repro.experiments.config import BASELINE, ExperimentConfig
from repro.experiments.executor import executor_names
from repro.experiments.grid import GridResults, GridSpec, run_grid
from repro.experiments.parallel import (
    EngineStats,
    ResultCache,
    WorkerError,
    progress_printer,
    run_configs,
    verify_cache,
)
from repro.experiments.queue import run_worker
from repro.experiments.registry import EXPERIMENTS, run_registered
from repro.experiments.runner import run_experiment
from repro.experiments.artifacts import table3_from_grid
from repro.failures.spec import FailureSpec
from repro.metrics.cluster import cluster_breakdown
from repro.metrics.compare import (
    COMPARE_METRICS,
    DEFAULT_METRICS,
    compare_grid,
    compare_results,
)
from repro.metrics.report import render_summary_table
from repro.scheduling.registry import get_policy, policy_names
from repro.workload.registry import get_scenario, scenario_names

__all__ = ["main", "build_parser"]


def _policy_choices() -> List[str]:
    """Strategy names accepted by --policy/--strategies/--policies: the
    stock invoker plus every registered scheduling policy."""
    return [BASELINE] + policy_names()


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    """Parallel-engine knobs shared by the ``run`` and ``grid`` commands."""
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for grid cells (default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="on-disk result cache; re-runs only compute missing cells",
    )
    parser.add_argument(
        "--no-progress",
        action="store_true",
        help="suppress per-cell progress lines on stderr",
    )
    parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="S",
        help=(
            "wall-clock budget per grid cell in seconds (--jobs > 1, "
            "local executor only — rejected with --executor queue); "
            "cells over budget are cancelled and reported while the rest "
            "of the sweep completes; default: $REPRO_CELL_TIMEOUT or none"
        ),
    )
    parser.add_argument(
        "--executor",
        default=None,
        choices=executor_names(),
        metavar="NAME",
        help=(
            "execution backend: 'local' runs cells in this process "
            "(--jobs > 1: a process pool); 'queue' distributes them over "
            "the shared --cache-dir so any number of 'faas-sched worker' "
            "processes — on any host sharing the directory — can help "
            "(see docs/DISTRIBUTED.md); default: $REPRO_EXECUTOR or local"
        ),
    )


def _add_scenario_arguments(
    parser: argparse.ArgumentParser, default: Optional[str] = None
) -> None:
    """Workload-scenario selection shared by run/grid/simulate."""
    parser.add_argument(
        "--scenario",
        default=default,
        choices=scenario_names(),
        metavar="NAME",
        help=(
            "workload scenario (see 'faas-sched scenarios'); "
            + ("default: each artifact's own workload" if default is None else f"default: {default}")
        ),
    )
    parser.add_argument(
        "--scenario-param",
        action="append",
        default=[],
        metavar="K=V",
        help=(
            "scenario builder parameter as key=value (repeatable); values "
            "are parsed as JSON, falling back to strings "
            "(e.g. --scenario-param rare_count=20)"
        ),
    )


#: Python-style literals users type out of habit; without this mapping
#: json.loads fails and e.g. "False" would survive as a *truthy* string.
_PYTHON_LITERALS = {"True": True, "False": False, "None": None}


def _parse_kv_params(
    pairs: Sequence[str], flag: str = "--scenario-param"
) -> Tuple[Tuple[str, Any], ...]:
    """``["k=v", ...]`` → ``(("k", parsed_v), ...)``; values JSON-decoded
    when possible (Python's True/False/None spellings accepted too) so
    numbers/bools/lists arrive typed."""
    params: List[Tuple[str, Any]] = []
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"error: {flag} expects key=value, got {pair!r}")
        if raw in _PYTHON_LITERALS:
            value: Any = _PYTHON_LITERALS[raw]
        else:
            try:
                value = json.loads(raw)
            except ValueError:
                value = raw
        params.append((key, value))
    return tuple(params)


def _parse_scenario_params(pairs: Sequence[str]) -> Tuple[Tuple[str, Any], ...]:
    return _parse_kv_params(pairs, "--scenario-param")


def _parse_balancer_params(pairs: Sequence[str]) -> Tuple[Tuple[str, Any], ...]:
    return _parse_kv_params(pairs, "--balancer-param")


def _parse_policy_params(pairs: Sequence[str]) -> Tuple[Tuple[str, Any], ...]:
    return _parse_kv_params(pairs, "--policy-param")


def _parse_failure_params(pairs: Sequence[str]) -> Tuple[Tuple[str, Any], ...]:
    return _parse_kv_params(pairs, "--failure-param")


def _add_failure_argument(parser: argparse.ArgumentParser) -> None:
    """``--failure-param`` shared by run/grid/compare/simulate."""
    parser.add_argument(
        "--failure-param",
        action="append",
        default=[],
        metavar="K=V",
        help=(
            "failure-injection parameter as key=value (repeatable), naming "
            "a FailureSpec field — e.g. --failure-param "
            "node_crash_rate=0.005 --failure-param timeout_s=30 "
            "(see docs/FAILURES.md); default: failure-free"
        ),
    )


def _add_policy_param_argument(parser: argparse.ArgumentParser) -> None:
    """``--policy-param`` shared by run/grid/simulate."""
    parser.add_argument(
        "--policy-param",
        action="append",
        default=[],
        metavar="K=V",
        help=(
            "scheduling-policy parameter as key=value (repeatable); values "
            "are parsed as JSON, falling back to strings; reaches every "
            "selected policy that declares the parameter "
            "(e.g. --policy-param alpha=0.5)"
        ),
    )


def _add_streaming_argument(parser: argparse.ArgumentParser) -> None:
    """``--no-retain-records`` / ``--streaming`` shared by grid/simulate."""
    parser.add_argument(
        "--no-retain-records",
        "--streaming",
        dest="retain_records",
        action="store_false",
        default=True,
        help=(
            "streaming mode: fold each completed call into constant-size "
            "metrics state instead of retaining every call record — exact "
            "counts/means/cold-starts/makespan, sketched percentiles "
            "(see docs/STREAMING.md); memory stays bounded for "
            "million-invocation workloads"
        ),
    )


def _add_cluster_arguments(
    parser: argparse.ArgumentParser, sweep: bool
) -> None:
    """Cluster-topology selection shared by run/grid/simulate.

    ``sweep=True`` (run/grid) accepts several node counts and balancer
    flavours — the grid crosses them; ``simulate`` takes one of each.
    """
    nargs = {"nargs": "+"} if sweep else {}
    parser.add_argument(
        "--nodes",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker-node count" + (" (several values sweep the grid)" if sweep else "")
            + "; default: 1"
        ),
        **nargs,
    )
    parser.add_argument(
        "--balancer",
        default=None,
        choices=balancer_names(),
        metavar="NAME",
        help=(
            "load-balancer flavour "
            + ("(several values sweep the grid); " if sweep else "; ")
            + f"one of: {', '.join(balancer_names())}; default: least-loaded"
        ),
        **nargs,
    )
    parser.add_argument(
        "--balancer-param",
        action="append",
        default=[],
        metavar="K=V",
        help=(
            "balancer constructor parameter as key=value (repeatable), "
            "e.g. --balancer-param d=3 or capacity_factor=1.5"
        ),
    )
    parser.add_argument(
        "--autoscale",
        action="store_true",
        help="attach the reactive autoscaler (default config) to every run",
    )


def _add_statistics_arguments(parser: argparse.ArgumentParser) -> None:
    """Significance-testing knobs shared by ``compare`` and ``grid
    --compare`` (see docs/COMPARISONS.md for the methodology)."""
    parser.add_argument(
        "--metrics",
        nargs="+",
        default=None,
        choices=sorted(COMPARE_METRICS),
        metavar="M",
        help=(
            "metrics to test (default: mean/p99 response time and stretch "
            "plus cold starts); Holm correction spans every tested metric"
        ),
    )
    parser.add_argument(
        "--alpha",
        type=float,
        default=0.05,
        metavar="A",
        help="family-wise significance level after Holm correction (default: 0.05)",
    )
    parser.add_argument(
        "--confidence",
        type=float,
        default=0.95,
        metavar="C",
        help="bootstrap confidence level for the mean-difference CI (default: 0.95)",
    )
    parser.add_argument(
        "--resamples",
        type=int,
        default=2000,
        metavar="N",
        help="bootstrap resamples per CI (default: 2000)",
    )
    parser.add_argument(
        "--ci-method",
        choices=("bca", "percentile"),
        default="bca",
        help="bootstrap CI flavour (default: bca)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="faas-sched",
        description=(
            "Reproduction of 'Call Scheduling to Reduce Response Time of a "
            "FaaS System' (CLUSTER 2022)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible paper artifacts")

    sub.add_parser(
        "scenarios",
        help="list registered workload scenarios and their parameters",
    )

    sub.add_parser(
        "policies",
        help="list registered scheduling policies and their parameters",
    )

    run = sub.add_parser("run", help="reproduce a paper artifact")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS), help="artifact id")
    run.add_argument(
        "--full",
        action="store_true",
        help="run the paper's full protocol (all seeds/sweeps); slower",
    )
    run.add_argument(
        "--policies",
        nargs="+",
        default=None,
        choices=_policy_choices(),
        metavar="P",
        help=(
            "override the strategy set of a grid-backed artifact (see "
            "'faas-sched policies'); default: each artifact's own strategies"
        ),
    )
    _add_engine_arguments(run)
    _add_scenario_arguments(run)
    _add_cluster_arguments(run, sweep=True)
    _add_policy_param_argument(run)
    _add_failure_argument(run)

    grid = sub.add_parser(
        "grid",
        help="run a slice of the experiment grid (cores x intensity x strategy x seeds)",
    )
    grid.add_argument(
        "--full",
        action="store_true",
        help="start from the paper's full grid instead of the quick slice",
    )
    grid.add_argument("--cores", type=int, nargs="+", metavar="C")
    grid.add_argument("--intensities", type=int, nargs="+", metavar="V")
    grid.add_argument("--strategies", nargs="+", choices=_policy_choices(), metavar="S")
    grid.add_argument("--seeds", type=int, nargs="+", metavar="K")
    grid.add_argument(
        "--per-seed",
        action="store_true",
        help="render Table-IV style per-seed rows instead of pooled aggregates",
    )
    grid.add_argument(
        "--compare",
        default=None,
        choices=_policy_choices(),
        metavar="REF",
        help=(
            "annotate the grid report with per-cell significance vs. this "
            "reference strategy (Mann-Whitney U per metric, Holm-corrected "
            "across the whole metric x cell family) and print the full "
            "comparison tables"
        ),
    )
    _add_statistics_arguments(grid)
    _add_engine_arguments(grid)
    _add_scenario_arguments(grid, default="uniform")
    _add_cluster_arguments(grid, sweep=True)
    _add_policy_param_argument(grid)
    _add_failure_argument(grid)
    _add_streaming_argument(grid)

    comp = sub.add_parser(
        "compare",
        help=(
            "statistically compare two policies over repeated seeds "
            "(Mann-Whitney U, Cliff's delta, bootstrap CIs, Holm correction)"
        ),
    )
    comp.add_argument("policy_a", choices=_policy_choices(), metavar="A")
    comp.add_argument("policy_b", choices=_policy_choices(), metavar="B")
    comp.add_argument("--cores", type=int, default=10)
    comp.add_argument("--intensity", type=int, default=30)
    comp.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=None,
        metavar="K",
        help="explicit seed list (default: 1..N from --num-seeds)",
    )
    comp.add_argument(
        "--num-seeds",
        type=int,
        default=20,
        metavar="N",
        help="repetitions per policy when --seeds is not given (default: 20)",
    )
    comp.add_argument(
        "--adaptive",
        action="store_true",
        help=(
            "adaptive seed allocation: start from the requested seeds and "
            "add batches only while the corrected comparison has not "
            "separated, up to --max-seeds (see docs/COMPARISONS.md)"
        ),
    )
    comp.add_argument(
        "--max-seeds",
        type=int,
        default=None,
        metavar="N",
        help="adaptive budget per policy (default: 4x the initial seeds)",
    )
    comp.add_argument(
        "--batch",
        type=int,
        default=5,
        metavar="N",
        help="seeds added per adaptive round (default: 5)",
    )
    _add_statistics_arguments(comp)
    _add_engine_arguments(comp)
    _add_scenario_arguments(comp, default="uniform")
    _add_cluster_arguments(comp, sweep=False)
    _add_policy_param_argument(comp)
    _add_failure_argument(comp)
    _add_streaming_argument(comp)

    cache = sub.add_parser(
        "cache",
        help="inspect and maintain an on-disk result cache",
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_verify = cache_sub.add_parser(
        "verify",
        help=(
            "scan a cache directory, report corrupt/stale entries and move "
            "them to a quarantine subdirectory"
        ),
    )
    cache_verify.add_argument(
        "--cache-dir",
        required=True,
        metavar="DIR",
        help="cache root to verify (the --cache-dir used by run/grid)",
    )
    cache_verify.add_argument(
        "--no-quarantine",
        action="store_true",
        help="report only; leave corrupt/stale entries in place",
    )
    cache_verify.epilog = (
        "exits 0 when every entry is loadable and current, 1 when any "
        "corrupt or stale entry was found"
    )
    cache_stats_cmd = cache_sub.add_parser(
        "stats",
        help=(
            "inventory a cache root: entries, bytes, health, age range, "
            "per-shard breakdown, queue depth and active claims"
        ),
    )
    cache_stats_cmd.add_argument(
        "--cache-dir",
        required=True,
        metavar="DIR",
        help="cache root to inspect",
    )
    cache_gc = cache_sub.add_parser(
        "gc",
        help=(
            "evict cache entries: corrupt/version-stale first, then "
            "entries over --max-age, then oldest-first down to --size-budget"
        ),
    )
    cache_gc.add_argument(
        "--cache-dir",
        required=True,
        metavar="DIR",
        help="cache root to collect",
    )
    cache_gc.add_argument(
        "--max-age",
        type=float,
        default=None,
        metavar="S",
        help="evict entries written more than S seconds ago",
    )
    cache_gc.add_argument(
        "--size-budget",
        default=None,
        metavar="BYTES",
        help=(
            "evict oldest entries until the root fits this many bytes "
            "(suffixes KiB/MiB/GiB accepted, e.g. 512MiB)"
        ),
    )
    cache_gc.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be evicted without deleting anything",
    )
    cache_merge = cache_sub.add_parser(
        "merge",
        help=(
            "union SRC's entries into DST by fingerprint; colliding "
            "entries must be byte-identical (the merge aborts otherwise)"
        ),
    )
    cache_merge.add_argument("src", metavar="SRC", help="cache root to merge from")
    cache_merge.add_argument("dst", metavar="DST", help="cache root to merge into")

    worker = sub.add_parser(
        "worker",
        help=(
            "claim and compute queued grid cells from a shared cache root "
            "(start any number, on any host sharing the directory; see "
            "docs/DISTRIBUTED.md)"
        ),
    )
    worker.add_argument(
        "--cache-dir",
        required=True,
        metavar="DIR",
        help="shared cache root holding the work queue",
    )
    worker.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        metavar="S",
        help=(
            "keep polling for new work this many seconds after the queue "
            "drains; default: exit once the queue looks empty"
        ),
    )
    worker.add_argument(
        "--poll",
        type=float,
        default=0.2,
        metavar="S",
        help="queue poll interval in seconds (default: 0.2)",
    )
    worker.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        metavar="S",
        help=(
            "claim lease TTL in seconds; a lease not heartbeaten for this "
            "long is considered dead and stolen by another worker "
            "(default: $REPRO_LEASE_TTL or 60)"
        ),
    )
    worker.add_argument(
        "--max-cells",
        type=int,
        default=None,
        metavar="N",
        help="exit after computing N cells (default: unlimited)",
    )
    worker.add_argument(
        "--no-progress",
        action="store_true",
        help="suppress per-cell progress lines on stderr",
    )

    sim = sub.add_parser("simulate", help="run one ad-hoc single-node experiment")
    sim.add_argument("--cores", type=int, default=10)
    sim.add_argument("--intensity", type=int, default=30)
    sim.add_argument("--policy", default="FIFO", choices=_policy_choices())
    sim.add_argument("--seed", type=int, default=1)
    sim.add_argument("--memory-mb", type=int, default=32768)
    _add_scenario_arguments(sim, default="uniform")
    _add_cluster_arguments(sim, sweep=False)
    _add_policy_param_argument(sim)
    _add_failure_argument(sim)
    _add_streaming_argument(sim)
    return parser


def _grid_spec_from_args(args: argparse.Namespace) -> GridSpec:
    spec = GridSpec() if args.full else GridSpec.quick()
    overrides = {}
    if args.cores:
        overrides["cores"] = tuple(args.cores)
    if args.intensities:
        overrides["intensities"] = tuple(args.intensities)
    if args.strategies:
        overrides["strategies"] = tuple(args.strategies)
    if args.seeds:
        overrides["seeds"] = tuple(args.seeds)
    if args.scenario:
        overrides["scenario"] = args.scenario
        overrides["scenario_params"] = _parse_scenario_params(args.scenario_param)
    if args.nodes:
        overrides["nodes"] = tuple(args.nodes)
    if args.balancer:
        overrides["balancers"] = tuple(args.balancer)
    if args.balancer_param:
        overrides["balancer_params"] = _parse_balancer_params(args.balancer_param)
    if args.autoscale:
        overrides["autoscale"] = True
    if args.policy_param:
        overrides["policy_params"] = _parse_policy_params(args.policy_param)
    if args.failure_param:
        overrides["failures"] = FailureSpec.from_params(
            _parse_failure_params(args.failure_param)
        )
    if not args.retain_records:
        overrides["retain_records"] = False
    return replace(spec, **overrides) if overrides else spec


def _render_policies() -> str:
    """The ``faas-sched policies`` listing, straight from the registry."""
    lines = []
    for name in policy_names():
        spec = get_policy(name)
        traits = [spec.paper_section]
        if spec.starvation_free:
            traits.append("starvation-free")
        lines.append(f"{name}  [{', '.join(traits)}]")
        lines.append(f"    {spec.description}")
        for param in spec.params:
            default = "(required)" if param.required else f"default: {param.default!r}"
            lines.append(f"    --policy-param {param.name}=...  {default}")
            if param.doc:
                lines.append(f"        {param.doc}")
    lines.append("")
    lines.append(
        "run one with: faas-sched simulate --policy NAME "
        "[--policy-param K=V ...]; 'baseline' selects the stock invoker"
    )
    return "\n".join(lines)


def _render_scenarios() -> str:
    """The ``faas-sched scenarios`` listing, straight from the registry."""
    lines = []
    for name in scenario_names():
        spec = get_scenario(name)
        lines.append(f"{name}  [{spec.paper_section}]")
        lines.append(f"    {spec.description}")
        for param in spec.params:
            default = "(required)" if param.required else f"default: {param.default!r}"
            lines.append(f"    --scenario-param {param.name}=...  {default}")
            if param.doc:
                lines.append(f"        {param.doc}")
    lines.append("")
    lines.append(
        "run one with: faas-sched simulate --scenario NAME "
        "[--scenario-param K=V ...]"
    )
    return "\n".join(lines)


def _render_annotated_grid(grid: GridResults, args: argparse.Namespace) -> str:
    """The ``grid --compare REF`` report: the summary table with one
    significance annotation per non-reference row, then the full
    per-pair comparison tables."""
    ref = args.compare
    others = [s for s in grid.spec.strategies if s != ref]
    if ref not in grid.spec.strategies or not others:
        raise ValueError(
            f"--compare {ref!r} needs the grid to sweep {ref!r} plus at "
            f"least one other strategy (swept: {', '.join(grid.spec.strategies)})"
        )
    comparisons = [
        compare_grid(
            grid,
            ref,
            other,
            metrics=args.metrics,
            alpha=args.alpha,
            confidence=args.confidence,
            resamples=args.resamples,
            ci_method=args.ci_method,
        )
        for other in others
    ]
    notes = {key: "" for key in grid.cell_keys()}
    for comparison in comparisons:
        for (key_a, key_b), (_, result) in zip(comparison.keys, comparison.cells):
            notes[key_a] = "ref"
            sig = len(result.significant())
            notes[key_b] = f"{sig}/{len(result.comparisons)} sig vs {ref}"
    if grid.spec.retain_records:
        entries = [
            (GridResults.cell_label(key), grid.summary_for(key))
            for key in grid.cell_keys()
        ]
        mode_tag = ""
    else:
        entries = [
            (GridResults.cell_label(key), grid.streaming_summary_for(key))
            for key in grid.cell_keys()
        ]
        mode_tag = "; streaming: percentiles are t-digest estimates"
    table = render_summary_table(
        entries,
        title=(
            f"Grid vs. {ref} (Mann-Whitney U per metric, Holm-corrected "
            f"at α={args.alpha:g}{mode_tag})"
        ),
        annotations=[notes[key] for key in grid.cell_keys()],
    )
    blocks = [table]
    blocks.extend(comparison.render() for comparison in comparisons)
    return "\n\n".join(blocks)


#: Binary size suffixes accepted by ``cache gc --size-budget``.
_SIZE_SUFFIXES = {
    "kib": 1024,
    "kb": 1024,
    "k": 1024,
    "mib": 1024**2,
    "mb": 1024**2,
    "m": 1024**2,
    "gib": 1024**3,
    "gb": 1024**3,
    "g": 1024**3,
    "b": 1,
}


def _parse_size(raw: str, flag: str = "--size-budget") -> int:
    """``"512MiB"`` / ``"1048576"`` → bytes."""
    text = raw.strip().lower()
    for suffix in sorted(_SIZE_SUFFIXES, key=len, reverse=True):
        if text.endswith(suffix):
            number = text[: -len(suffix)].strip()
            break
    else:
        suffix, number = "b", text
    try:
        value = float(number)
    except ValueError:
        raise SystemExit(
            f"error: {flag} expects bytes with an optional KiB/MiB/GiB "
            f"suffix, got {raw!r}"
        ) from None
    return int(value * _SIZE_SUFFIXES[suffix])


def _run_cache(args: argparse.Namespace) -> int:
    """The ``faas-sched cache`` verbs: verify / stats / gc / merge."""
    try:
        if args.cache_command == "verify":
            verification = verify_cache(
                args.cache_dir, quarantine=not args.no_quarantine
            )
            print(
                f"scanned: {verification.scanned}  ok: {verification.ok}  "
                f"corrupt: {verification.corrupt}  stale: {verification.stale}  "
                f"quarantined: {len(verification.quarantined)}"
            )
            for name in verification.quarantined:
                print(f"  {name}")
            if verification.bad and args.no_quarantine:
                print(
                    "(bad entries left in place; rerun without --no-quarantine "
                    "to move them aside)"
                )
            return 1 if verification.bad else 0
        if args.cache_command == "stats":
            print(cache_stats(args.cache_dir).render())
            return 0
        if args.cache_command == "gc":
            budget = (
                _parse_size(args.size_budget)
                if args.size_budget is not None
                else None
            )
            report = gc_cache(
                args.cache_dir,
                max_age=args.max_age,
                size_budget=budget,
                dry_run=args.dry_run,
            )
            print(report.render())
            return 0
        if args.cache_command == "merge":
            print(merge_caches(args.src, args.dst).render())
            return 0
    except (CacheMergeError, FileNotFoundError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 1  # pragma: no cover - argparse enforces subcommands


def _run_worker(args: argparse.Namespace) -> int:
    """The ``faas-sched worker`` verb: drain a shared work queue."""

    def progress(fingerprint: str, label: str) -> None:
        print(f"worker: computing {label} [{fingerprint[:12]}]", file=sys.stderr)

    try:
        summary = run_worker(
            args.cache_dir,
            poll=args.poll,
            idle_timeout=args.idle_timeout,
            lease_ttl=args.lease_ttl,
            max_cells=args.max_cells,
            progress=None if args.no_progress else progress,
        )
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # An interrupted worker is normal operations: its lease goes
        # stale and another worker steals the cell.
        print("worker: interrupted; in-flight lease will expire", file=sys.stderr)
        return 130
    print(summary.summary_line())
    return 0


def _run_compare(args: argparse.Namespace) -> int:
    """The ``faas-sched compare A B`` verb."""
    if args.policy_a == args.policy_b:
        print(
            f"error: comparing {args.policy_a!r} against itself is vacuous",
            file=sys.stderr,
        )
        return 2
    seeds = tuple(args.seeds) if args.seeds else tuple(range(1, args.num_seeds + 1))
    if len(seeds) < 2:
        print(
            "error: a comparison needs at least 2 seeds per policy",
            file=sys.stderr,
        )
        return 2
    try:
        # GridSpec's helper filters --policy-param per policy (and rejects
        # a parameter neither policy declares), exactly like 'grid'.
        policy_params = GridSpec(
            strategies=(args.policy_a, args.policy_b),
            policy_params=_parse_policy_params(args.policy_param),
        ).policy_params_by_strategy()
        cluster = ClusterSpec(
            nodes=args.nodes if args.nodes is not None else 1,
            balancer=args.balancer if args.balancer is not None else "least-loaded",
            balancer_params=_parse_balancer_params(args.balancer_param),
            autoscaler=() if args.autoscale else None,
        )
        # Both policies run under one failure regime — the comparison is
        # between schedulers, the injected faults are part of the
        # environment (and of every cell's cache fingerprint).
        failures = FailureSpec.from_params(
            _parse_failure_params(args.failure_param)
        )
        metrics = args.metrics
        if metrics is None and not failures.is_none:
            # Under injected failures the retry/abandonment behaviour is
            # part of the verdict; fold those counters into the default
            # metric family (Holm correction spans them too).
            metrics = tuple(DEFAULT_METRICS) + ("retries", "gave_up", "failed_calls")

        def config_for(policy: str) -> ExperimentConfig:
            return ExperimentConfig(
                cores=args.cores,
                intensity=args.intensity,
                policy=policy,
                scenario=args.scenario,
                scenario_params=_parse_scenario_params(args.scenario_param),
                policy_params=policy_params[policy],
                cluster=cluster,
                failures=failures,
                retain_records=args.retain_records,
            )

        if args.adaptive:
            max_seeds = (
                args.max_seeds if args.max_seeds is not None else 4 * len(seeds)
            )
            allocation = allocate_seeds(
                config_for(args.policy_a),
                config_for(args.policy_b),
                decision_metrics=(
                    tuple(metrics) if metrics else DEFAULT_DECISION_METRICS
                ),
                seeds=seeds,
                initial_seeds=len(seeds),
                max_seeds=max_seeds,
                batch=args.batch,
                alpha=args.alpha,
                confidence=args.confidence,
                resamples=args.resamples,
                ci_method=args.ci_method,
                jobs=args.jobs,
                cache_dir=args.cache_dir,
                executor=args.executor,
            )
            print(allocation.comparison.render())
            print()
            print(allocation.describe())
            return 0

        configs = [config_for(args.policy_a).with_(seed=s) for s in seeds] + [
            config_for(args.policy_b).with_(seed=s) for s in seeds
        ]
        engine_stats = EngineStats()
        results = run_configs(
            configs,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            progress=None if args.no_progress else progress_printer(),
            cell_timeout=args.cell_timeout,
            executor=args.executor,
            stats=engine_stats,
        )
    except (ValueError, OSError, WorkerError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    comparison = compare_results(
        results[: len(seeds)],
        results[len(seeds) :],
        metrics=metrics,
        alpha=args.alpha,
        confidence=args.confidence,
        resamples=args.resamples,
        ci_method=args.ci_method,
    )
    print(comparison.render())
    print(f"\n{engine_stats.summary_line()}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "list":
        width = max(len(eid) for eid in EXPERIMENTS)
        for eid, (description, _) in EXPERIMENTS.items():
            print(f"{eid.ljust(width)}  {description}")
        return 0

    if args.command == "scenarios":
        print(_render_scenarios())
        return 0

    if args.command == "policies":
        print(_render_policies())
        return 0

    if args.command == "cache":
        return _run_cache(args)

    if args.command == "worker":
        return _run_worker(args)

    if getattr(args, "scenario", None) is not None:
        # Validate scenario parameters up front for a clean CLI error
        # (the config would reject them anyway, but with a traceback).
        try:
            get_scenario(args.scenario).validate_params(
                dict(_parse_scenario_params(args.scenario_param))
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    elif getattr(args, "scenario_param", None):
        # 'run' without --scenario keeps each artifact's own workload;
        # silently dropping the params would be worse than refusing.
        print(
            "error: --scenario-param requires --scenario "
            "(see 'faas-sched scenarios')",
            file=sys.stderr,
        )
        return 2

    if args.command in ("run", "grid", "compare"):
        if args.executor == "queue" and args.cache_dir is None:
            # QueueExecutor would reject this too, but after the sweep's
            # configs are built; fail at argument time instead.
            print(
                "error: --executor queue needs --cache-dir (the shared "
                "cache root is the work queue)",
                file=sys.stderr,
            )
            return 2
        if args.cache_dir is not None:
            # Probe the cache root now: a bad --cache-dir should fail
            # before any experiment time is spent, not at the first
            # store().
            try:
                ResultCache(args.cache_dir)
            except OSError as exc:
                print(f"error: cache directory unusable: {exc}", file=sys.stderr)
                return 2

    if args.command == "run":
        engine_stats = EngineStats()
        try:
            # run_registered rejects a --scenario override for artifacts
            # with fixed workloads and a cluster override for fixed
            # topologies; scenario builds can also fail (empty stochastic
            # scenario, unreadable replay CSV).
            report = run_registered(
                args.experiment,
                quick=not args.full,
                jobs=args.jobs,
                cache_dir=args.cache_dir,
                progress=None if args.no_progress else progress_printer(),
                scenario=args.scenario,
                scenario_params=_parse_scenario_params(args.scenario_param),
                nodes=args.nodes,
                balancers=args.balancer,
                balancer_params=_parse_balancer_params(args.balancer_param),
                autoscale=args.autoscale,
                policies=args.policies,
                policy_params=_parse_policy_params(args.policy_param),
                failure_params=_parse_failure_params(args.failure_param),
                cell_timeout=args.cell_timeout,
                executor=args.executor,
                stats=engine_stats,
            )
        except (ValueError, OSError, WorkerError) as exc:
            # With --jobs > 1 the same failures surface as WorkerError;
            # its message carries the failing cell and original exception
            # (rerun with --jobs 1 for the full traceback).
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(report)
        if engine_stats.total:
            # Fixed-protocol artifacts (table1, fig2, ...) bypass the
            # engine; only engine-run sweeps have counters to report.
            print(f"\n{engine_stats.summary_line()}")
        return 0

    if args.command == "compare":
        return _run_compare(args)

    if args.command == "grid":
        try:
            # FailureSpec.from_params rejects unknown fields and invalid
            # values (rates outside [0, 1], non-positive backoff, ...).
            spec = _grid_spec_from_args(args)
        except (ValueError, TypeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.compare is not None and args.per_seed:
            print(
                "error: --compare annotates pooled cell rows; drop --per-seed",
                file=sys.stderr,
            )
            return 2
        try:
            grid = run_grid(
                spec,
                jobs=args.jobs,
                cache_dir=args.cache_dir,
                progress=None if args.no_progress else progress_printer(),
                cell_timeout=args.cell_timeout,
                executor=args.executor,
            )
        except (ValueError, OSError, WorkerError) as exc:
            # e.g. an empty stochastic scenario, an unreadable replay
            # CSV, or a non-numeric policy parameter (the registry's
            # validators raise ValueError) — wrapped in WorkerError when
            # --jobs > 1.
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.compare is not None:
            try:
                print(_render_annotated_grid(grid, args))
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        elif spec.retain_records:
            print(table3_from_grid(grid, per_seed=args.per_seed).render())
        else:
            # Streaming cells have no records for the Table-III renderer;
            # render the same columns from the constant-size accumulators
            # (percentiles are sketch estimates, everything else exact).
            entries = []
            for key in grid.cell_keys():
                if args.per_seed:
                    for result in grid.results_for(key):
                        entries.append(
                            (result.config.label(), result.streaming_summary())
                        )
                else:
                    entries.append(
                        (GridResults.cell_label(key), grid.streaming_summary_for(key))
                    )
            print(
                render_summary_table(
                    entries,
                    title=(
                        "Streaming grid (constant-memory; percentiles are "
                        "t-digest estimates)"
                    ),
                )
            )
        stats = grid.stats
        if stats is not None:
            print(f"\n{stats.summary_line()}")
        return 0

    if args.command == "simulate":
        try:
            # Construction validates scenario params and the cluster
            # topology (balancer name/params, autoscaler); the run can
            # fail on an empty stochastic scenario or a replay CSV that
            # does not exist / cannot be read.
            cfg = ExperimentConfig(
                cores=args.cores,
                intensity=args.intensity,
                policy=args.policy,
                seed=args.seed,
                memory_mb=args.memory_mb,
                scenario=args.scenario,
                scenario_params=_parse_scenario_params(args.scenario_param),
                policy_params=_parse_policy_params(args.policy_param),
                failures=FailureSpec.from_params(
                    _parse_failure_params(args.failure_param)
                ),
                cluster=ClusterSpec(
                    nodes=args.nodes if args.nodes is not None else 1,
                    balancer=args.balancer if args.balancer is not None else "least-loaded",
                    balancer_params=_parse_balancer_params(args.balancer_param),
                    autoscaler=() if args.autoscale else None,
                ),
                retain_records=args.retain_records,
            )
            result = run_experiment(cfg)
        except (ValueError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        summary = result.summary() if result.retained else result.streaming_summary()
        print(render_summary_table([(cfg.label(), summary)]))
        if not result.retained:
            print(
                "(streaming mode: percentiles are t-digest estimates; "
                "counts, means, makespan and cold starts are exact)"
            )
        if not cfg.failures.is_none:
            print(
                f"\nfailures injected: retries: {summary.retries}  "
                f"gave up: {summary.gave_up}  failed calls: {summary.failed_calls}"
            )
        if result.balancer_stats is not None and result.retained:
            # Cluster run: the per-node breakdown says how the fleet was
            # used (spread, utilization divergence, routing spills).
            print()
            print(cluster_breakdown(result).render())
        elif result.balancer_stats is not None:
            # Streaming cluster run: the per-record breakdown needs
            # retained records; the balancer counters survive.
            bstats = result.balancer_stats
            print(
                f"\nbalancer: {bstats.get('balancer')}  "
                f"picks: {bstats.get('picks')}  spills: {bstats.get('spills', 0)}"
            )
        else:
            stats = result.node_stats[0]
            print(
                f"\ncold starts: {stats['cold_starts']}  evictions: {stats['evictions']}  "
                f"hot hits: {stats['hot_hits']}  warm hits: {stats['warm_hits']}\n"
                f"cpu utilization: {stats['cpu_utilization']:.2f}  "
                f"daemon utilization: {stats['daemon_utilization']:.2f}"
            )
        return 0

    return 1  # pragma: no cover - argparse enforces commands


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
