"""Command-line interface.

Examples
--------
List the reproducible artifacts::

    faas-sched list

Reproduce an artifact (scaled-down)::

    faas-sched run fig6

Reproduce the paper's full protocol for one artifact::

    faas-sched run table3 --full

Run a single ad-hoc experiment::

    faas-sched simulate --cores 10 --intensity 60 --policy SEPT --seed 1
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import EXPERIMENTS, run_registered
from repro.experiments.runner import run_experiment
from repro.metrics.report import render_summary_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="faas-sched",
        description=(
            "Reproduction of 'Call Scheduling to Reduce Response Time of a "
            "FaaS System' (CLUSTER 2022)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible paper artifacts")

    run = sub.add_parser("run", help="reproduce a paper artifact")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS), help="artifact id")
    run.add_argument(
        "--full",
        action="store_true",
        help="run the paper's full protocol (all seeds/sweeps); slower",
    )

    sim = sub.add_parser("simulate", help="run one ad-hoc single-node experiment")
    sim.add_argument("--cores", type=int, default=10)
    sim.add_argument("--intensity", type=int, default=30)
    sim.add_argument(
        "--policy",
        default="FIFO",
        choices=["baseline", "FIFO", "SEPT", "EECT", "RECT", "FC"],
    )
    sim.add_argument("--seed", type=int, default=1)
    sim.add_argument("--memory-mb", type=int, default=32768)
    sim.add_argument(
        "--scenario", default="uniform", choices=["uniform", "skewed", "azure"]
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "list":
        width = max(len(eid) for eid in EXPERIMENTS)
        for eid, (description, _) in EXPERIMENTS.items():
            print(f"{eid.ljust(width)}  {description}")
        return 0

    if args.command == "run":
        print(run_registered(args.experiment, quick=not args.full))
        return 0

    if args.command == "simulate":
        cfg = ExperimentConfig(
            cores=args.cores,
            intensity=args.intensity,
            policy=args.policy,
            seed=args.seed,
            memory_mb=args.memory_mb,
            scenario=args.scenario,
        )
        result = run_experiment(cfg)
        print(render_summary_table([(cfg.label(), result.summary())]))
        stats = result.node_stats[0]
        print(
            f"\ncold starts: {stats['cold_starts']}  evictions: {stats['evictions']}  "
            f"hot hits: {stats['hot_hits']}  warm hits: {stats['warm_hits']}\n"
            f"cpu utilization: {stats['cpu_utilization']:.2f}  "
            f"daemon utilization: {stats['daemon_utilization']:.2f}"
        )
        return 0

    return 1  # pragma: no cover - argparse enforces commands


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
