"""Event calendar and simulation clock.

The :class:`Environment` owns a binary-heap calendar of ``[time, priority,
sequence, event]`` entries.  Entries with equal time are popped in insertion
order (FIFO), which makes simulations fully deterministic for a fixed seed.

Calendar entries are *cancellable*: :meth:`Environment.schedule` returns an
opaque handle that :meth:`Environment.cancel_scheduled` turns into a lazy
tombstone — the entry stays in the heap but is skipped (never processed)
when it surfaces.  A live-entry counter drives loop termination, and the
heap is compacted (tombstones filtered out, then re-heapified) once dead
entries outnumber live ones, so a component that re-arms a timer on every
state change cannot grow the calendar without bound.

:class:`ReusableTimer` packages the common re-arming pattern: one
heap-allocated object whose ``arm``/``cancel`` cycle replaces the historical
"allocate a fresh Timeout and let the superseded one fire inertly" idiom
(see :class:`repro.sim.cpu.SharedCPU`).
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from itertools import count
from typing import Any, Callable, Generator, List, Optional

__all__ = [
    "Environment",
    "ReusableTimer",
    "SimulationError",
    "StopSimulation",
    "NORMAL",
    "URGENT",
]

#: Calendar priority for ordinary events.
NORMAL = 1
#: Calendar priority for events that must run before ordinary events
#: scheduled at the same timestamp (e.g. process resumption).
URGENT = 0

#: A calendar entry: ``[time, priority, sequence, event_or_None]``.
#: ``None`` in the last slot marks a cancelled (tombstoned) entry.
Entry = List[Any]

#: Compaction threshold: rebuild the heap once it holds more than this many
#: tombstones *and* tombstones outnumber live entries.
_MIN_COMPACT = 64


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. double-trigger)."""


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Environment.run` early."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class Environment:
    """A discrete-event simulation environment.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (seconds).

    Examples
    --------
    >>> env = Environment()
    >>> def proc(env):
    ...     yield env.timeout(5.0)
    ...     return "done"
    >>> p = env.process(proc(env))
    >>> env.run()
    >>> env.now
    5.0
    >>> p.value
    'done'
    """

    __slots__ = ("_now", "_queue", "_live", "_next_eid", "_active_process")

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now: float = float(initial_time)
        self._queue: List[Entry] = []
        self._live: int = 0
        self._next_eid = count().__next__
        self._active_process: Optional["Process"] = None

    # ------------------------------------------------------------------
    # Clock & calendar
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    @property
    def active_process(self) -> Optional["Process"]:
        """The process currently being resumed, if any."""
        return self._active_process

    def schedule(self, event: "Event", delay: float = 0.0, priority: int = NORMAL) -> Entry:
        """Insert *event* into the calendar ``delay`` seconds from now.

        Returns the calendar entry — an opaque handle accepted by
        :meth:`cancel_scheduled`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay!r})")
        entry: Entry = [self._now + delay, priority, self._next_eid(), event]
        heappush(self._queue, entry)
        self._live += 1
        return entry

    def cancel_scheduled(self, entry: Entry) -> bool:
        """Tombstone a calendar *entry* returned by :meth:`schedule`.

        The event will never be processed.  Returns ``False`` if the entry
        already ran or was already cancelled.  O(1) amortised: the dead
        entry is skipped when popped, and the heap is compacted once dead
        entries outnumber live ones.
        """
        if entry[3] is None:
            return False
        entry[3] = None
        self._live -= 1
        dead = len(self._queue) - self._live
        if dead > _MIN_COMPACT and dead > self._live:
            self._compact()
        return True

    def _compact(self) -> None:
        """Drop tombstones and restore the heap invariant (O(live))."""
        self._queue = [entry for entry in self._queue if entry[3] is not None]
        heapify(self._queue)

    @property
    def scheduled_count(self) -> int:
        """Number of live (non-cancelled) calendar entries."""
        return self._live

    def peek(self) -> float:
        """Time of the next live event, or ``inf`` if the calendar is empty.

        Tombstones surfacing at the top of the heap are pruned as a side
        effect (they carry no information).
        """
        queue = self._queue
        while queue:
            if queue[0][3] is not None:
                return queue[0][0]
            heappop(queue)
        return float("inf")

    def step(self) -> None:
        """Process the next live calendar entry.

        Raises
        ------
        SimulationError
            If no live entries remain.
        """
        queue = self._queue
        while True:
            try:
                entry = heappop(queue)
            except IndexError:
                raise SimulationError("no scheduled events") from None
            event = entry[3]
            if event is not None:
                break
        self._live -= 1
        # Neutralize the handle: a later cancel_scheduled() on this entry
        # must be a reported no-op, not a live-counter corruption.
        entry[3] = None
        self._now = entry[0]
        # Snapshot the callback list: an event's callbacks may legitimately
        # register new callbacks on other events while running.
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event.ok and not event.defused:
            # An unhandled failure propagates out of the event loop.
            exc = event.value
            raise exc if isinstance(exc, BaseException) else SimulationError(repr(exc))

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until the calendar drains;
            a number — run until the clock reaches that time;
            an :class:`~repro.sim.events.Event` — run until it triggers, and
            return its value.
        """
        stop_at: Optional[float] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            if until.processed:
                return until.value
            until.callbacks.append(_stop_simulation)
        else:
            stop_at = float(until)
            if stop_at < self._now:
                raise SimulationError(
                    f"until={stop_at!r} lies before the current time {self._now!r}"
                )

        try:
            while self._live:
                if stop_at is not None and self.peek() > stop_at:
                    self._now = stop_at
                    return None
                self.step()
        except StopSimulation as stop:
            return stop.value
        if isinstance(until, Event) and not until.triggered:
            raise SimulationError("simulation ended before the awaited event triggered")
        if stop_at is not None:
            self._now = stop_at
        return None

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    def event(self) -> "Event":
        """Create a fresh, untriggered :class:`~repro.sim.events.Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> "Timeout":
        """Create a :class:`~repro.sim.events.Timeout` firing after *delay*."""
        return Timeout(self, delay, value)

    def timer(self, callback: Callable[[], None]) -> "ReusableTimer":
        """Create a (disarmed) :class:`ReusableTimer` invoking *callback*."""
        return ReusableTimer(self, callback)

    def process(self, generator: Generator) -> "Process":
        """Start a new coroutine :class:`~repro.sim.process.Process`."""
        return Process(self, generator)

    def all_of(self, events) -> "AllOf":
        return AllOf(self, events)

    def any_of(self, events) -> "AnyOf":
        return AnyOf(self, events)


class ReusableTimer:
    """A re-armable calendar callback.

    One timer object serves an unbounded number of ``arm``/``fire`` cycles:
    re-arming tombstones the previous calendar entry (which therefore never
    fires) and pushes a fresh one.  This replaces the allocate-a-``Timeout``
    -per-re-arm pattern, in which superseded timeouts stayed in the heap
    and had to be filtered by generation counters in the callback.

    Not an :class:`~repro.sim.events.Event`: it cannot be yielded on or
    awaited — it satisfies exactly the calendar's processing protocol
    (``callbacks``/``ok``/``defused``).
    """

    __slots__ = ("env", "_fn", "_cblist", "_entry", "callbacks", "defused")

    #: Calendar protocol: a timer firing is always a success.
    ok = True

    def __init__(self, env: Environment, callback: Callable[[], None]) -> None:
        self.env = env
        self._fn = callback
        self._cblist = [self._fire]
        self._entry: Optional[Entry] = None
        self.callbacks: Optional[list] = None
        self.defused = True

    @property
    def armed(self) -> bool:
        """True while a live calendar entry will fire this timer."""
        entry = self._entry
        return entry is not None and entry[3] is not None

    def arm(self, delay: float, priority: int = NORMAL) -> None:
        """(Re)schedule the callback ``delay`` seconds from now, cancelling
        any previously armed firing."""
        entry = self._entry
        if entry is not None and entry[3] is not None:
            self.env.cancel_scheduled(entry)
        self.callbacks = self._cblist
        self._entry = self.env.schedule(self, delay, priority)

    def cancel(self) -> None:
        """Disarm without firing (no-op if not armed)."""
        entry = self._entry
        if entry is not None and entry[3] is not None:
            self.env.cancel_scheduled(entry)
        self._entry = None

    def _fire(self, _event: "ReusableTimer") -> None:
        self._entry = None
        self._fn()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "armed" if self.armed else "idle"
        return f"<ReusableTimer {state} at {id(self):#x}>"


def _stop_simulation(event: "Event") -> None:
    """Calendar callback used by :meth:`Environment.run(until=event)`."""
    raise StopSimulation(event.value)


# Typing-only imports for annotations used above.
from repro.sim.events import Event, Timeout, AllOf, AnyOf  # noqa: E402  (cycle-safe tail import)
from repro.sim.process import Process  # noqa: E402
