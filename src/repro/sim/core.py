"""Event calendar and simulation clock.

The :class:`Environment` owns a binary-heap calendar of ``(time, priority,
sequence, event)`` entries.  Entries with equal time are popped in insertion
order (FIFO), which makes simulations fully deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Generator, Optional

__all__ = ["Environment", "SimulationError", "StopSimulation", "NORMAL", "URGENT"]

#: Calendar priority for ordinary events.
NORMAL = 1
#: Calendar priority for events that must run before ordinary events
#: scheduled at the same timestamp (e.g. process resumption).
URGENT = 0


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. double-trigger)."""


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Environment.run` early."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class Environment:
    """A discrete-event simulation environment.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (seconds).

    Examples
    --------
    >>> env = Environment()
    >>> def proc(env):
    ...     yield env.timeout(5.0)
    ...     return "done"
    >>> p = env.process(proc(env))
    >>> env.run()
    >>> env.now
    5.0
    >>> p.value
    'done'
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now: float = float(initial_time)
        self._queue: list[tuple[float, int, int, "Event"]] = []
        self._eid = count()
        self._active_process: Optional["Process"] = None

    # ------------------------------------------------------------------
    # Clock & calendar
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    @property
    def active_process(self) -> Optional["Process"]:
        """The process currently being resumed, if any."""
        return self._active_process

    def schedule(self, event: "Event", delay: float = 0.0, priority: int = NORMAL) -> None:
        """Insert *event* into the calendar ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay!r})")
        heapq.heappush(self._queue, (self._now + delay, priority, next(self._eid), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the calendar is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next calendar entry.

        Raises
        ------
        SimulationError
            If the calendar is empty.
        """
        try:
            when, _prio, _eid, event = heapq.heappop(self._queue)
        except IndexError:
            raise SimulationError("no scheduled events") from None
        self._now = when
        # Snapshot the callback list: an event's callbacks may legitimately
        # register new callbacks on other events while running.
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event.ok and not event.defused:
            # An unhandled failure propagates out of the event loop.
            exc = event.value
            raise exc if isinstance(exc, BaseException) else SimulationError(repr(exc))

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until the calendar drains;
            a number — run until the clock reaches that time;
            an :class:`~repro.sim.events.Event` — run until it triggers, and
            return its value.
        """
        from repro.sim.events import Event  # local import to avoid a cycle

        stop_at: Optional[float] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            if until.processed:
                return until.value
            until.callbacks.append(_stop_simulation)
        else:
            stop_at = float(until)
            if stop_at < self._now:
                raise SimulationError(
                    f"until={stop_at!r} lies before the current time {self._now!r}"
                )

        try:
            while self._queue:
                if stop_at is not None and self._queue[0][0] > stop_at:
                    self._now = stop_at
                    return None
                self.step()
        except StopSimulation as stop:
            return stop.value
        if isinstance(until, Event) and not until.triggered:
            raise SimulationError("simulation ended before the awaited event triggered")
        if stop_at is not None:
            self._now = stop_at
        return None

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    def event(self) -> "Event":
        """Create a fresh, untriggered :class:`~repro.sim.events.Event`."""
        from repro.sim.events import Event

        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> "Timeout":
        """Create a :class:`~repro.sim.events.Timeout` firing after *delay*."""
        from repro.sim.events import Timeout

        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> "Process":
        """Start a new coroutine :class:`~repro.sim.process.Process`."""
        from repro.sim.process import Process

        return Process(self, generator)

    def all_of(self, events) -> "AllOf":
        from repro.sim.events import AllOf

        return AllOf(self, events)

    def any_of(self, events) -> "AnyOf":
        from repro.sim.events import AnyOf

        return AnyOf(self, events)


def _stop_simulation(event: "Event") -> None:
    """Calendar callback used by :meth:`Environment.run(until=event)`."""
    raise StopSimulation(event.value)


# Typing-only imports for annotations used above.
from repro.sim.events import Event, Timeout, AllOf, AnyOf  # noqa: E402  (cycle-safe tail import)
from repro.sim.process import Process  # noqa: E402
