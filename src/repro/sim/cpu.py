"""A malleable, processor-sharing CPU bank.

Models a multi-core worker node on which an arbitrary number of tasks
(container workloads) execute concurrently.  Each task carries

* ``work`` — demand in core-seconds,
* ``weight`` — its fair-share weight (Linux CFS ``cpu.shares`` analogue;
  OpenWhisk sets this proportional to container memory),
* ``max_rate`` — an upper bound on the number of cores the task can use at
  once (1.0 for a single-threaded function container).

At every membership change the bank redistributes capacity by *capped
water-filling*: capacity proportional to weight, truncated at ``max_rate``,
with the surplus recursively redistributed.  An optional *efficiency*
function models context-switching/management overhead: with ``n`` active
tasks the bank delivers ``cores * efficiency(n, cores)`` core-seconds per
second in total.  This is the mechanism by which CPU oversubscription (the
OpenWhisk baseline) degrades, while the paper's 1-container-per-core policy
(``n <= cores``, each at rate 1) is overhead-free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Set

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment

__all__ = ["CpuTask", "SharedCPU", "linear_overhead_efficiency"]

#: Remaining work below this threshold counts as finished (core-seconds).
_EPS = 1e-9


def linear_overhead_efficiency(kappa: float) -> Callable[[int, int], float]:
    """Efficiency model ``1 / (1 + kappa * max(0, n - cores) / cores)``.

    With ``kappa = 0`` the bank is perfectly work-conserving.  Positive
    ``kappa`` charges a throughput tax that grows with oversubscription,
    modelling OS context switches and docker management overhead
    (paper Sect. IV-A).
    """

    if kappa < 0:
        raise ValueError("kappa must be non-negative")

    def efficiency(n_tasks: int, cores: int) -> float:
        over = max(0, n_tasks - cores)
        return 1.0 / (1.0 + kappa * over / cores)

    return efficiency


class CpuTask:
    """A unit of CPU demand executing on a :class:`SharedCPU`.

    Attributes
    ----------
    event:
        Triggers (with the task) when the work completes.
    rate:
        Cores currently allocated; maintained by the bank.
    """

    __slots__ = ("work", "weight", "max_rate", "event", "rate", "started_at", "label")

    def __init__(
        self,
        work: float,
        weight: float,
        max_rate: float,
        event: Event,
        started_at: float,
        label: str = "",
    ) -> None:
        self.work = float(work)
        self.weight = float(weight)
        self.max_rate = float(max_rate)
        self.event = event
        self.rate = 0.0
        self.started_at = started_at
        self.label = label

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<CpuTask {self.label or id(self):#x} work={self.work:.4f} "
            f"rate={self.rate:.3f}>"
        )


class SharedCPU:
    """A bank of ``cores`` CPU cores shared by malleable tasks."""

    def __init__(
        self,
        env: "Environment",
        cores: int,
        efficiency: Optional[Callable[[int, int], float]] = None,
    ) -> None:
        if cores < 1:
            raise ValueError(f"cores must be >= 1, got {cores!r}")
        self.env = env
        self.cores = int(cores)
        self._efficiency = efficiency
        self._tasks: Set[CpuTask] = set()
        self._last_update = env.now
        self._version = 0
        # -- statistics ---------------------------------------------------
        #: core-seconds of useful work delivered so far.
        self.delivered_work = 0.0
        #: integral of (cores - delivered rate) over time, i.e. idle core-seconds.
        self.idle_core_seconds = 0.0
        #: peak number of concurrently active tasks.
        self.peak_tasks = 0

    # ------------------------------------------------------------------
    @property
    def active_tasks(self) -> int:
        return len(self._tasks)

    def utilization(self) -> float:
        """Average fraction of the bank's cores kept busy since t=0."""
        horizon = self.env.now
        if horizon <= 0:
            return 0.0
        return self.delivered_work / (self.cores * horizon)

    def execute(
        self,
        work: float,
        weight: float = 1.0,
        max_rate: float = 1.0,
        label: str = "",
    ) -> CpuTask:
        """Submit *work* core-seconds; returns the task (``task.event`` fires
        on completion)."""
        if work < 0:
            raise ValueError(f"work must be non-negative, got {work!r}")
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight!r}")
        if max_rate <= 0:
            raise ValueError(f"max_rate must be positive, got {max_rate!r}")
        task = CpuTask(work, weight, min(max_rate, self.cores), Event(self.env),
                       self.env.now, label)
        self._advance()
        if task.work <= _EPS:
            task.event.succeed(task)
            self._rebalance_and_arm()
            return task
        self._tasks.add(task)
        self.peak_tasks = max(self.peak_tasks, len(self._tasks))
        self._rebalance_and_arm()
        return task

    def cancel(self, task: CpuTask) -> None:
        """Abort an unfinished task; its event fails with ``RuntimeError``."""
        self._advance()
        if task in self._tasks:
            self._tasks.discard(task)
            exc = RuntimeError("cpu task cancelled")
            task.event.fail(exc)
            task.event.defused = True
            self._rebalance_and_arm()

    # ------------------------------------------------------------------
    def _advance(self) -> None:
        """Account for work done since the last update."""
        now = self.env.now
        elapsed = now - self._last_update
        if elapsed > 0:
            total_rate = 0.0
            for task in self._tasks:
                done = task.rate * elapsed
                task.work -= done
                total_rate += task.rate
            self.delivered_work += total_rate * elapsed
            self.idle_core_seconds += max(0.0, (self.cores - total_rate)) * elapsed
        self._last_update = now

    def _finish_done(self) -> None:
        done = [t for t in self._tasks if t.work <= _EPS]
        for task in done:
            self._tasks.discard(task)
            task.work = 0.0
            task.event.succeed(task)

    def _rebalance(self) -> None:
        """Capped water-filling of capacity across active tasks."""
        n = len(self._tasks)
        if n == 0:
            return
        eff = self._efficiency(n, self.cores) if self._efficiency else 1.0
        capacity = self.cores * eff
        pending = list(self._tasks)
        # Fast path: everyone fits under their cap.
        if sum(t.max_rate for t in pending) <= capacity:
            for t in pending:
                t.rate = t.max_rate
            return
        # Iterative water-filling: give proportional shares; freeze capped
        # tasks at their cap and redistribute the remainder.
        remaining = capacity
        active = pending
        while active:
            weight_sum = sum(t.weight for t in active)
            capped = []
            for t in active:
                share = remaining * t.weight / weight_sum
                if share >= t.max_rate - 1e-12:
                    capped.append(t)
            if not capped:
                for t in active:
                    t.rate = remaining * t.weight / weight_sum
                break
            for t in capped:
                t.rate = t.max_rate
                remaining -= t.max_rate
            active = [t for t in active if t not in capped]
            if remaining <= 0:
                for t in active:
                    t.rate = 0.0
                break

    def _rebalance_and_arm(self) -> None:
        self._finish_done()
        self._rebalance()
        self._arm_wake()

    def _arm_wake(self) -> None:
        """Schedule a wake-up at the earliest projected task completion."""
        self._version += 1
        version = self._version
        horizon = None
        for task in self._tasks:
            if task.rate > 0:
                eta = task.work / task.rate
                if horizon is None or eta < horizon:
                    horizon = eta
        if horizon is None:
            return
        timeout = self.env.timeout(max(0.0, horizon))
        timeout.callbacks.append(lambda _ev, v=version: self._on_wake(v))

    def _on_wake(self, version: int) -> None:
        if version != self._version:
            return  # superseded by a later membership change
        self._advance()
        self._rebalance_and_arm()
