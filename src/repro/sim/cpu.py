"""A malleable, processor-sharing CPU bank.

Models a multi-core worker node on which an arbitrary number of tasks
(container workloads) execute concurrently.  Each task carries

* ``work`` — demand in core-seconds,
* ``weight`` — its fair-share weight (Linux CFS ``cpu.shares`` analogue;
  OpenWhisk sets this proportional to container memory),
* ``max_rate`` — an upper bound on the number of cores the task can use at
  once (1.0 for a single-threaded function container).

At every membership change the bank redistributes capacity by *capped
water-filling*: capacity proportional to weight, truncated at ``max_rate``,
with the surplus recursively redistributed.  An optional *efficiency*
function models context-switching/management overhead: with ``n`` active
tasks the bank delivers ``cores * efficiency(n, cores)`` core-seconds per
second in total.  This is the mechanism by which CPU oversubscription (the
OpenWhisk baseline) degrades, while the paper's 1-container-per-core policy
(``n <= cores``, each at rate 1) is overhead-free.

Implementation notes (details and measurements in docs/PERFORMANCE.md)
----------------------------------------------------------------------
The bank is the hottest object in every experiment, so its bookkeeping is
engineered around two representations with identical floating-point
semantics:

* **scalar mode** (small populations) — parallel Python lists in insertion
  order, plain loops, and the reference water-filler
  (:func:`repro.sim.waterfill.waterfill_rates`);
* **vector mode** (large populations) — structure-of-arrays NumPy columns
  with tombstoned slots, elementwise kernels for work accounting, and
  vectorized water-filling rounds.

Every per-task floating-point chain (``work -= rate * elapsed``, shares,
ETAs) is op-for-op identical in both modes, and every reduction is a
sequential left-fold in slot order, so results do not depend on which mode
a population happens to be in.  Additional structures keep the common
regimes cheap:

* cached *exact* weight/cap sums — maintained as scaled integers while all
  live weights/caps are dyadic (the ``memory/256`` weights always are), so
  the uncontended fast path (everyone at cap) decides in O(1) with zero
  float error;
* an **ETA heap** keyed on projected completion times — while the bank
  stays in the all-at-cap regime, task rates are constant, so the earliest
  completion is found from a lazy heap instead of an O(n) scan;
* a :class:`~repro.sim.core.ReusableTimer` wake-up — re-arming tombstones
  the superseded calendar entry instead of leaving a stale ``Timeout`` to
  fire inertly.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import TYPE_CHECKING, Callable, List, Optional

import numpy as np

from repro.sim.events import Event
from repro.sim.waterfill import waterfill_rates

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment

__all__ = ["CpuTask", "SharedCPU", "linear_overhead_efficiency"]

#: Remaining work below this threshold counts as finished (core-seconds).
_EPS = 1e-9

#: Slack when testing a share against a cap (see repro.sim.waterfill).
_CAP_SLACK = 1e-12

#: Population size at which the bank switches lists -> NumPy columns, and
#: the (lower) size at which it switches back.  The hysteresis gap keeps a
#: population oscillating around the boundary from thrashing conversions.
_VECTOR_ENTER = 40
_SCALAR_EXIT = 16

#: Scale for exact dyadic bookkeeping of weight/cap sums: a value is
#: tracked as an integer multiple of 2**-20 when exactly representable.
_SCALE = float(1 << 20)
_INV_SCALE = 1.0 / _SCALE
_MAX_EXACT = float(1 << 52)

#: ETA-heap activation: build the heap once the all-at-cap regime has
#: persisted this many rebalances with at least this many tasks.
_HEAP_STREAK = 8
_HEAP_MIN_N = 64

#: Candidate window for the ETA heap's exact-minimum extraction: heap keys
#: are projected completion *estimates* whose drift from the exact chained
#: value is bounded by accumulated rounding (~1e-10 s for any realistic
#: event count); every entry within this much of the heap top is
#: re-evaluated exactly, so the returned horizon equals the exact scan's.
_ETA_MARGIN = 1e-6


def _exact_scaled(value: float) -> Optional[int]:
    """``value`` as an exact integer multiple of 2**-20, else ``None``."""
    scaled = value * _SCALE
    if -_MAX_EXACT < scaled < _MAX_EXACT and scaled == int(scaled):
        return int(scaled)
    return None


def linear_overhead_efficiency(kappa: float) -> Callable[[int, int], float]:
    """Efficiency model ``1 / (1 + kappa * max(0, n - cores) / cores)``.

    With ``kappa = 0`` the bank is perfectly work-conserving.  Positive
    ``kappa`` charges a throughput tax that grows with oversubscription,
    modelling OS context switches and docker management overhead
    (paper Sect. IV-A).
    """

    if kappa < 0:
        raise ValueError("kappa must be non-negative")

    def efficiency(n_tasks: int, cores: int) -> float:
        over = max(0, n_tasks - cores)
        return 1.0 / (1.0 + kappa * over / cores)

    return efficiency


class CpuTask:
    """A unit of CPU demand executing on a :class:`SharedCPU`.

    Attributes
    ----------
    event:
        Triggers (with the task) when the work completes.
    rate:
        Cores currently allocated; maintained by the bank.
    """

    __slots__ = (
        "weight",
        "max_rate",
        "event",
        "started_at",
        "label",
        "_work",
        "_rate",
        "_bank",
        "_slot",
    )

    def __init__(
        self,
        work: float,
        weight: float,
        max_rate: float,
        event: Event,
        started_at: float,
        label: str = "",
    ) -> None:
        self._work = float(work)
        self.weight = float(weight)
        self.max_rate = float(max_rate)
        self.event = event
        self._rate = 0.0
        self.started_at = started_at
        self.label = label
        self._bank: Optional["SharedCPU"] = None
        self._slot = -1

    @property
    def work(self) -> float:
        """Remaining demand in core-seconds (as of the bank's last
        accounting update)."""
        bank = self._bank
        if bank is None:
            return self._work
        return float(bank._works[self._slot])

    @work.setter
    def work(self, value: float) -> None:
        bank = self._bank
        if bank is None:
            self._work = float(value)
        else:
            bank._works[self._slot] = float(value)

    @property
    def rate(self) -> float:
        """Cores currently allocated; maintained by the bank."""
        bank = self._bank
        if bank is None:
            return self._rate
        return float(bank._rates[self._slot])

    @rate.setter
    def rate(self, value: float) -> None:
        bank = self._bank
        if bank is None:
            self._rate = float(value)
        else:
            bank._rates[self._slot] = float(value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<CpuTask {self.label or id(self):#x} work={self.work:.4f} "
            f"rate={self.rate:.3f}>"
        )


class SharedCPU:
    """A bank of ``cores`` CPU cores shared by malleable tasks."""

    def __init__(
        self,
        env: "Environment",
        cores: int,
        efficiency: Optional[Callable[[int, int], float]] = None,
    ) -> None:
        if cores < 1:
            raise ValueError(f"cores must be >= 1, got {cores!r}")
        self.env = env
        self.cores = int(cores)
        self._efficiency = efficiency
        #: Live tasks (membership view; columns below are authoritative).
        self._tasks: set = set()
        self._last_update = env.now
        #: Simulation time the bank came into existence (utilization basis).
        self.created_at = env.now
        # -- columns (scalar mode: Python lists, no holes) ----------------
        self._vector = False
        self._works: "List[float] | np.ndarray" = []
        self._rates: "List[float] | np.ndarray" = []
        self._weights: "List[float] | np.ndarray" = []
        self._caps: "List[float] | np.ndarray" = []
        self._slot_tasks: List[Optional[CpuTask]] = []
        self._alive: Optional[np.ndarray] = None  # vector mode only
        self._size = 0  # slots in use (== live count in scalar mode)
        self._n = 0  # live tasks
        # -- exact dyadic sum caches --------------------------------------
        self._w_exact = True
        self._cap_exact = True
        self._wsum_i = 0
        self._capsum_i = 0
        # -- regime tracking ----------------------------------------------
        self._all_at_cap = False
        self._cap_streak = 0
        self._eta_heap: Optional[list] = None
        self._heap_new: List[CpuTask] = []
        self._heap_seq = 0
        # -- wake-up ------------------------------------------------------
        self._wake_timer = env.timer(self._on_wake)
        #: Tasks discovered at/below the finish threshold by the last
        #: accounting update (consumed by ``_finish_done``).
        self._finish_pending: List[CpuTask] = []
        # -- statistics ---------------------------------------------------
        #: core-seconds of useful work delivered so far.
        self.delivered_work = 0.0
        #: integral of (cores - delivered rate) over time, i.e. idle core-seconds.
        self.idle_core_seconds = 0.0
        #: peak number of concurrently active tasks.
        self.peak_tasks = 0

    # ------------------------------------------------------------------
    @property
    def active_tasks(self) -> int:
        return len(self._tasks)

    def utilization(self) -> float:
        """Average fraction of the bank's cores kept busy since the bank
        was created."""
        horizon = self.env.now - self.created_at
        if horizon <= 0:
            return 0.0
        return self.delivered_work / (self.cores * horizon)

    def execute(
        self,
        work: float,
        weight: float = 1.0,
        max_rate: float = 1.0,
        label: str = "",
    ) -> CpuTask:
        """Submit *work* core-seconds; returns the task (``task.event`` fires
        on completion)."""
        if work < 0:
            raise ValueError(f"work must be non-negative, got {work!r}")
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight!r}")
        if max_rate <= 0:
            raise ValueError(f"max_rate must be positive, got {max_rate!r}")
        task = CpuTask(work, weight, min(max_rate, self.cores), Event(self.env),
                       self.env.now, label)
        self._advance()
        if task._work <= _EPS:
            task.event.succeed(task)
            self._rebalance_and_arm()
            return task
        self._add(task)
        if self._n > self.peak_tasks:
            self.peak_tasks = self._n
        self._rebalance_and_arm()
        return task

    def cancel(self, task: CpuTask) -> None:
        """Abort an unfinished task; its event fails with ``RuntimeError``."""
        self._advance()
        if task in self._tasks:
            self._remove(task, finished=False)
            exc = RuntimeError("cpu task cancelled")
            task.event.fail(exc)
            task.event.defused = True
            self._rebalance_and_arm()

    # ------------------------------------------------------------------
    # Membership bookkeeping
    # ------------------------------------------------------------------
    def _add(self, task: CpuTask) -> None:
        self._tasks.add(task)
        if self._w_exact:
            wi = _exact_scaled(task.weight)
            if wi is None:
                self._w_exact = False
            else:
                self._wsum_i += wi
        if self._cap_exact:
            ci = _exact_scaled(task.max_rate)
            if ci is None:
                self._cap_exact = False
            else:
                self._capsum_i += ci
        if not self._vector and self._n >= _VECTOR_ENTER:
            self._to_vector()
        if self._vector:
            slot = self._size
            if slot == len(self._slot_tasks):
                self._grow()
            self._works[slot] = task._work
            self._rates[slot] = 0.0
            self._weights[slot] = task.weight
            self._caps[slot] = task.max_rate
            self._alive[slot] = True
            self._slot_tasks[slot] = task
            self._size = slot + 1
        else:
            slot = self._size
            self._works.append(task._work)
            self._rates.append(0.0)
            self._weights.append(task.weight)
            self._caps.append(task.max_rate)
            self._slot_tasks.append(task)
            self._size += 1
        task._bank = self
        task._slot = slot
        self._n += 1
        if self._eta_heap is not None:
            self._heap_new.append(task)

    def _remove(self, task: CpuTask, finished: bool) -> None:
        """Detach *task*, preserving its final work/rate on the object."""
        self._tasks.discard(task)
        slot = task._slot
        if self._vector:
            task._work = 0.0 if finished else float(self._works[slot])
            task._rate = float(self._rates[slot])
            # Dead-slot encoding chosen so full-slice kernels need no mask:
            # rate 0 makes the work update and rate left-fold no-ops, +inf
            # work keeps the slot out of finish detection and ETA minima,
            # zero weight/cap keeps it out of the water-filling sums.
            self._works[slot] = np.inf
            self._rates[slot] = 0.0
            self._weights[slot] = 0.0
            self._caps[slot] = 0.0
            self._alive[slot] = False
            self._slot_tasks[slot] = None
        else:
            task._work = 0.0 if finished else self._works[slot]
            task._rate = self._rates[slot]
            del self._works[slot]
            del self._rates[slot]
            del self._weights[slot]
            del self._caps[slot]
            del self._slot_tasks[slot]
            for t in self._slot_tasks[slot:]:
                t._slot -= 1
            self._size -= 1
        task._bank = None
        task._slot = -1
        self._n -= 1
        if self._w_exact:
            self._wsum_i -= _exact_scaled(task.weight)
        if self._cap_exact:
            self._capsum_i -= _exact_scaled(task.max_rate)
        if self._n == 0:
            self._reset_columns()
        elif self._vector:
            if self._n <= _SCALAR_EXIT:
                self._to_scalar()
            elif self._size > 64 and (self._size - self._n) > self._n:
                self._compact()

    def _reset_columns(self) -> None:
        """Return the empty bank to pristine scalar mode."""
        self._vector = False
        self._works = []
        self._rates = []
        self._weights = []
        self._caps = []
        self._slot_tasks = []
        self._alive = None
        self._size = 0
        self._w_exact = True
        self._cap_exact = True
        self._wsum_i = 0
        self._capsum_i = 0
        self._all_at_cap = False
        self._cap_streak = 0
        self._eta_heap = None
        self._heap_new = []

    def _to_vector(self) -> None:
        """Lists -> NumPy columns (exact value copies, order preserved)."""
        n = self._size
        capacity = max(64, 1 << (n + 1).bit_length())
        works = np.zeros(capacity)
        rates = np.zeros(capacity)
        weights = np.zeros(capacity)
        caps = np.zeros(capacity)
        alive = np.zeros(capacity, dtype=bool)
        works[:n] = self._works
        rates[:n] = self._rates
        weights[:n] = self._weights
        caps[:n] = self._caps
        alive[:n] = True
        self._works, self._rates = works, rates
        self._weights, self._caps = weights, caps
        self._alive = alive
        self._slot_tasks = self._slot_tasks + [None] * (capacity - n)
        self._vector = True

    def _grow(self) -> None:
        capacity = max(64, 2 * len(self._slot_tasks))
        for name in ("_works", "_rates", "_weights", "_caps"):
            column = getattr(self, name)
            grown = np.zeros(capacity)
            grown[: self._size] = column[: self._size]
            setattr(self, name, grown)
        alive = np.zeros(capacity, dtype=bool)
        alive[: self._size] = self._alive[: self._size]
        self._alive = alive
        self._slot_tasks.extend([None] * (capacity - len(self._slot_tasks)))

    def _live_slots(self) -> np.ndarray:
        return np.nonzero(self._alive[: self._size])[0]

    def _compact(self) -> None:
        """Squeeze out dead slots, preserving insertion order."""
        live = self._live_slots()
        n = live.size
        for name in ("_works", "_rates", "_weights", "_caps"):
            column = getattr(self, name)
            column[:n] = column[live]
            column[n : self._size] = 0.0
        self._alive[:n] = True
        self._alive[n : self._size] = False
        tasks = [self._slot_tasks[s] for s in live]
        for slot, task in enumerate(tasks):
            task._slot = slot
        self._slot_tasks[:n] = tasks
        self._slot_tasks[n : self._size] = [None] * (self._size - n)
        self._size = n

    def _to_scalar(self) -> None:
        """NumPy columns -> lists (exact value copies, order preserved)."""
        live = self._live_slots()
        works = self._works[live].tolist()
        rates = self._rates[live].tolist()
        weights = self._weights[live].tolist()
        caps = self._caps[live].tolist()
        tasks = [self._slot_tasks[s] for s in live]
        for slot, task in enumerate(tasks):
            task._slot = slot
        self._works, self._rates = works, rates
        self._weights, self._caps = weights, caps
        self._slot_tasks = tasks
        self._alive = None
        self._size = len(tasks)
        self._vector = False

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _advance(self) -> None:
        """Account for work done since the last update.

        Applies ``work -= rate * elapsed`` per task — op-for-op the same
        chain in either mode — accumulates delivered/idle core-seconds
        from the slot-order left-fold of rates, and records tasks that
        crossed the finish threshold in ``_finish_pending``.
        """
        now = self.env.now
        elapsed = now - self._last_update
        if elapsed > 0.0:
            total = 0.0
            if self._n:
                if self._vector:
                    size = self._size
                    works = self._works[:size]
                    rates = self._rates[:size]
                    works -= rates * elapsed
                    if self._all_at_cap and self._cap_exact:
                        # All rates sit at their (dyadic) caps: the cached
                        # integer sum equals the left-fold exactly.
                        total = self._capsum_i * _INV_SCALE
                    else:
                        total = float(np.add.accumulate(rates)[-1])
                    # Dead slots hold +inf work, so a plain minimum gates
                    # finish detection without a liveness mask.
                    if works.min() <= _EPS:
                        slot_tasks = self._slot_tasks
                        self._finish_pending = [
                            slot_tasks[s] for s in np.nonzero(works <= _EPS)[0]
                        ]
                else:
                    works = self._works
                    pending = self._finish_pending
                    for i, r in enumerate(self._rates):
                        if r != 0.0:
                            w = works[i] - r * elapsed
                            works[i] = w
                            total += r
                            if w <= _EPS:
                                pending.append(self._slot_tasks[i])
            self.delivered_work += total * elapsed
            self.idle_core_seconds += max(0.0, self.cores - total) * elapsed
        self._last_update = now

    def _finish_done(self) -> None:
        """Complete tasks flagged by the last :meth:`_advance` (insertion
        order)."""
        pending = self._finish_pending
        if pending:
            self._finish_pending = []
            for task in pending:
                if task._bank is self:
                    self._remove(task, finished=True)
                    task.event.succeed(task)

    # ------------------------------------------------------------------
    # Capacity allocation
    # ------------------------------------------------------------------
    def _rebalance(self) -> None:
        """Capped water-filling of capacity across active tasks."""
        n = self._n
        if n == 0:
            return
        eff = self._efficiency(n, self.cores) if self._efficiency else 1.0
        capacity = self.cores * eff
        if self._cap_exact:
            caps_sum = self._capsum_i * _INV_SCALE
        elif self._vector:
            # Dead slots hold cap 0.0 — identity elements of the left-fold.
            caps_sum = float(np.add.accumulate(self._caps[: self._size])[-1])
        else:
            caps_sum = 0.0
            for cap in self._caps:
                caps_sum += cap
        if caps_sum <= capacity:
            # Fast path: everyone runs at its cap (dead slots copy 0.0).
            if self._vector:
                self._rates[: self._size] = self._caps[: self._size]
            else:
                self._rates[:] = self._caps
            if self._all_at_cap:
                self._cap_streak += 1
            else:
                self._all_at_cap = True
                self._cap_streak = 1
            return
        self._all_at_cap = False
        self._cap_streak = 0
        self._eta_heap = None
        self._heap_new = []
        if not self._vector:
            self._rates[:] = waterfill_rates(self._weights, self._caps, capacity)
            return
        self._rebalance_vector(capacity)

    def _rebalance_vector(self, capacity: float) -> None:
        """Vectorized water-filling rounds (one NumPy pass per cap-frontier
        round instead of one Python pass per task per round).

        Floating-point semantics match :func:`waterfill_rates` on the live
        population in slot order: shares are computed elementwise with the
        same expression shape, the per-round weight sum is the same
        left-fold (or the exact cached value when all weights are dyadic),
        and capped tasks leave ``remaining`` by sequential subtraction.
        """
        size = self._size
        rates = self._rates[:size]
        weights = self._weights[:size]
        caps = self._caps[:size]
        remaining = capacity
        # First round on full slices: dead slots (weight 0 -> share 0,
        # cap 0) must be excluded from the capped test but cost nothing in
        # the sums, and in the common no-frontier case the whole allocation
        # is a single fused pass with no index gathers.
        if self._w_exact:
            weight_sum = self._wsum_i * _INV_SCALE
        else:
            weight_sum = float(np.add.accumulate(weights)[-1])
        shares = remaining * weights / weight_sum
        capped = shares >= caps - _CAP_SLACK
        capped &= self._alive[:size]
        if not capped.any():
            rates[:] = shares
            return
        idx = self._live_slots()
        exact = self._w_exact
        wsum_i = self._wsum_i
        capped = capped[idx]
        shares = shares[idx]
        while True:
            capped_idx = idx[capped]
            rates[capped_idx] = caps[capped_idx]
            for cap in caps[capped_idx].tolist():
                remaining -= cap
            if exact:
                for weight in weights[capped_idx].tolist():
                    wsum_i -= _exact_scaled(weight)
            idx = idx[~capped]
            if remaining <= 0:
                rates[idx] = 0.0
                return
            if not idx.size:
                return
            if exact:
                weight_sum = wsum_i * _INV_SCALE
            else:
                weight_sum = float(np.add.accumulate(weights[idx])[-1])
            shares = remaining * weights[idx] / weight_sum
            capped = shares >= caps[idx] - _CAP_SLACK
            if not capped.any():
                rates[idx] = shares
                return

    def _rebalance_and_arm(self) -> None:
        self._finish_done()
        self._rebalance()
        self._arm_wake()

    # ------------------------------------------------------------------
    # Wake-up scheduling
    # ------------------------------------------------------------------
    def _arm_wake(self) -> None:
        """(Re)schedule the wake-up at the earliest projected completion.

        Re-arming cancels the superseded calendar entry (a tombstone that
        never fires), replacing the historical allocate-and-version-check
        pattern.
        """
        if self._n == 0:
            self._wake_timer.cancel()
            return
        horizon: Optional[float] = None
        if self._all_at_cap:
            if (
                self._eta_heap is None
                and self._cap_streak >= _HEAP_STREAK
                and self._n >= _HEAP_MIN_N
            ):
                self._build_eta_heap()
            if self._eta_heap is not None:
                horizon = self._heap_horizon()
        if horizon is None:
            horizon = self._scan_horizon()
        if horizon is None:
            self._wake_timer.cancel()
            return
        self._wake_timer.arm(horizon if horizon > 0.0 else 0.0)

    def _scan_horizon(self) -> Optional[float]:
        """Exact earliest ETA by direct scan (any regime)."""
        if self._vector:
            # Full-slice division: zero-rate and dead slots produce +inf
            # (dead work is +inf anyway), which the minimum ignores.
            with np.errstate(divide="ignore", invalid="ignore"):
                etas = self._works[: self._size] / self._rates[: self._size]
                horizon = float(etas.min())
            return horizon if horizon != np.inf else None
        horizon = None
        works = self._works
        for i, r in enumerate(self._rates):
            if r > 0.0:
                eta = works[i] / r
                if horizon is None or eta < horizon:
                    horizon = eta
        return horizon

    def _build_eta_heap(self) -> None:
        """Index all live tasks by projected completion time.

        Valid only while the all-at-cap regime holds: rates are then
        constant across membership changes, so projected completions stay
        fixed (up to rounding drift, absorbed by ``_ETA_MARGIN``).
        """
        now = self.env.now
        works = self._works
        rates = self._rates
        seq = self._heap_seq
        heap = []
        for task in self._iter_live():
            slot = task._slot
            heap.append((now + float(works[slot]) / float(rates[slot]), seq, task))
            seq += 1
        heapify(heap)
        self._heap_seq = seq
        self._eta_heap = heap
        self._heap_new = []

    def _iter_live(self):
        if self._vector:
            slot_tasks = self._slot_tasks
            for slot in self._live_slots():
                yield slot_tasks[slot]
        else:
            yield from self._slot_tasks

    def _heap_horizon(self) -> Optional[float]:
        """Exact earliest ETA via the heap: every entry whose *estimated*
        completion lies within ``_ETA_MARGIN`` of the heap top is
        re-evaluated from the exact chained work, so the result equals
        :meth:`_scan_horizon` while touching O(candidates · log n) entries.
        """
        heap = self._eta_heap
        works = self._works
        rates = self._rates
        now = self.env.now
        for task in self._heap_new:
            if task._bank is self:
                slot = task._slot
                heappush(
                    heap,
                    (now + float(works[slot]) / float(rates[slot]), self._heap_seq, task),
                )
                self._heap_seq += 1
        self._heap_new = []
        while heap and heap[0][2]._bank is not self:
            heappop(heap)
        if not heap:
            return None
        limit = heap[0][0] + _ETA_MARGIN
        candidates = []
        while heap and heap[0][0] <= limit:
            entry = heappop(heap)
            if entry[2]._bank is self:
                candidates.append(entry)
        best: Optional[float] = None
        for _, seq, task in candidates:
            slot = task._slot
            eta = float(works[slot]) / float(rates[slot])
            heappush(heap, (now + eta, seq, task))
            if best is None or eta < best:
                best = eta
        return best

    def _on_wake(self) -> None:
        self._advance()
        self._rebalance_and_arm()
