"""Queued resources: counting semaphores and object stores."""

from __future__ import annotations

import heapq
from itertools import count
from typing import TYPE_CHECKING, Any, Callable, List, Optional, Tuple

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment

__all__ = [
    "Resource",
    "PriorityResource",
    "Store",
    "PriorityStore",
    "StorePutEvent",
    "StoreGetEvent",
]


class Request(Event):
    """Pending acquisition of a :class:`Resource` slot.

    Usable as a context manager: ``with res.request() as req: yield req``.
    """

    def __init__(self, resource: "Resource", priority: float = 0.0) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        resource._enqueue(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Release the slot (if granted) or withdraw the request."""
        self.resource._cancel(self)


class Resource:
    """A counting semaphore with a FIFO wait queue.

    Parameters
    ----------
    env:
        Owning environment.
    capacity:
        Number of concurrently grantable slots (``>= 1``).
    """

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.env = env
        self._capacity = int(capacity)
        self._users: set[Request] = set()
        self._queue: list[tuple[float, int, Request]] = []
        self._seq = count()

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of granted slots."""
        return len(self._users)

    @property
    def queued(self) -> int:
        """Number of waiting requests."""
        return len(self._queue)

    def request(self, priority: float = 0.0) -> Request:
        """Queue a request for one slot.

        For the plain :class:`Resource` the *priority* argument is ignored
        (FIFO); :class:`PriorityResource` honours it (lower first).
        """
        return Request(self, priority)

    # -- internals -------------------------------------------------------
    def _sort_key(self, request: Request, seq: int) -> tuple[float, int]:
        return (0.0, seq)  # FIFO

    def _enqueue(self, request: Request) -> None:
        seq = next(self._seq)
        heapq.heappush(self._queue, (*self._sort_key(request, seq), request))
        self._grant()

    def _cancel(self, request: Request) -> None:
        if request in self._users:
            self._users.discard(request)
            self._grant()
        elif not request.triggered:
            # Lazy removal: mark and skip at grant time.
            request._withdrawn = True  # type: ignore[attr-defined]

    def _grant(self) -> None:
        while self._queue and len(self._users) < self._capacity:
            *_, request = self._queue[0]
            if getattr(request, "_withdrawn", False):
                heapq.heappop(self._queue)
                continue
            heapq.heappop(self._queue)
            self._users.add(request)
            request.succeed()


class PriorityResource(Resource):
    """A :class:`Resource` whose waiters are served lowest-priority-first.

    Ties broken FIFO.
    """

    def _sort_key(self, request: Request, seq: int) -> tuple[float, int]:
        return (request.priority, seq)


class StorePutEvent(Event):
    """Pending insertion into a :class:`Store`."""

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item
        store._put_queue.append(self)
        store._dispatch()


class StoreGetEvent(Event):
    """Pending retrieval from a :class:`Store`.

    Attributes
    ----------
    priority:
        Used by :class:`PriorityStore` consumers; lower is served first.
    """

    def __init__(self, store: "Store", priority: float = 0.0) -> None:
        super().__init__(store.env)
        self.priority = priority
        self._seq = next(store._seq)
        store._get_queue.append(self)
        store._dispatch()

    def cancel(self) -> None:
        """Withdraw an unfulfilled get."""
        if not self.triggered:
            self._withdrawn = True


class Store:
    """An unbounded (or bounded) FIFO store of arbitrary items."""

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: List[Any] = []
        self._put_queue: List[StorePutEvent] = []
        self._get_queue: List[StoreGetEvent] = []
        self._seq = count()

    def put(self, item: Any) -> StorePutEvent:
        """Insert *item*; the returned event triggers once stored."""
        return StorePutEvent(self, item)

    def get(self, priority: float = 0.0) -> StoreGetEvent:
        """Request one item; the returned event triggers with the item."""
        return StoreGetEvent(self, priority)

    def __len__(self) -> int:
        return len(self.items)

    # -- internals -------------------------------------------------------
    def _pop_item(self) -> Any:
        return self.items.pop(0)

    def _push_item(self, item: Any) -> None:
        self.items.append(item)

    def _next_getter(self) -> Optional[StoreGetEvent]:
        while self._get_queue:
            getter = self._get_queue[0]
            if getattr(getter, "_withdrawn", False):
                self._get_queue.pop(0)
                continue
            return getter
        return None

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            # Admit pending puts while there is room.
            while self._put_queue and len(self.items) < self.capacity:
                put = self._put_queue.pop(0)
                self._push_item(put.item)
                put.succeed()
                progress = True
            # Serve pending gets while there are items.
            while self.items:
                getter = self._next_getter()
                if getter is None:
                    break
                self._get_queue.remove(getter)
                getter.succeed(self._pop_item())
                progress = True


class PriorityStore(Store):
    """A store whose *items* are retrieved lowest-sort-key-first.

    Items must be orderable (e.g. tuples ``(priority, seq, payload)``), or a
    ``key`` callable can be supplied.  Insertion order breaks ties only if
    the caller encodes a sequence number in the item, which
    :mod:`repro.scheduling.queue` does.
    """

    def __init__(
        self,
        env: "Environment",
        capacity: float = float("inf"),
        key: Optional[Callable[[Any], Any]] = None,
    ) -> None:
        super().__init__(env, capacity)
        self._key = key
        self._heap_seq = count()
        # items kept as a heap of (key, seq, item)
        self._heap: List[Tuple[Any, int, Any]] = []

    @property
    def sorted_items(self) -> List[Any]:
        """Items in retrieval order (non-destructive)."""
        return [item for _, _, item in sorted(self._heap)]

    def __len__(self) -> int:
        return len(self._heap)

    def _push_item(self, item: Any) -> None:
        sort_key = self._key(item) if self._key is not None else item
        heapq.heappush(self._heap, (sort_key, next(self._heap_seq), item))
        self.items = [entry[2] for entry in self._heap]  # keep .items coherent

    def _pop_item(self) -> Any:
        _, _, item = heapq.heappop(self._heap)
        self.items = [entry[2] for entry in self._heap]
        return item

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            while self._put_queue and len(self._heap) < self.capacity:
                put = self._put_queue.pop(0)
                self._push_item(put.item)
                put.succeed()
                progress = True
            while self._heap:
                getter = self._next_getter()
                if getter is None:
                    break
                self._get_queue.remove(getter)
                getter.succeed(self._pop_item())
                progress = True
