"""Named, independently seeded random streams.

Experiments need reproducibility *and* stream independence: changing how
many random numbers one component draws must not perturb another component.
:class:`RngRegistry` derives one :class:`numpy.random.Generator` per name
from a root seed via ``SeedSequence.spawn``-style key hashing, so streams
are stable under code evolution.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """A factory of named random generators derived from one root seed.

    Examples
    --------
    >>> rngs = RngRegistry(seed=42)
    >>> a = rngs.get("arrivals")
    >>> b = rngs.get("service:compression")
    >>> a is rngs.get("arrivals")
    True
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for *name*, creating it deterministically."""
        gen = self._streams.get(name)
        if gen is None:
            # Stable per-name entropy: root seed + a deterministic hash of the
            # name (Python's hash() is salted per process, so roll our own).
            key = _stable_hash(name)
            seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(key,))
            gen = np.random.Generator(np.random.PCG64(seq))
            self._streams[name] = gen
        return gen

    def __contains__(self, name: str) -> bool:
        return name in self._streams


def _stable_hash(name: str) -> int:
    """A process-independent 64-bit FNV-1a hash of *name*."""
    value = 0xCBF29CE484222325
    for byte in name.encode("utf-8"):
        value ^= byte
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value
