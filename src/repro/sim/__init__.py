"""Discrete-event simulation (DES) kernel.

This subpackage is a self-contained, generator-coroutine based simulation
kernel in the style of SimPy, written from scratch because the reproduction
must not depend on packages outside the allowed set.  It provides:

* :class:`~repro.sim.core.Environment` — the event calendar and clock;
* :class:`~repro.sim.events.Event`, :class:`~repro.sim.events.Timeout`,
  :class:`~repro.sim.events.AnyOf`, :class:`~repro.sim.events.AllOf` —
  one-shot events and combinators;
* :class:`~repro.sim.process.Process` / :class:`~repro.sim.process.Interrupt`
  — coroutine processes driven by the calendar;
* :class:`~repro.sim.resources.Resource`,
  :class:`~repro.sim.resources.PriorityResource`,
  :class:`~repro.sim.resources.Store`,
  :class:`~repro.sim.resources.PriorityStore` — queued resources;
* :class:`~repro.sim.cpu.SharedCPU` — a malleable processor-sharing CPU bank
  used to model OS-level scheduling of containers on a worker node;
* :class:`~repro.sim.rng.RngRegistry` — named, independently seeded random
  streams for reproducible experiments.
"""

from repro.sim.core import Environment, ReusableTimer, SimulationError, StopSimulation
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Interrupt, Process
from repro.sim.resources import (
    PriorityResource,
    PriorityStore,
    Resource,
    Store,
    StorePutEvent,
    StoreGetEvent,
)
from repro.sim.cpu import CpuTask, SharedCPU, linear_overhead_efficiency
from repro.sim.rng import RngRegistry
from repro.sim.waterfill import waterfill_rates

__all__ = [
    "AllOf",
    "AnyOf",
    "CpuTask",
    "Environment",
    "Event",
    "Interrupt",
    "PriorityResource",
    "PriorityStore",
    "Process",
    "Resource",
    "ReusableTimer",
    "RngRegistry",
    "SharedCPU",
    "SimulationError",
    "StopSimulation",
    "Store",
    "StoreGetEvent",
    "StorePutEvent",
    "Timeout",
    "linear_overhead_efficiency",
    "waterfill_rates",
]
