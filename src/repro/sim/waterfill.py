"""Reference capped water-filling allocator.

This is the brute-force O(rounds · n) allocator the original
:class:`~repro.sim.cpu.SharedCPU` ran on every membership change, lifted
out verbatim as a pure function over parallel lists.  It serves two roles:

* **Oracle** — the incremental/vectorized allocator inside ``SharedCPU``
  must reproduce this function's output *exactly* (same IEEE-754 results,
  not just approximately); the property tests in
  ``tests/sim/test_waterfill_properties.py`` enforce that on randomized
  populations.
* **Small-population fast path** — for a handful of tasks the plain Python
  rounds beat NumPy's per-call overhead, so ``SharedCPU`` calls this
  function directly in scalar mode.

Floating-point order contract: every reduction is a sequential left-fold
in *input order*.  Callers that need historical reproducibility must pass
tasks in a deterministic order (``SharedCPU`` uses insertion order).
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["waterfill_rates"]

#: Slack used when testing a proportional share against a task's cap,
#: identical to the historical in-kernel constant: a share within 1e-12
#: of the cap counts as capped, which keeps the recursion from looping on
#: representation noise.
CAP_SLACK = 1e-12


def waterfill_rates(
    weights: Sequence[float], caps: Sequence[float], capacity: float
) -> List[float]:
    """Allocate *capacity* across tasks by capped water-filling.

    Capacity is split proportionally to ``weights``; any task whose
    proportional share reaches its cap is frozen at the cap, and the
    remainder is redistributed among the rest (recursively, until no new
    task caps out or capacity is exhausted).

    Parameters
    ----------
    weights:
        Positive fair-share weights, one per task.
    caps:
        Per-task maximum rates (``max_rate``), same length as *weights*.
    capacity:
        Total deliverable rate (cores × efficiency).

    Returns
    -------
    list[float]
        Allocated rate per task, aligned with the inputs.
    """
    n = len(weights)
    if len(caps) != n:
        raise ValueError(f"weights/caps length mismatch ({n} vs {len(caps)})")
    rates = [0.0] * n
    if n == 0:
        return rates
    # Fast path: everyone fits under their cap.
    caps_sum = 0.0
    for cap in caps:
        caps_sum += cap
    if caps_sum <= capacity:
        rates[:] = caps
        return rates
    # Iterative water-filling: give proportional shares; freeze capped
    # tasks at their cap and redistribute the remainder.
    remaining = capacity
    active = list(range(n))
    while active:
        weight_sum = 0.0
        for i in active:
            weight_sum += weights[i]
        capped = []
        for i in active:
            share = remaining * weights[i] / weight_sum
            if share >= caps[i] - CAP_SLACK:
                capped.append(i)
        if not capped:
            for i in active:
                rates[i] = remaining * weights[i] / weight_sum
            break
        for i in capped:
            rates[i] = caps[i]
            remaining -= caps[i]
        capped_set = set(capped)
        active = [i for i in active if i not in capped_set]
        if remaining <= 0:
            for i in active:
                rates[i] = 0.0
            break
    return rates
