"""One-shot events and event combinators."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment

__all__ = ["Event", "Timeout", "Condition", "AllOf", "AnyOf", "PENDING"]

#: Sentinel for "event not yet triggered".
PENDING = object()


class Event:
    """A one-shot event.

    Lifecycle: *pending* → (``succeed``/``fail``) *triggered* → *processed*
    (once its callbacks have run from the calendar).

    Attributes
    ----------
    callbacks:
        List of callables invoked with the event when it is processed;
        ``None`` once processed.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        #: True if a failure has been marked as handled (will not crash the run).
        self.defused = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value (or exception, if failed)."""
        if self._value is PENDING:
            raise AttributeError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with *value* and schedule it."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception and schedule it."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Mirror the state of another triggered *event* (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def __repr__(self) -> str:
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        super().__init__(env)
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        self.delay = float(delay)
        self._ok = True
        self._value = value
        env.schedule(self, delay=self.delay)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Timeout delay={self.delay!r} at {id(self):#x}>"


class Condition(Event):
    """Triggers once ``evaluate(events, n_triggered)`` returns True.

    Failure of any constituent event fails the condition immediately.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[List[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("all events of a condition must share one environment")

        if not self._events or self._evaluate(self._events, 0):
            self.succeed(self._collect())
            return

        for event in self._events:
            if event.processed:
                self._check(event)
            elif event.triggered:
                # Triggered but still in the calendar: hook in before callbacks run.
                event.callbacks.append(self._check)
            else:
                event.callbacks.append(self._check)

    def _collect(self) -> dict:
        """Values of all processed-and-ok constituent events, in order.

        ``processed`` (not merely ``triggered``) is the right test: a
        :class:`Timeout` carries its value from creation, but it has not
        *happened* until its calendar entry is popped.
        """
        return {e: e.value for e in self._events if e.processed and e.ok}

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defused = True
            self.fail(event.value)
            return
        self._count += 1
        if self._evaluate(self._events, self._count):
            self.succeed(self._collect())


class AllOf(Condition):
    """Triggers when **all** constituent events have triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, lambda evs, n: n >= len(evs), events)


class AnyOf(Condition):
    """Triggers when **any** constituent event has triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, lambda evs, n: n >= 1, events)
