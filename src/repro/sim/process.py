"""Coroutine processes driven by the event calendar."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.core import URGENT
from repro.sim.events import Event, PENDING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment

__all__ = ["Process", "Interrupt"]


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Process(Event):
    """A simulation process wrapping a generator.

    The generator yields :class:`~repro.sim.events.Event` instances; the
    process resumes when the yielded event triggers, receiving its value (or
    having its exception thrown in).  The process itself is an event that
    triggers when the generator returns (value = return value) or raises.
    """

    __slots__ = ("_generator", "_target", "_send", "_throw")

    def __init__(self, env: "Environment", generator: Generator) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        # Bound once: the resume loop runs these on every event cycle.
        self._send = generator.send
        self._throw = generator.throw
        self._target: Optional[Event] = None
        # Kick off the coroutine at the current time, before normal events.
        init = Event(env)
        init._ok = True
        init._value = None
        env.schedule(init, priority=URGENT)
        init.callbacks.append(self._resume)

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise RuntimeError("a process is not allowed to interrupt itself")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event.defused = True
        # Detach from the awaited event so its eventual trigger is ignored.
        target, self._target = self._target, None
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self.env.schedule(interrupt_event, priority=URGENT)
        interrupt_event.callbacks.append(self._resume)

    # ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of *event*."""
        env = self.env
        previous, env._active_process = env._active_process, self
        send = self._send
        try:
            while True:
                try:
                    if event._ok:
                        next_target = send(event._value)
                    else:
                        event.defused = True
                        next_target = self._throw(event._value)
                except StopIteration as stop:
                    self._target = None
                    self.succeed(stop.value)
                    return
                except BaseException as exc:
                    self._target = None
                    self.fail(exc)
                    return

                # Fast path: a pending event of this environment (the single
                # ``yield env.timeout(...)`` / ``yield task.event`` shape) —
                # one isinstance, one env check, one append.
                if isinstance(next_target, Event) and next_target.env is env:
                    callbacks = next_target.callbacks
                    if callbacks is not None:
                        self._target = next_target
                        callbacks.append(self._resume)
                        return
                    # Already resolved: loop immediately with its outcome.
                    event = next_target
                    continue

                # Slow path: feed a descriptive error back into the
                # generator so user code sees a meaningful traceback at the
                # faulty ``yield``.
                event = Event(env)
                event._ok = False
                if not isinstance(next_target, Event):
                    event._value = TypeError(
                        f"process may only yield events, got {next_target!r}"
                    )
                else:
                    event._value = ValueError("yielded event belongs to another environment")
                event.defused = True
        finally:
            env._active_process = previous
