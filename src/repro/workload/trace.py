"""Synthetic trace workloads (extension; DESIGN.md §7).

The paper motivates overload handling with the Azure Functions trace
(Shahrad et al., ATC'20): request rates are uneven with short peaks, and
per-function popularity is heavily skewed.  Real trace files are not
redistributable, so this module generates *trace-shaped* synthetic
workloads that exercise the same code paths:

* a per-minute arrival-rate profile — baseline load plus a configurable
  peak (the paper's 60-second burst is the special case of an infinite
  peak-to-baseline ratio);
* a Zipf-like function-popularity mix (short functions most popular,
  mirroring the trace's mass of short, frequent invocations).

For replaying *actual* Azure-shaped CSV trace files, see
:mod:`repro.workload.replay`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.workload.functions import FunctionSpec, sebs_catalog
from repro.workload.generator import (
    BurstScenario,
    draw_requests,
    poisson_arrivals,
    requests_for_intensity,
    zipf_weights,
)
from repro.workload.registry import ScenarioParam, register_scenario

__all__ = ["TraceProfile", "trace_scenario"]


@dataclass(frozen=True)
class TraceProfile:
    """Shape of a synthetic request trace.

    Attributes
    ----------
    duration_s:
        Total trace length (seconds).
    base_rate:
        Steady-state arrival rate (requests/second).
    peak_rate:
        Arrival rate inside the peak window (requests/second).
    peak_start_s / peak_duration_s:
        Where the peak sits (seconds).
    zipf_exponent:
        Popularity skew across the catalog (dimensionless; 0 = uniform).
    """

    duration_s: float = 300.0
    base_rate: float = 2.0
    peak_rate: float = 20.0
    peak_start_s: float = 120.0
    peak_duration_s: float = 60.0
    zipf_exponent: float = 1.1

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.base_rate < 0 or self.peak_rate < 0:
            raise ValueError("rates must be non-negative")
        if not 0 <= self.peak_start_s <= self.duration_s:
            raise ValueError("peak_start_s outside the trace")
        if self.peak_duration_s < 0:
            raise ValueError("peak_duration_s must be non-negative")
        if self.zipf_exponent < 0:
            raise ValueError("zipf_exponent must be non-negative")

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate (requests/second) at time *t*."""
        if self.peak_start_s <= t < self.peak_start_s + self.peak_duration_s:
            return self.peak_rate
        return self.base_rate

    @property
    def max_rate(self) -> float:
        return max(self.base_rate, self.peak_rate)


def trace_scenario(
    profile: TraceProfile,
    rng: np.random.Generator,
    catalog: Optional[Sequence[FunctionSpec]] = None,
    label: str = "trace",
) -> BurstScenario:
    """Generate a trace-shaped scenario via a thinned Poisson process.

    Arrivals follow a non-homogeneous Poisson process with the profile's
    rate function (:func:`~repro.workload.generator.poisson_arrivals`);
    each arrival's function is drawn from a Zipf-like mix over the catalog
    ordered by shortness (short = popular).
    """
    catalog = list(catalog) if catalog is not None else sebs_catalog()
    ordered = sorted(catalog, key=lambda spec: spec.p50)
    weights = zipf_weights(len(ordered), profile.zipf_exponent)

    arrivals = poisson_arrivals(
        profile.rate_at, profile.max_rate, profile.duration_s, rng
    )
    requests = draw_requests(arrivals, ordered, weights, rng)
    return BurstScenario(requests=requests, window=profile.duration_s, label=label)


@register_scenario(
    "trace",
    description="Synthetic Azure-shaped trace: baseline rate plus a peak, Zipf mix",
    paper_section="extension",
    params=(
        ScenarioParam(
            "duration_s", None,
            "trace length in seconds; default: the experiment window",
        ),
        ScenarioParam(
            "base_rate", None,
            "steady-state rate in requests/second; default "
            "1.1 * cores * intensity / duration_s",
        ),
        ScenarioParam(
            "peak_ratio", 10.0,
            "peak rate as a multiple of base_rate (dimensionless)",
        ),
        ScenarioParam("peak_start", 0.4, "peak start as a fraction of the duration"),
        ScenarioParam("peak_fraction", 0.2, "peak length as a fraction of the duration"),
        ScenarioParam("zipf_exponent", 1.1, "popularity skew (dimensionless; 0 = uniform)"),
    ),
)
def _trace(
    cores, intensity, rng, *, window, catalog,
    duration_s, base_rate, peak_ratio, peak_start, peak_fraction, zipf_exponent,
):
    """Registry adapter: scales the profile with the grid's load arithmetic
    so ``--scenario trace`` composes with cores/intensity sweeps."""
    n_functions = len(catalog) if catalog is not None else 11
    duration = float(duration_s) if duration_s is not None else float(window)
    if base_rate is None:
        base_rate = requests_for_intensity(cores, intensity, n_functions) / duration
    profile = TraceProfile(
        duration_s=duration,
        base_rate=float(base_rate),
        peak_rate=float(base_rate) * float(peak_ratio),
        peak_start_s=float(peak_start) * duration,
        peak_duration_s=float(peak_fraction) * duration,
        zipf_exponent=float(zipf_exponent),
    )
    return trace_scenario(
        profile, rng, catalog=catalog, label=f"trace c={cores} v={intensity}"
    )
