"""Synthetic trace workloads (extension; DESIGN.md §7).

The paper motivates overload handling with the Azure Functions trace
(Shahrad et al., ATC'20): request rates are uneven with short peaks, and
per-function popularity is heavily skewed.  Real trace files are not
redistributable, so this module generates *trace-shaped* synthetic
workloads that exercise the same code paths:

* a per-minute arrival-rate profile — baseline load plus a configurable
  peak (the paper's 60-second burst is the special case of an infinite
  peak-to-baseline ratio);
* a Zipf-like function-popularity mix (short functions most popular,
  mirroring the trace's mass of short, frequent invocations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.workload.functions import FunctionSpec, sebs_catalog
from repro.workload.generator import BurstScenario, Request

__all__ = ["TraceProfile", "trace_scenario"]


@dataclass(frozen=True)
class TraceProfile:
    """Shape of a synthetic request trace.

    Attributes
    ----------
    duration_s:
        Total trace length.
    base_rate:
        Steady-state arrival rate (requests/second).
    peak_rate:
        Arrival rate inside the peak window.
    peak_start_s / peak_duration_s:
        Where the peak sits.
    zipf_exponent:
        Popularity skew across the catalog (0 = uniform).
    """

    duration_s: float = 300.0
    base_rate: float = 2.0
    peak_rate: float = 20.0
    peak_start_s: float = 120.0
    peak_duration_s: float = 60.0
    zipf_exponent: float = 1.1

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.base_rate < 0 or self.peak_rate < 0:
            raise ValueError("rates must be non-negative")
        if not 0 <= self.peak_start_s <= self.duration_s:
            raise ValueError("peak_start_s outside the trace")
        if self.peak_duration_s < 0:
            raise ValueError("peak_duration_s must be non-negative")
        if self.zipf_exponent < 0:
            raise ValueError("zipf_exponent must be non-negative")

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at time *t*."""
        if self.peak_start_s <= t < self.peak_start_s + self.peak_duration_s:
            return self.peak_rate
        return self.base_rate

    @property
    def max_rate(self) -> float:
        return max(self.base_rate, self.peak_rate)


def trace_scenario(
    profile: TraceProfile,
    rng: np.random.Generator,
    catalog: Optional[Sequence[FunctionSpec]] = None,
    label: str = "trace",
) -> BurstScenario:
    """Generate a trace-shaped scenario via a thinned Poisson process.

    Arrivals follow a non-homogeneous Poisson process with the profile's
    rate function; each arrival's function is drawn from a Zipf-like mix
    over the catalog ordered by shortness (short = popular).
    """
    catalog = list(catalog) if catalog is not None else sebs_catalog()
    ordered = sorted(catalog, key=lambda spec: spec.p50)
    ranks = np.arange(1, len(ordered) + 1, dtype=float)
    if profile.zipf_exponent > 0:
        weights = ranks ** (-profile.zipf_exponent)
    else:
        weights = np.ones_like(ranks)
    weights /= weights.sum()

    # Thinning: propose at max_rate, accept with rate(t)/max_rate.
    requests: List[Request] = []
    rid = 0
    t = 0.0
    max_rate = profile.max_rate
    if max_rate <= 0:
        return BurstScenario(requests=[], window=profile.duration_s, label=label)
    while True:
        t += float(rng.exponential(1.0 / max_rate))
        if t >= profile.duration_s:
            break
        if rng.random() > profile.rate_at(t) / max_rate:
            continue
        spec = ordered[int(rng.choice(len(ordered), p=weights))]
        service = float(spec.service_distribution.sample(rng))
        requests.append(Request(rid, spec, t, service))
        rid += 1
    return BurstScenario(requests=requests, window=profile.duration_s, label=label)
