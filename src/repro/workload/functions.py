"""The SeBS function catalog (paper Table I).

Each :class:`FunctionSpec` carries the published idle-system response-time
percentiles (client side, including ≈10 ms Kafka/network overhead), a fitted
service-time distribution, a CPU-intensity fraction, and a container memory
size.

The CPU fraction splits a call's service time into a CPU phase (consumes a
core) and an I/O phase (pure latency: storage/network waits, or sleeping).
Roughly half the SeBS functions are computationally intensive and half
strain I/O (paper Sect. V); the assignments below follow each function's
published characterisation in the SeBS paper: ``sleep`` is pure waiting,
``uploader`` is network-bound, ``thumbnailer``/``compression`` mix storage
I/O with computation, and the graph/DNA/ML functions are CPU-bound.

Container memory sizes follow typical SeBS deployment configurations and
are calibrated so that a fully-warmed working set on a 10-core node
(10 containers x 11 functions) occupies just under 32 GiB — the memory
threshold the paper identifies (Sect. VI) as sufficient to make evictions
vanish under its container-management policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.workload.distributions import SplitLogNormal, fit_split_lognormal

__all__ = ["FunctionSpec", "sebs_catalog", "catalog_by_name", "NETWORK_OVERHEAD_S"]

#: Client-observed overhead included in Table I measurements (s): the
#: controller/Kafka/invoker hop, "ca. 10 ms" per the paper.
NETWORK_OVERHEAD_S = 0.010


@dataclass(frozen=True)
class FunctionSpec:
    """A FaaS function (OpenWhisk *action*).

    Attributes
    ----------
    name:
        SeBS benchmark name.
    p5, p50, p95:
        Idle-system client-side response-time percentiles (seconds), from
        paper Table I.
    cpu_fraction:
        Fraction of the service time that is CPU work (the rest is I/O
        latency that does not consume a core).
    memory_mb:
        Container memory footprint (MiB); determines the baseline's
        CPU-share weight and the memory-pool accounting.
    """

    name: str
    p5: float
    p50: float
    p95: float
    cpu_fraction: float
    memory_mb: int

    def __post_init__(self) -> None:
        if not 0.0 <= self.cpu_fraction <= 1.0:
            raise ValueError(f"cpu_fraction must be in [0, 1], got {self.cpu_fraction!r}")
        if self.memory_mb <= 0:
            raise ValueError(f"memory_mb must be positive, got {self.memory_mb!r}")
        if not 0 < self.p5 <= self.p50 <= self.p95:
            raise ValueError(f"percentiles must satisfy 0 < p5 <= p50 <= p95: {self!r}")

    @property
    def service_distribution(self) -> SplitLogNormal:
        """Service-time distribution: Table I percentiles minus the network
        overhead (the node only sees the service time)."""
        lo = max(self.p5 - NETWORK_OVERHEAD_S, 1e-4)
        mid = max(self.p50 - NETWORK_OVERHEAD_S, lo)
        hi = max(self.p95 - NETWORK_OVERHEAD_S, mid)
        return fit_split_lognormal(lo, mid, hi)

    @property
    def median_response_time(self) -> float:
        """Idle-system median client response time (stretch denominator —
        the paper uses exactly this, Sect. V-A)."""
        return self.p50

    def split_service(self, service_time: float) -> Tuple[float, float]:
        """Split a sampled service time into ``(cpu_work, io_time)`` seconds."""
        cpu = service_time * self.cpu_fraction
        return cpu, service_time - cpu


def sebs_catalog() -> List[FunctionSpec]:
    """The 11 SeBS functions of paper Table I (times in seconds)."""
    ms = 1e-3
    return [
        FunctionSpec("dna-visualisation", 8415 * ms, 8552 * ms, 8847 * ms, 0.95, 512),
        FunctionSpec("sleep", 1020 * ms, 1022 * ms, 1026 * ms, 0.02, 128),
        FunctionSpec("compression", 793 * ms, 807 * ms, 832 * ms, 0.70, 256),
        FunctionSpec("video-processing", 586 * ms, 593 * ms, 605 * ms, 0.80, 512),
        FunctionSpec("uploader", 184 * ms, 192 * ms, 405 * ms, 0.25, 256),
        FunctionSpec("image-recognition", 117 * ms, 121 * ms, 237 * ms, 0.90, 512),
        FunctionSpec("thumbnailer", 112 * ms, 118 * ms, 124 * ms, 0.60, 256),
        FunctionSpec("dynamic-html", 18 * ms, 19 * ms, 22 * ms, 0.85, 128),
        FunctionSpec("graph-pagerank", 11 * ms, 12 * ms, 15 * ms, 0.90, 128),
        FunctionSpec("graph-bfs", 11 * ms, 12 * ms, 13 * ms, 0.90, 128),
        FunctionSpec("graph-mst", 11 * ms, 12 * ms, 13 * ms, 0.90, 128),
    ]


def catalog_by_name() -> Dict[str, FunctionSpec]:
    """The SeBS catalog keyed by function name."""
    return {spec.name: spec for spec in sebs_catalog()}
