"""Named scenario builders for the paper's experiments."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.workload.functions import FunctionSpec, sebs_catalog
from repro.workload.generator import BURST_WINDOW_S, BurstScenario

__all__ = ["uniform_burst", "skewed_burst", "multi_node_burst", "azure_like_burst"]


def uniform_burst(
    cores: int,
    intensity: int,
    rng: np.random.Generator,
    catalog: Optional[Sequence[FunctionSpec]] = None,
    window: float = BURST_WINDOW_S,
) -> BurstScenario:
    """The main experimental workload (paper Sect. V-B).

    Each of the 11 catalog functions is called exactly ``0.1 * cores *
    intensity`` times, uniformly over the 60-second window.
    """
    catalog = list(catalog) if catalog is not None else sebs_catalog()
    per_function = 0.1 * cores * intensity
    count = round(per_function)
    if abs(per_function - count) > 1e-9:
        count = int(np.ceil(per_function))
    counts = [(spec, int(count)) for spec in catalog]
    return BurstScenario.from_counts(
        counts, rng, window=window, label=f"uniform c={cores} v={intensity}"
    )


def skewed_burst(
    cores: int,
    intensity: int,
    rng: np.random.Generator,
    rare_function: str = "dna-visualisation",
    rare_count: int = 10,
    catalog: Optional[Sequence[FunctionSpec]] = None,
    window: float = BURST_WINDOW_S,
) -> BurstScenario:
    """The Fig.-5 fairness workload (paper Sect. VII-D).

    Exactly ``rare_count`` calls of the long *rare_function*; all other
    calls drawn uniformly at random among the remaining functions (no
    partial-uniformity assumption), for the usual total of
    ``1.1 * cores * intensity`` requests.
    """
    catalog = list(catalog) if catalog is not None else sebs_catalog()
    total = round(0.1 * len(catalog) * cores * intensity)
    if rare_count > total:
        raise ValueError(f"rare_count={rare_count} exceeds total requests {total}")
    others = [spec for spec in catalog if spec.name != rare_function]
    if len(others) == len(catalog):
        raise ValueError(f"function {rare_function!r} not in catalog")
    rare_spec = next(spec for spec in catalog if spec.name == rare_function)

    n_other = total - rare_count
    draws = rng.integers(0, len(others), size=n_other)
    counts = [(rare_spec, rare_count)]
    for idx, spec in enumerate(others):
        counts.append((spec, int(np.sum(draws == idx))))
    return BurstScenario.from_counts(
        counts, rng, window=window,
        label=f"skewed c={cores} v={intensity} rare={rare_function}x{rare_count}",
    )


def multi_node_burst(
    total_requests: int,
    rng: np.random.Generator,
    catalog: Optional[Sequence[FunctionSpec]] = None,
    window: float = BURST_WINDOW_S,
) -> BurstScenario:
    """The multi-node workload (paper Sect. VIII): a fixed request count
    (1320 for 10-core VMs, 2376 for 18-core VMs) split equally across the
    11 functions, uniform over the window."""
    catalog = list(catalog) if catalog is not None else sebs_catalog()
    if total_requests % len(catalog):
        raise ValueError(
            f"total_requests={total_requests} not divisible by {len(catalog)} functions"
        )
    per_function = total_requests // len(catalog)
    counts = [(spec, per_function) for spec in catalog]
    return BurstScenario.from_counts(
        counts, rng, window=window, label=f"multi-node n={total_requests}"
    )


def azure_like_burst(
    cores: int,
    intensity: int,
    rng: np.random.Generator,
    catalog: Optional[Sequence[FunctionSpec]] = None,
    window: float = BURST_WINDOW_S,
    zipf_exponent: float = 1.1,
) -> BurstScenario:
    """Extension (not a paper experiment): a Zipf-skewed call mix.

    The Azure Functions trace the paper cites (Shahrad et al., ATC'20) shows
    a heavily skewed call-frequency distribution: a few functions dominate.
    We draw per-call functions from a Zipf law over the catalog ordered by
    shortness (short functions most popular, mirroring the trace's
    short-and-frequent mass), preserving the paper's total-count arithmetic.
    """
    catalog = list(catalog) if catalog is not None else sebs_catalog()
    total = round(0.1 * len(catalog) * cores * intensity)
    ordered = sorted(catalog, key=lambda spec: spec.p50)
    ranks = np.arange(1, len(ordered) + 1, dtype=float)
    weights = ranks ** (-zipf_exponent)
    weights /= weights.sum()
    draws = rng.choice(len(ordered), size=total, p=weights)
    counts = [(spec, int(np.sum(draws == idx))) for idx, spec in enumerate(ordered)]
    return BurstScenario.from_counts(
        counts, rng, window=window, label=f"azure-like c={cores} v={intensity}"
    )
