"""Named scenario builders for the paper's experiments and extensions.

Every builder here is registered in the scenario registry
(:mod:`repro.workload.registry`), which makes it addressable by name from
:class:`~repro.experiments.config.ExperimentConfig`, the grid, the CLI
(``faas-sched run/grid/simulate --scenario <name>``), and the result
cache.  Builders take the paper's load arithmetic (``cores``,
``intensity``), a seeded ``numpy.random.Generator``, and keyword
parameters; all randomness must come from the supplied generator so that
parallel and cached runs stay bit-identical to serial ones.

Paper scenarios: ``uniform`` (Sect. V-B), ``skewed`` (Sect. VII-D),
``multi-node`` (Sect. VIII).  Extensions: ``azure`` (Zipf call mix),
``poisson`` (memoryless arrivals), ``diurnal`` (sinusoidal rate),
``zipf-multitenant`` (tenant-namespaced contention); the synthetic-trace
and CSV-replay scenarios live in :mod:`repro.workload.trace` and
:mod:`repro.workload.replay`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.workload.functions import FunctionSpec, sebs_catalog
from repro.workload.generator import (
    BURST_WINDOW_S,
    BurstScenario,
    Request,
    draw_requests,
    poisson_arrivals,
    requests_for_intensity,
    zipf_weights,
)
from repro.workload.registry import ScenarioParam, register_scenario

__all__ = [
    "uniform_burst",
    "skewed_burst",
    "multi_node_burst",
    "azure_like_burst",
    "poisson_burst",
    "diurnal_burst",
    "zipf_multitenant_burst",
]


def uniform_burst(
    cores: int,
    intensity: int,
    rng: np.random.Generator,
    catalog: Optional[Sequence[FunctionSpec]] = None,
    window: float = BURST_WINDOW_S,
) -> BurstScenario:
    """The main experimental workload (paper Sect. V-B).

    Each of the 11 catalog functions is called exactly ``0.1 * cores *
    intensity`` times, uniformly over the *window* (seconds).

    Raises :class:`ValueError` when ``0.1 * cores * intensity`` is not an
    integer — the paper's arithmetic only defines the scenario for whole
    per-function counts.
    """
    catalog = list(catalog) if catalog is not None else sebs_catalog()
    per_function = 0.1 * cores * intensity
    count = round(per_function)
    if abs(per_function - count) > 1e-9:
        raise ValueError(
            f"uniform burst needs a whole per-function call count, but "
            f"0.1 * cores * intensity = 0.1 * {cores} * {intensity} = "
            f"{per_function:g}; choose cores and intensity whose product is "
            f"a multiple of 10 (e.g. intensity={_nearest_valid_intensity(cores, intensity)})"
        )
    counts = [(spec, int(count)) for spec in catalog]
    return BurstScenario.from_counts(
        counts, rng, window=window, label=f"uniform c={cores} v={intensity}"
    )


def _nearest_valid_intensity(cores: int, intensity: int) -> int:
    """The closest intensity making ``0.1 * cores * intensity`` integral
    (used only to make the uniform-burst error message actionable)."""
    for delta in range(1, 11):
        for candidate in (intensity + delta, intensity - delta):
            if candidate >= 1 and abs(0.1 * cores * candidate - round(0.1 * cores * candidate)) < 1e-9:
                return candidate
    return max(1, round(intensity / 10) * 10)  # pragma: no cover - delta<=10 always hits


def skewed_burst(
    cores: int,
    intensity: int,
    rng: np.random.Generator,
    rare_function: str = "dna-visualisation",
    rare_count: int = 10,
    catalog: Optional[Sequence[FunctionSpec]] = None,
    window: float = BURST_WINDOW_S,
) -> BurstScenario:
    """The Fig.-5 fairness workload (paper Sect. VII-D).

    Exactly ``rare_count`` calls of the long *rare_function*; all other
    calls drawn uniformly at random among the remaining functions (no
    partial-uniformity assumption), for the usual total of
    ``1.1 * cores * intensity`` requests over the *window* (seconds).
    """
    catalog = list(catalog) if catalog is not None else sebs_catalog()
    total = round(0.1 * len(catalog) * cores * intensity)
    if rare_count > total:
        raise ValueError(f"rare_count={rare_count} exceeds total requests {total}")
    others = [spec for spec in catalog if spec.name != rare_function]
    if len(others) == len(catalog):
        raise ValueError(f"function {rare_function!r} not in catalog")
    rare_spec = next(spec for spec in catalog if spec.name == rare_function)

    n_other = total - rare_count
    draws = rng.integers(0, len(others), size=n_other)
    counts = [(rare_spec, rare_count)]
    for idx, spec in enumerate(others):
        counts.append((spec, int(np.sum(draws == idx))))
    return BurstScenario.from_counts(
        counts, rng, window=window,
        label=f"skewed c={cores} v={intensity} rare={rare_function}x{rare_count}",
    )


def multi_node_burst(
    total_requests: int,
    rng: np.random.Generator,
    catalog: Optional[Sequence[FunctionSpec]] = None,
    window: float = BURST_WINDOW_S,
) -> BurstScenario:
    """The multi-node workload (paper Sect. VIII): a fixed request count
    (1320 for 10-core VMs, 2376 for 18-core VMs) split equally across the
    11 functions, uniform over the *window* (seconds)."""
    catalog = list(catalog) if catalog is not None else sebs_catalog()
    if total_requests % len(catalog):
        raise ValueError(
            f"total_requests={total_requests} not divisible by {len(catalog)} functions"
        )
    per_function = total_requests // len(catalog)
    counts = [(spec, per_function) for spec in catalog]
    return BurstScenario.from_counts(
        counts, rng, window=window, label=f"multi-node n={total_requests}"
    )


def azure_like_burst(
    cores: int,
    intensity: int,
    rng: np.random.Generator,
    catalog: Optional[Sequence[FunctionSpec]] = None,
    window: float = BURST_WINDOW_S,
    zipf_exponent: float = 1.1,
) -> BurstScenario:
    """Extension (not a paper experiment): a Zipf-skewed call mix.

    The Azure Functions trace the paper cites (Shahrad et al., ATC'20) shows
    a heavily skewed call-frequency distribution: a few functions dominate.
    We draw per-call functions from a Zipf law (dimensionless exponent
    *zipf_exponent*) over the catalog ordered by shortness (short functions
    most popular, mirroring the trace's short-and-frequent mass), preserving
    the paper's total-count arithmetic over the *window* (seconds).
    """
    catalog = list(catalog) if catalog is not None else sebs_catalog()
    total = round(0.1 * len(catalog) * cores * intensity)
    ordered = sorted(catalog, key=lambda spec: spec.p50)
    weights = zipf_weights(len(ordered), zipf_exponent)
    draws = rng.choice(len(ordered), size=total, p=weights)
    counts = [(spec, int(np.sum(draws == idx))) for idx, spec in enumerate(ordered)]
    return BurstScenario.from_counts(
        counts, rng, window=window, label=f"azure-like c={cores} v={intensity}"
    )


def poisson_burst(
    cores: int,
    intensity: int,
    rng: np.random.Generator,
    rate: Optional[float] = None,
    zipf_exponent: float = 0.0,
    catalog: Optional[Sequence[FunctionSpec]] = None,
    window: float = BURST_WINDOW_S,
) -> BurstScenario:
    """Extension: memoryless (homogeneous Poisson) arrivals.

    The paper's uniform burst fixes the request *count*; a Poisson process
    instead fixes the *rate* (requests/second), so the realised count — and
    the burstiness of inter-arrival gaps — varies with the seed.  ``rate``
    defaults to the paper's total divided by the window
    (``1.1 * cores * intensity / window``), making the expected load equal
    to the uniform scenario's.  ``zipf_exponent`` (dimensionless, 0 =
    uniform) skews the per-call function mix toward short functions.
    """
    catalog = list(catalog) if catalog is not None else sebs_catalog()
    if rate is None:
        rate = requests_for_intensity(cores, intensity, len(catalog)) / window
    if rate < 0:
        raise ValueError(f"rate must be non-negative, got {rate!r}")
    arrivals = poisson_arrivals(lambda t: rate, rate, window, rng)
    ordered = sorted(catalog, key=lambda spec: spec.p50)
    weights = zipf_weights(len(ordered), zipf_exponent)
    requests = draw_requests(arrivals, ordered, weights, rng)
    return BurstScenario(
        requests=requests, window=window, label=f"poisson c={cores} v={intensity}"
    )


def diurnal_burst(
    cores: int,
    intensity: int,
    rng: np.random.Generator,
    amplitude: float = 0.8,
    period_s: Optional[float] = None,
    phase: float = 0.0,
    zipf_exponent: float = 0.0,
    catalog: Optional[Sequence[FunctionSpec]] = None,
    window: float = BURST_WINDOW_S,
) -> BurstScenario:
    """Extension: sinusoidal (diurnal) load, a day compressed into the window.

    Arrival rate at time ``t`` (seconds) is::

        rate(t) = mean_rate * (1 + amplitude * sin(2π * (t / period_s + phase)))

    where ``mean_rate = 1.1 * cores * intensity / window`` (requests/second,
    matching the uniform scenario's average), ``amplitude`` ∈ [0, 1] is the
    peak-to-mean excursion (dimensionless), ``period_s`` is the cycle length
    in seconds (default: one full cycle per window), and ``phase`` is the
    starting point in cycles (dimensionless; 0.25 starts at the peak).
    Arrivals follow a non-homogeneous Poisson process with this rate.
    """
    if not 0.0 <= amplitude <= 1.0:
        raise ValueError(f"amplitude must be in [0, 1], got {amplitude!r}")
    catalog = list(catalog) if catalog is not None else sebs_catalog()
    period = float(period_s) if period_s is not None else window
    if period <= 0:
        raise ValueError(f"period_s must be positive, got {period_s!r}")
    mean_rate = requests_for_intensity(cores, intensity, len(catalog)) / window

    def rate(t: float) -> float:
        return mean_rate * (1.0 + amplitude * np.sin(2.0 * np.pi * (t / period + phase)))

    arrivals = poisson_arrivals(rate, mean_rate * (1.0 + amplitude), window, rng)
    ordered = sorted(catalog, key=lambda spec: spec.p50)
    weights = zipf_weights(len(ordered), zipf_exponent)
    requests = draw_requests(arrivals, ordered, weights, rng)
    return BurstScenario(
        requests=requests, window=window, label=f"diurnal c={cores} v={intensity}"
    )


def zipf_multitenant_burst(
    cores: int,
    intensity: int,
    rng: np.random.Generator,
    tenants: int = 4,
    tenant_exponent: float = 1.2,
    zipf_exponent: float = 1.1,
    catalog: Optional[Sequence[FunctionSpec]] = None,
    window: float = BURST_WINDOW_S,
) -> BurstScenario:
    """Extension: multi-tenant Zipf contention.

    ``tenants`` tenants deploy private copies of the catalog (function
    ``f`` of tenant ``k`` appears as ``tenant<k>/f``, so tenants never
    share containers and contend for cores, memory, and the docker
    daemon).  Tenant popularity follows a Zipf law with exponent
    ``tenant_exponent``, the per-call function mix within a tenant a Zipf
    law with exponent ``zipf_exponent`` over the catalog ordered by
    shortness (both dimensionless; 0 = uniform).  The total request count
    is the paper's ``1.1 * cores * intensity``, uniform over the *window*
    (seconds) — same aggregate load as ``uniform``, but split across a
    ``tenants``-times larger function universe, which stresses container
    management with cold starts and evictions.
    """
    if tenants < 1:
        raise ValueError(f"tenants must be >= 1, got {tenants!r}")
    catalog = list(catalog) if catalog is not None else sebs_catalog()
    total = requests_for_intensity(cores, intensity, len(catalog))
    ordered = sorted(catalog, key=lambda spec: spec.p50)
    tenant_p = zipf_weights(tenants, tenant_exponent)
    function_p = zipf_weights(len(ordered), zipf_exponent)

    tenant_draws = rng.choice(tenants, size=total, p=tenant_p)
    function_draws = rng.choice(len(ordered), size=total, p=function_p)
    arrivals = rng.uniform(0.0, window, size=total)

    # One shared FunctionSpec per (tenant, function): the container pool
    # and estimator key on the name, so reusing the instance keeps the
    # function universe small and identity-stable.
    namespaced: Dict[tuple, FunctionSpec] = {}
    requests: List[Request] = []
    for rid in range(total):
        key = (int(tenant_draws[rid]), int(function_draws[rid]))
        spec = namespaced.get(key)
        if spec is None:
            base = ordered[key[1]]
            spec = replace(base, name=f"tenant{key[0]}/{base.name}")
            namespaced[key] = spec
        service = float(spec.service_distribution.sample(rng))
        requests.append(Request(rid, spec, float(arrivals[rid]), service))
    return BurstScenario(
        requests=requests,
        window=window,
        label=f"zipf-multitenant c={cores} v={intensity} tenants={tenants}",
    )


# ----------------------------------------------------------------------
# Registry entries (see repro.workload.registry).  The adapters pin the
# builder contract (cores, intensity, rng, *, window, catalog, **params);
# the public builders above remain directly callable with their historical
# signatures.
# ----------------------------------------------------------------------
@register_scenario(
    "uniform",
    description="Equal per-function counts, uniform arrivals (the paper's main grid)",
    paper_section="V-B",
)
def _uniform(cores, intensity, rng, *, window, catalog):
    return uniform_burst(cores, intensity, rng, catalog=catalog, window=window)


@register_scenario(
    "skewed",
    description="Fairness mix: a fixed dose of one long, rare function",
    paper_section="VII-D",
    params=(
        ScenarioParam("rare_function", "dna-visualisation", "catalog name of the rare function"),
        ScenarioParam("rare_count", 10, "exact number of rare-function calls"),
    ),
)
def _skewed(cores, intensity, rng, *, window, catalog, rare_function, rare_count):
    return skewed_burst(
        cores, intensity, rng,
        rare_function=rare_function, rare_count=int(rare_count),
        catalog=catalog, window=window,
    )


@register_scenario(
    "multi-node",
    description="Fixed total request count split equally across the catalog",
    paper_section="VIII",
    params=(
        ScenarioParam(
            "total_requests", None,
            "total request count (must divide by the catalog size); "
            "default: the paper's 1.1 * cores * intensity",
        ),
    ),
)
def _multi_node(cores, intensity, rng, *, window, catalog, total_requests):
    if total_requests is None:
        n_functions = len(catalog) if catalog is not None else 11
        total_requests = requests_for_intensity(cores, intensity, n_functions)
    return multi_node_burst(int(total_requests), rng, catalog=catalog, window=window)


@register_scenario(
    "azure",
    description="Zipf-skewed call mix shaped like the Azure Functions trace",
    paper_section="extension",
    params=(
        ScenarioParam("zipf_exponent", 1.1, "popularity skew (dimensionless; 0 = uniform)"),
    ),
)
def _azure(cores, intensity, rng, *, window, catalog, zipf_exponent):
    return azure_like_burst(
        cores, intensity, rng,
        catalog=catalog, window=window, zipf_exponent=float(zipf_exponent),
    )


@register_scenario(
    "poisson",
    description="Homogeneous Poisson arrivals at the paper's average rate",
    paper_section="extension",
    params=(
        ScenarioParam(
            "rate", None,
            "arrival rate in requests/second; default 1.1 * cores * intensity / window",
        ),
        ScenarioParam("zipf_exponent", 0.0, "function-mix skew (dimensionless; 0 = uniform)"),
    ),
)
def _poisson(cores, intensity, rng, *, window, catalog, rate, zipf_exponent):
    return poisson_burst(
        cores, intensity, rng,
        rate=None if rate is None else float(rate),
        zipf_exponent=float(zipf_exponent), catalog=catalog, window=window,
    )


@register_scenario(
    "diurnal",
    description="Sinusoidal (diurnal) arrival rate, one day compressed into the window",
    paper_section="extension",
    params=(
        ScenarioParam("amplitude", 0.8, "peak-to-mean rate excursion, in [0, 1]"),
        ScenarioParam("period_s", None, "cycle length in seconds; default: the window"),
        ScenarioParam("phase", 0.0, "starting point in cycles (0.25 starts at the peak)"),
        ScenarioParam("zipf_exponent", 0.0, "function-mix skew (dimensionless; 0 = uniform)"),
    ),
)
def _diurnal(cores, intensity, rng, *, window, catalog, amplitude, period_s, phase, zipf_exponent):
    return diurnal_burst(
        cores, intensity, rng,
        amplitude=float(amplitude),
        period_s=None if period_s is None else float(period_s),
        phase=float(phase), zipf_exponent=float(zipf_exponent),
        catalog=catalog, window=window,
    )


@register_scenario(
    "zipf-multitenant",
    description="Tenant-namespaced catalog copies contending under Zipf popularity",
    paper_section="extension",
    params=(
        ScenarioParam("tenants", 4, "number of tenants (private catalog copies)"),
        ScenarioParam("tenant_exponent", 1.2, "tenant-popularity skew (dimensionless)"),
        ScenarioParam("zipf_exponent", 1.1, "within-tenant function skew (dimensionless)"),
    ),
)
def _zipf_multitenant(cores, intensity, rng, *, window, catalog, tenants, tenant_exponent, zipf_exponent):
    return zipf_multitenant_burst(
        cores, intensity, rng,
        tenants=int(tenants), tenant_exponent=float(tenant_exponent),
        zipf_exponent=float(zipf_exponent), catalog=catalog, window=window,
    )
