"""Service-time distributions fitted to published percentiles.

Table I of the paper reports, per SeBS function, the 5th/50th/95th
percentiles of the idle-system response time.  Several functions are
strongly right-skewed (``uploader``: 184/192/405 ms), so a symmetric
log-normal cannot match both tails.  We use a *split log-normal*: a
standard normal draw ``z`` is scaled by ``sigma_low`` when negative and
``sigma_high`` when positive, then exponentiated around the log-median.
This matches all three published percentiles exactly (the 5th/95th
percentiles of a standard normal are at z = ∓1.6448…).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SplitLogNormal", "fit_split_lognormal", "Z_95"]

#: z-score of the 95th percentile of the standard normal distribution.
Z_95 = 1.6448536269514722


@dataclass(frozen=True)
class SplitLogNormal:
    """A two-piece log-normal distribution.

    ``X = median * exp(sigma_low * z)`` for ``z < 0`` and
    ``X = median * exp(sigma_high * z)`` for ``z >= 0``,
    with ``z`` standard normal.

    Attributes
    ----------
    median:
        The distribution's median (seconds).
    sigma_low, sigma_high:
        Log-scale spreads of the lower/upper halves.
    """

    median: float
    sigma_low: float
    sigma_high: float

    def __post_init__(self) -> None:
        if self.median <= 0:
            raise ValueError(f"median must be positive, got {self.median!r}")
        if self.sigma_low < 0 or self.sigma_high < 0:
            raise ValueError("sigmas must be non-negative")

    def sample(self, rng: np.random.Generator, size: int | None = None) -> np.ndarray | float:
        """Draw samples.  Returns a scalar when *size* is None."""
        z = rng.standard_normal(size)
        sigma = np.where(z < 0, self.sigma_low, self.sigma_high)
        return self.median * np.exp(sigma * z)

    def percentile(self, q: float) -> float:
        """Exact value of the *q*-th percentile (0 < q < 100)."""
        if not 0.0 < q < 100.0:
            raise ValueError(f"q must lie in (0, 100), got {q!r}")
        from math import sqrt

        from repro.workload._normal import norm_ppf

        z = norm_ppf(q / 100.0)
        sigma = self.sigma_low if z < 0 else self.sigma_high
        return self.median * float(np.exp(sigma * z))

    @property
    def mean(self) -> float:
        """Analytic mean: each half contributes half a log-normal mean."""
        # E[X] = m/2 * (exp(s_l^2/2) erfc(s_l/sqrt 2) + exp(s_h^2/2) erfc(-s_h/sqrt 2)) / 1
        # Derivation: for z<0, E = m * E[exp(s_l z) | z<0] * P(z<0), etc.
        from math import erfc, exp, sqrt

        lower = exp(self.sigma_low**2 / 2.0) * erfc(self.sigma_low / sqrt(2.0))
        upper = exp(self.sigma_high**2 / 2.0) * erfc(-self.sigma_high / sqrt(2.0))
        return self.median * (lower + upper) / 2.0


def fit_split_lognormal(p5: float, p50: float, p95: float) -> SplitLogNormal:
    """Fit a :class:`SplitLogNormal` matching three percentiles exactly.

    Parameters are the 5th, 50th and 95th percentiles (same time unit).
    """
    if not 0 < p5 <= p50 <= p95:
        raise ValueError(f"need 0 < p5 <= p50 <= p95, got {(p5, p50, p95)!r}")
    sigma_low = float(np.log(p50 / p5) / Z_95)
    sigma_high = float(np.log(p95 / p50) / Z_95)
    return SplitLogNormal(median=float(p50), sigma_low=sigma_low, sigma_high=sigma_high)
