"""Standard-normal quantile function (Acklam's rational approximation).

Kept dependency-free so :mod:`repro.workload` does not require scipy at
runtime (scipy is only a test dependency).  Absolute error < 1.15e-9 over
the full domain, far below any tolerance used in this package.
"""

from __future__ import annotations

from math import sqrt, log

__all__ = ["norm_ppf"]

_A = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
      1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
_B = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
      6.680131188771972e+01, -1.328068155288572e+01)
_C = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
      -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
_D = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
      3.754408661907416e+00)

_P_LOW = 0.02425
_P_HIGH = 1.0 - _P_LOW


def norm_ppf(p: float) -> float:
    """Inverse CDF of the standard normal distribution."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must lie in (0, 1), got {p!r}")
    if p < _P_LOW:
        q = sqrt(-2.0 * log(p))
        return (((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q + _C[4]) * q + _C[5]) / \
            ((((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q + 1.0)
    if p <= _P_HIGH:
        q = p - 0.5
        r = q * q
        return (((((_A[0] * r + _A[1]) * r + _A[2]) * r + _A[3]) * r + _A[4]) * r + _A[5]) * q / \
            (((((_B[0] * r + _B[1]) * r + _B[2]) * r + _B[3]) * r + _B[4]) * r + 1.0)
    q = sqrt(-2.0 * log(1.0 - p))
    return -(((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q + _C[4]) * q + _C[5]) / \
        ((((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q + 1.0)
