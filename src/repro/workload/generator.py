"""Burst scenario generation (paper Sect. V-A/V-B).

A *scenario of intensity v* on a node with ``c`` cores for the 11-function
catalog issues exactly ``1.1 * c * v`` requests, the same number per
function, uniformly distributed over a 60-second window.  After the window
no further requests arrive and the system drains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence

import numpy as np

from repro.workload.functions import FunctionSpec

__all__ = [
    "Request",
    "BurstScenario",
    "RequestStream",
    "requests_for_intensity",
    "poisson_arrivals",
    "draw_requests",
    "zipf_weights",
    "BURST_WINDOW_S",
]

#: Length of the request burst (seconds), per the paper.
BURST_WINDOW_S = 60.0


def requests_for_intensity(cores: int, intensity: int, n_functions: int = 11) -> int:
    """Total request count for a scenario: ``0.1 * n_functions * c * v``.

    For the paper's 11-function catalog this is the published
    ``1.1 * c * v`` (e.g. 20 cores at intensity 30 -> 660 requests).
    """
    if cores < 1:
        raise ValueError(f"cores must be >= 1, got {cores!r}")
    if intensity < 1:
        raise ValueError(f"intensity must be >= 1, got {intensity!r}")
    total = 0.1 * n_functions * cores * intensity
    rounded = round(total)
    if abs(total - rounded) > 1e-9:
        # The paper only considers multiples of 10 so this is always exact
        # there; accept any parameters but keep the count integral.
        rounded = int(np.ceil(total))
    return int(rounded)


def zipf_weights(n: int, exponent: float) -> np.ndarray:
    """Normalised Zipf probabilities ``rank^-exponent`` over ranks 1..n.

    ``exponent=0`` degenerates to the uniform distribution.  Shared by the
    Azure-like, synthetic-trace, and multi-tenant scenario builders.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n!r}")
    if exponent < 0:
        raise ValueError(f"exponent must be non-negative, got {exponent!r}")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** (-exponent) if exponent > 0 else np.ones_like(ranks)
    return weights / weights.sum()


def poisson_arrivals(
    rate_fn: Callable[[float], float],
    max_rate: float,
    duration_s: float,
    rng: np.random.Generator,
) -> List[float]:
    """Arrival times (seconds) of a non-homogeneous Poisson process.

    Uses Lewis–Shedler thinning: propose arrivals at the constant
    ``max_rate`` (requests/second), accept each proposal at time ``t`` with
    probability ``rate_fn(t) / max_rate``.  ``rate_fn`` must never exceed
    ``max_rate`` on ``[0, duration_s)``; a homogeneous process is the
    special case ``rate_fn = lambda t: max_rate`` (every proposal accepted).

    Returns strictly increasing times in ``[0, duration_s)``; empty when
    ``max_rate <= 0``.
    """
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s!r}")
    if max_rate <= 0:
        return []
    arrivals: List[float] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / max_rate))
        if t >= duration_s:
            return arrivals
        if rng.random() <= rate_fn(t) / max_rate:
            arrivals.append(t)


def draw_requests(
    arrivals: Sequence[float],
    ordered: Sequence["FunctionSpec"],
    weights: np.ndarray,
    rng: np.random.Generator,
) -> List["Request"]:
    """Turn arrival times into :class:`Request`\\ s: one vectorized
    function draw over *weights* for all arrivals, then a service-time
    sample per request.  Shared tail of the arrival-process scenario
    builders (poisson/diurnal/trace)."""
    draws = rng.choice(len(ordered), size=len(arrivals), p=weights)
    requests: List[Request] = []
    for rid, t in enumerate(arrivals):
        spec = ordered[int(draws[rid])]
        service = float(spec.service_distribution.sample(rng))
        requests.append(Request(rid, spec, float(t), service))
    return requests


@dataclass(frozen=True)
class Request:
    """One function call (the *i*-th action call of the paper).

    Attributes
    ----------
    rid:
        Unique id within a scenario.
    function:
        The requested function, ``f(i)``.
    release_time:
        ``r(i)`` — moment the end-user generates the request (seconds).
    service_time:
        The call's intrinsic demand ``p(i)`` (seconds on a dedicated core,
        including its I/O phase); unknown to the scheduler until completion.
    """

    rid: int
    function: FunctionSpec
    release_time: float
    service_time: float

    @property
    def cpu_work(self) -> float:
        """CPU demand in core-seconds."""
        return self.service_time * self.function.cpu_fraction

    @property
    def io_time(self) -> float:
        """I/O latency (seconds) that does not consume a core."""
        return self.service_time - self.cpu_work


@dataclass
class BurstScenario:
    """A fully-materialised workload: requests sorted by release time.

    Build via the :mod:`repro.workload.scenarios` helpers or directly with
    :meth:`from_counts`.
    """

    requests: List[Request]
    window: float = BURST_WINDOW_S
    label: str = ""

    def __post_init__(self) -> None:
        self.requests = sorted(self.requests, key=lambda r: (r.release_time, r.rid))

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    def arrivals(self) -> Iterator[Request]:
        """The lazy-arrival contract: requests in non-decreasing
        release-time order.  For a materialised scenario this is just
        iteration (``__post_init__`` already sorted); streaming workloads
        implement the same method without holding the full list
        (:class:`RequestStream`)."""
        return iter(self.requests)

    @property
    def functions(self) -> List[FunctionSpec]:
        """Distinct functions appearing in the scenario (stable order)."""
        seen = {}
        for req in self.requests:
            seen.setdefault(req.function.name, req.function)
        return list(seen.values())

    def count_for(self, function_name: str) -> int:
        return sum(1 for r in self.requests if r.function.name == function_name)

    @classmethod
    def from_counts(
        cls,
        counts: Sequence[tuple[FunctionSpec, int]],
        rng: np.random.Generator,
        window: float = BURST_WINDOW_S,
        label: str = "",
    ) -> "BurstScenario":
        """Uniform arrivals in ``[0, window)`` with the given per-function
        request counts; service times drawn from each function's fitted
        distribution."""
        requests: List[Request] = []
        rid = 0
        for spec, n in counts:
            if n < 0:
                raise ValueError(f"negative count for {spec.name!r}")
            if n == 0:
                continue
            arrivals = rng.uniform(0.0, window, size=n)
            services = spec.service_distribution.sample(rng, size=n)
            for arrival, service in zip(arrivals, services):
                requests.append(Request(rid, spec, float(arrival), float(service)))
                rid += 1
        return cls(requests=requests, window=window, label=label)

    def total_service_time(self) -> float:
        return sum(r.service_time for r in self.requests)

    def total_cpu_work(self) -> float:
        return sum(r.cpu_work for r in self.requests)


class RequestStream:
    """A lazy workload: requests yielded in release-time order, never all
    materialised at once.

    The streaming counterpart of :class:`BurstScenario` for the platform's
    lazy-injection path (see ``FaaSPlatform.run_scenario``).  A stream
    deliberately has **no** ``__len__`` — the total request count is
    unknown until the stream is drained — which is also how the platform
    tells the two workload shapes apart.

    Contract
    --------
    * :meth:`arrivals` yields :class:`Request` objects in **non-decreasing
      release-time order** (ties broken by ``rid``, matching
      :class:`BurstScenario`'s sort).  The platform enforces the ordering
      at injection time and fails loudly on a violation.
    * A stream is **single-use**: the factory typically consumes RNG state
      and/or a file handle, so ``arrivals`` may only be called once.
    * Peak memory while iterating should be bounded by the workload's
      *concurrency*, not its length, for truly streaming sources (CSV
      replay); deferred-build wrappers around materialising builders
      (see ``ScenarioSpec.build_stream``) keep the O(n) list internal to
      the generator instead.
    """

    def __init__(
        self,
        factory: Callable[[], Iterator[Request]],
        window: Optional[float] = None,
        label: str = "",
    ) -> None:
        self.factory = factory
        #: Emission window in seconds when known up front (``None`` for
        #: sources whose extent is only known once drained, e.g. replay).
        self.window = window
        self.label = label
        self._consumed = False

    def arrivals(self) -> Iterator[Request]:
        """The request generator (single-use; see the class contract)."""
        if self._consumed:
            raise RuntimeError(
                f"RequestStream {self.label!r} was already consumed; streams "
                f"are single-use (they drain RNG state and file handles) — "
                f"build a fresh one to replay the workload"
            )
        self._consumed = True
        return self.factory()

    def __iter__(self) -> Iterator[Request]:
        return self.arrivals()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<RequestStream {self.label!r} window={self.window}>"
