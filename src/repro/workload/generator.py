"""Burst scenario generation (paper Sect. V-A/V-B).

A *scenario of intensity v* on a node with ``c`` cores for the 11-function
catalog issues exactly ``1.1 * c * v`` requests, the same number per
function, uniformly distributed over a 60-second window.  After the window
no further requests arrive and the system drains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.workload.functions import FunctionSpec, sebs_catalog

__all__ = ["Request", "BurstScenario", "requests_for_intensity", "BURST_WINDOW_S"]

#: Length of the request burst (seconds), per the paper.
BURST_WINDOW_S = 60.0


def requests_for_intensity(cores: int, intensity: int, n_functions: int = 11) -> int:
    """Total request count for a scenario: ``0.1 * n_functions * c * v``.

    For the paper's 11-function catalog this is the published
    ``1.1 * c * v`` (e.g. 20 cores at intensity 30 -> 660 requests).
    """
    if cores < 1:
        raise ValueError(f"cores must be >= 1, got {cores!r}")
    if intensity < 1:
        raise ValueError(f"intensity must be >= 1, got {intensity!r}")
    total = 0.1 * n_functions * cores * intensity
    rounded = round(total)
    if abs(total - rounded) > 1e-9:
        # The paper only considers multiples of 10 so this is always exact
        # there; accept any parameters but keep the count integral.
        rounded = int(np.ceil(total))
    return int(rounded)


@dataclass(frozen=True)
class Request:
    """One function call (the *i*-th action call of the paper).

    Attributes
    ----------
    rid:
        Unique id within a scenario.
    function:
        The requested function, ``f(i)``.
    release_time:
        ``r(i)`` — moment the end-user generates the request (seconds).
    service_time:
        The call's intrinsic demand ``p(i)`` (seconds on a dedicated core,
        including its I/O phase); unknown to the scheduler until completion.
    """

    rid: int
    function: FunctionSpec
    release_time: float
    service_time: float

    @property
    def cpu_work(self) -> float:
        """CPU demand in core-seconds."""
        return self.service_time * self.function.cpu_fraction

    @property
    def io_time(self) -> float:
        """I/O latency (seconds) that does not consume a core."""
        return self.service_time - self.cpu_work


@dataclass
class BurstScenario:
    """A fully-materialised workload: requests sorted by release time.

    Build via the :mod:`repro.workload.scenarios` helpers or directly with
    :meth:`from_counts`.
    """

    requests: List[Request]
    window: float = BURST_WINDOW_S
    label: str = ""

    def __post_init__(self) -> None:
        self.requests = sorted(self.requests, key=lambda r: (r.release_time, r.rid))

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    @property
    def functions(self) -> List[FunctionSpec]:
        """Distinct functions appearing in the scenario (stable order)."""
        seen = {}
        for req in self.requests:
            seen.setdefault(req.function.name, req.function)
        return list(seen.values())

    def count_for(self, function_name: str) -> int:
        return sum(1 for r in self.requests if r.function.name == function_name)

    @classmethod
    def from_counts(
        cls,
        counts: Sequence[tuple[FunctionSpec, int]],
        rng: np.random.Generator,
        window: float = BURST_WINDOW_S,
        label: str = "",
    ) -> "BurstScenario":
        """Uniform arrivals in ``[0, window)`` with the given per-function
        request counts; service times drawn from each function's fitted
        distribution."""
        requests: List[Request] = []
        rid = 0
        for spec, n in counts:
            if n < 0:
                raise ValueError(f"negative count for {spec.name!r}")
            if n == 0:
                continue
            arrivals = rng.uniform(0.0, window, size=n)
            services = spec.service_distribution.sample(rng, size=n)
            for arrival, service in zip(arrivals, services):
                requests.append(Request(rid, spec, float(arrival), float(service)))
                rid += 1
        return cls(requests=requests, window=window, label=label)

    def total_service_time(self) -> float:
        return sum(r.service_time for r in self.requests)

    def total_cpu_work(self) -> float:
        return sum(r.cpu_work for r in self.requests)
