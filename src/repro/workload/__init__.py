"""Workload model: SeBS function catalog, scenario registry, and generators.

The paper drives its OpenWhisk deployment with the SeBS benchmark functions
(Table I) called in 60-second uniform bursts of configurable *intensity*
``v`` (total requests = ``1.1 * cores * v``).  This package reproduces that
workload synthetically and generalises it into an open scenario platform:

* :mod:`repro.workload.distributions` — a split log-normal service-time
  model fitted exactly to the published 5th/50th/95th percentiles
  (seconds);
* :mod:`repro.workload.functions` — :class:`FunctionSpec` and the Table-I
  catalog (:func:`sebs_catalog`);
* :mod:`repro.workload.generator` — :class:`Request`/:class:`BurstScenario`
  materialisation, the paper's intensity arithmetic
  (:func:`requests_for_intensity`), and the shared arrival-process helpers
  (:func:`poisson_arrivals`, :func:`zipf_weights`);
* :mod:`repro.workload.registry` — the **scenario registry**: a decorator
  (:func:`register_scenario`) that makes any builder addressable by name +
  JSON-able parameters from ``ExperimentConfig``, the grid, the CLI
  (``faas-sched scenarios`` / ``--scenario``), and the result cache;
* :mod:`repro.workload.scenarios` — registered builders: the paper's
  ``uniform`` (Sect. V-B), ``skewed`` (Sect. VII-D) and ``multi-node``
  (Sect. VIII) workloads plus the ``azure``, ``poisson``, ``diurnal`` and
  ``zipf-multitenant`` extensions;
* :mod:`repro.workload.trace` — the ``trace`` scenario: synthetic
  Azure-shaped profiles (baseline rate + peak, Zipf popularity);
* :mod:`repro.workload.replay` — the ``replay`` scenario: streaming CSV
  trace replay for Azure-trace-shaped ``app,func,minute,count`` files.

Every registered scenario is catalogued in ``docs/SCENARIOS.md`` (CI fails
if one is missing) and must draw all randomness from the
``numpy.random.Generator`` it is handed, which is what keeps parallel and
cached experiment runs bit-identical to serial ones.
"""

from repro.workload.distributions import SplitLogNormal, fit_split_lognormal
from repro.workload.functions import FunctionSpec, sebs_catalog, catalog_by_name
from repro.workload.generator import (
    BurstScenario,
    Request,
    poisson_arrivals,
    requests_for_intensity,
    zipf_weights,
)
from repro.workload.registry import (
    SCENARIOS,
    ScenarioParam,
    ScenarioRegistry,
    ScenarioSpec,
    build_scenario,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.workload.replay import TraceRow, iter_trace_rows, replay_scenario, write_trace_csv
from repro.workload.scenarios import (
    azure_like_burst,
    diurnal_burst,
    multi_node_burst,
    poisson_burst,
    skewed_burst,
    uniform_burst,
    zipf_multitenant_burst,
)
from repro.workload.trace import TraceProfile, trace_scenario

__all__ = [
    "BurstScenario",
    "FunctionSpec",
    "Request",
    "SCENARIOS",
    "ScenarioParam",
    "ScenarioRegistry",
    "ScenarioSpec",
    "SplitLogNormal",
    "TraceProfile",
    "TraceRow",
    "azure_like_burst",
    "build_scenario",
    "catalog_by_name",
    "diurnal_burst",
    "fit_split_lognormal",
    "get_scenario",
    "iter_trace_rows",
    "multi_node_burst",
    "poisson_arrivals",
    "poisson_burst",
    "register_scenario",
    "replay_scenario",
    "requests_for_intensity",
    "scenario_names",
    "sebs_catalog",
    "skewed_burst",
    "trace_scenario",
    "uniform_burst",
    "write_trace_csv",
    "zipf_multitenant_burst",
    "zipf_weights",
]
