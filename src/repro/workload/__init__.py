"""Workload model: SeBS function catalog and request-burst generators.

The paper drives its OpenWhisk deployment with the SeBS benchmark functions
(Table I) called in 60-second uniform bursts of configurable *intensity*.
We reproduce the workload synthetically:

* :mod:`repro.workload.distributions` — a split log-normal service-time
  model fitted exactly to the published 5th/50th/95th percentiles;
* :mod:`repro.workload.functions` — :class:`FunctionSpec` and the Table-I
  catalog (:func:`sebs_catalog`);
* :mod:`repro.workload.generator` — burst scenarios and the paper's
  intensity arithmetic (``|I| = 1.1 * cores * intensity``);
* :mod:`repro.workload.scenarios` — named scenario builders for each
  experiment (uniform grid, Fig.-5 skew, multi-node, Azure-like extension).
"""

from repro.workload.distributions import SplitLogNormal, fit_split_lognormal
from repro.workload.functions import FunctionSpec, sebs_catalog, catalog_by_name
from repro.workload.generator import (
    BurstScenario,
    Request,
    requests_for_intensity,
)
from repro.workload.scenarios import (
    azure_like_burst,
    multi_node_burst,
    skewed_burst,
    uniform_burst,
)
from repro.workload.trace import TraceProfile, trace_scenario

__all__ = [
    "BurstScenario",
    "FunctionSpec",
    "Request",
    "SplitLogNormal",
    "azure_like_burst",
    "catalog_by_name",
    "fit_split_lognormal",
    "multi_node_burst",
    "requests_for_intensity",
    "sebs_catalog",
    "skewed_burst",
    "trace_scenario",
    "TraceProfile",
    "uniform_burst",
]
