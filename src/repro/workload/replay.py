"""CSV trace replay: turn Azure-trace-shaped files into scenarios.

The Azure Functions trace (Shahrad et al., ATC'20) that motivates the
paper's overload argument is distributed as per-minute invocation counts.
This module replays files of that shape — CSV rows of::

    app,func,minute,count

where ``app``/``func`` identify an application's function, ``minute`` is a
zero-based trace minute, and ``count`` is how many invocations that
function received during that minute.  Rows are **streamed**: the file is
read line by line and each row is expanded into requests immediately, so a
multi-gigabyte trace never needs to be materialised in memory as rows
(only the resulting requests are kept).

Unknown trace functions are mapped onto the simulator's catalog by a
stable FNV-1a hash of ``app/func``, so the same trace always exercises the
same service-time distributions across runs and machines.  By default each
``app/func`` pair keeps its own identity (a namespaced copy of the mapped
catalog entry), so distinct trace functions get distinct containers and
estimator state — the popularity skew of the trace becomes container-pool
contention, exactly the effect the paper's Sect. VI analyses.

Caching caveat: the result cache fingerprints the *parameters* of a
replay scenario (the path string), not the bytes of the file.  If you
edit a trace file in place, use a fresh ``--cache-dir`` or a new path.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, TextIO, Union

import numpy as np

from repro.workload.functions import FunctionSpec, sebs_catalog
from repro.workload.generator import BurstScenario, Request, RequestStream
from repro.workload.registry import (
    REQUIRED,
    ScenarioParam,
    register_scenario,
    register_stream_builder,
)

__all__ = [
    "TraceRow",
    "iter_trace_rows",
    "replay_scenario",
    "replay_stream",
    "write_trace_csv",
]

#: Expected CSV column order.
TRACE_COLUMNS = ("app", "func", "minute", "count")


@dataclass(frozen=True)
class TraceRow:
    """One per-minute invocation-count record of a trace file.

    Attributes
    ----------
    app / func:
        Application and function identifiers (opaque strings).
    minute:
        Zero-based trace minute the invocations fall into.
    count:
        Invocations of ``app/func`` during that minute (>= 0).
    """

    app: str
    func: str
    minute: int
    count: int

    def __post_init__(self) -> None:
        if self.minute < 0:
            raise ValueError(f"minute must be >= 0, got {self.minute!r}")
        if self.count < 0:
            raise ValueError(f"count must be >= 0, got {self.count!r}")

    @property
    def key(self) -> str:
        """The trace function's identity, ``app/func``."""
        return f"{self.app}/{self.func}"


RowSource = Union[str, Path, TextIO, Iterable[TraceRow]]


def iter_trace_rows(source: RowSource) -> Iterator[TraceRow]:
    """Stream :class:`TraceRow` items from *source*.

    *source* may be a CSV path, an open text file, or an iterable of
    already-built :class:`TraceRow` objects (handy in tests).  A header
    line (``app,func,minute,count``) is skipped if present; blank lines
    and ``#`` comments are ignored.  Malformed rows raise
    :class:`ValueError` naming the offending line.
    """
    if isinstance(source, (str, Path)):
        with open(source, newline="", encoding="utf-8") as handle:
            yield from _iter_csv(handle)
        return
    if hasattr(source, "read"):
        yield from _iter_csv(source)
        return
    for row in source:
        yield row


def _iter_csv(handle: TextIO) -> Iterator[TraceRow]:
    seen_data = False
    for lineno, fields in enumerate(csv.reader(handle), start=1):
        if not fields or (len(fields) == 1 and not fields[0].strip()):
            continue
        if fields[0].lstrip().startswith("#"):
            continue
        if not seen_data and [f.strip().lower() for f in fields] == list(TRACE_COLUMNS):
            continue  # header (possibly preceded by comments/blank lines)
        seen_data = True
        if len(fields) != len(TRACE_COLUMNS):
            raise ValueError(
                f"trace line {lineno}: expected {len(TRACE_COLUMNS)} columns "
                f"{TRACE_COLUMNS}, got {len(fields)}: {fields!r}"
            )
        app, func, minute, count = (f.strip() for f in fields)
        try:
            yield TraceRow(app=app, func=func, minute=int(minute), count=int(count))
        except ValueError as exc:
            raise ValueError(f"trace line {lineno}: {exc}") from None


def write_trace_csv(path: Union[str, Path], rows: Iterable[TraceRow]) -> Path:
    """Write *rows* as a header-led CSV at *path* (inverse of
    :func:`iter_trace_rows`; used by tests and the replay example)."""
    path = Path(path)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(TRACE_COLUMNS)
        for row in rows:
            writer.writerow([row.app, row.func, row.minute, row.count])
    return path


def _fnv1a(text: str) -> int:
    """Process-independent 64-bit FNV-1a hash (Python's ``hash`` is salted,
    which would make trace→catalog mapping differ across runs)."""
    value = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value


def replay_scenario(
    source: RowSource,
    rng: np.random.Generator,
    catalog: Optional[Sequence[FunctionSpec]] = None,
    *,
    minute_s: float = 60.0,
    namespace_functions: bool = True,
    max_minutes: Optional[int] = None,
    label: str = "replay",
) -> BurstScenario:
    """Replay a trace as a :class:`~repro.workload.generator.BurstScenario`.

    Each row's ``count`` invocations are released uniformly at random
    within its minute, i.e. within ``[minute * minute_s, (minute + 1) *
    minute_s)`` seconds; service times come from the mapped catalog
    function's fitted distribution.  Rows are consumed streamingly in file
    order, and all randomness is drawn from *rng* in that order, so a
    fixed seed reproduces the scenario bit for bit.

    Parameters
    ----------
    source:
        CSV path, open text file, or iterable of :class:`TraceRow`.
    minute_s:
        Simulated seconds per trace minute (60.0 replays in real time;
        smaller values time-compress the trace).
    namespace_functions:
        ``True`` (default) keeps each ``app/func`` identity distinct —
        separate containers and estimator state per trace function.
        ``False`` collapses trace functions onto the bare catalog names
        (at most 11 distinct functions, all pre-warmed by the runner).
    max_minutes:
        Ignore rows at or beyond this minute (``None`` = replay all).
    """
    if minute_s <= 0:
        raise ValueError(f"minute_s must be positive, got {minute_s!r}")
    catalog = list(catalog) if catalog is not None else sebs_catalog()
    specs: Dict[str, FunctionSpec] = {}
    requests: List[Request] = []
    rid = 0
    last_minute = -1
    for row in iter_trace_rows(source):
        if max_minutes is not None and row.minute >= max_minutes:
            continue
        last_minute = max(last_minute, row.minute)
        if row.count == 0:
            continue
        spec = specs.get(row.key)
        if spec is None:
            base = catalog[_fnv1a(row.key) % len(catalog)]
            spec = (
                replace(base, name=f"{row.key}#{base.name}")
                if namespace_functions
                else base
            )
            specs[row.key] = spec
        start = row.minute * minute_s
        arrivals = rng.uniform(start, start + minute_s, size=row.count)
        services = spec.service_distribution.sample(rng, size=row.count)
        for arrival, service in zip(arrivals, services):
            requests.append(Request(rid, spec, float(arrival), float(service)))
            rid += 1
    window = (last_minute + 1) * minute_s if last_minute >= 0 else minute_s
    return BurstScenario(requests=requests, window=window, label=label)


def replay_stream(
    source: RowSource,
    rng: np.random.Generator,
    catalog: Optional[Sequence[FunctionSpec]] = None,
    *,
    minute_s: float = 60.0,
    namespace_functions: bool = True,
    max_minutes: Optional[int] = None,
    label: str = "replay",
) -> RequestStream:
    """Replay a trace as a lazy :class:`RequestStream` in bounded memory.

    Produces the *exact* requests of :func:`replay_scenario` — same rids,
    release times, functions, and service times (randomness is drawn from
    *rng* in the same row order) — but never materialises the full list:
    peak memory is one trace minute's worth of requests, so a
    ten-million-invocation day replays in constant memory.

    The lazy-injection contract requires requests in release-time order.
    Minute buckets ``[m * minute_s, (m + 1) * minute_s)`` are disjoint, so
    sorting each bucket locally reproduces the global sort — **provided
    the rows arrive grouped by non-decreasing minute**.  A row whose
    minute goes backwards raises :class:`ValueError` naming the offending
    row; sort the trace file by its ``minute`` column (e.g. ``sort -t, -k3
    -n``) or fall back to the materialising ``retain_records=True`` path,
    which accepts any row order.
    """
    if minute_s <= 0:
        raise ValueError(f"minute_s must be positive, got {minute_s!r}")
    catalog = list(catalog) if catalog is not None else sebs_catalog()

    def generate() -> Iterator[Request]:
        specs: Dict[str, FunctionSpec] = {}
        bucket: List[Request] = []
        bucket_minute = -1
        rid = 0
        for row in iter_trace_rows(source):
            if max_minutes is not None and row.minute >= max_minutes:
                continue
            if row.minute < bucket_minute:
                raise ValueError(
                    f"streaming replay requires rows grouped by "
                    f"non-decreasing minute, but row "
                    f"{row.app}/{row.func} has minute {row.minute} after "
                    f"minute {bucket_minute}; sort the trace by its minute "
                    f"column or run with retain_records=True (the "
                    f"materialising path accepts any row order)"
                )
            if row.minute > bucket_minute:
                bucket.sort(key=lambda r: (r.release_time, r.rid))
                yield from bucket
                bucket = []
                bucket_minute = row.minute
            if row.count == 0:
                continue
            spec = specs.get(row.key)
            if spec is None:
                base = catalog[_fnv1a(row.key) % len(catalog)]
                spec = (
                    replace(base, name=f"{row.key}#{base.name}")
                    if namespace_functions
                    else base
                )
                specs[row.key] = spec
            start = row.minute * minute_s
            arrivals = rng.uniform(start, start + minute_s, size=row.count)
            services = spec.service_distribution.sample(rng, size=row.count)
            for arrival, service in zip(arrivals, services):
                bucket.append(Request(rid, spec, float(arrival), float(service)))
                rid += 1
        bucket.sort(key=lambda r: (r.release_time, r.rid))
        yield from bucket

    return RequestStream(generate, window=None, label=label)


@register_scenario(
    "replay",
    description="Replay an Azure-shaped CSV trace (app,func,minute,count rows)",
    paper_section="extension",
    params=(
        ScenarioParam("path", REQUIRED, "CSV trace file to replay"),
        ScenarioParam("minute_s", 60.0, "simulated seconds per trace minute"),
        ScenarioParam(
            "namespace_functions", True,
            "keep each app/func identity distinct (own containers) vs. "
            "collapsing onto the bare catalog",
        ),
        ScenarioParam("max_minutes", None, "replay only the first N trace minutes"),
    ),
)
def _replay(cores, intensity, rng, *, window, catalog, path, minute_s, namespace_functions, max_minutes):
    """Registry adapter.  The trace file defines the load, so ``cores`` and
    ``intensity`` are ignored (they still shape the node under test)."""
    return replay_scenario(
        path,
        rng,
        catalog=catalog,
        minute_s=float(minute_s),
        namespace_functions=bool(namespace_functions),
        max_minutes=None if max_minutes is None else int(max_minutes),
        label=f"replay {Path(path).name}",
    )


@register_stream_builder("replay")
def _replay_stream(cores, intensity, rng, *, window, catalog, path, minute_s, namespace_functions, max_minutes):
    """Streaming registry adapter: same parameters, bounded memory
    (requires the trace grouped by non-decreasing minute)."""
    return replay_stream(
        path,
        rng,
        catalog=catalog,
        minute_s=float(minute_s),
        namespace_functions=bool(namespace_functions),
        max_minutes=None if max_minutes is None else int(max_minutes),
        label=f"replay {Path(path).name}",
    )
