"""Pluggable scenario registry: named, parameterized workload builders.

Scenarios were historically four ad-hoc builder functions that the grid
engine, CLI, and benchmarks could not enumerate or parameterize uniformly.
This module gives the workload layer a first-class catalog:

* :class:`ScenarioParam` — one declared, documented builder parameter
  (name, default, units);
* :class:`ScenarioSpec` — a registered scenario: builder callable plus
  metadata (description, paper section, declared parameters) and a
  :meth:`ScenarioSpec.build` entry point that validates parameters;
* :class:`ScenarioRegistry` — a name → spec map with duplicate rejection
  and error messages that list what *is* available;
* :func:`register_scenario` — the decorator builders use to join the
  default registry (``@register_scenario("diurnal", ...)``).

Everything above the workload layer goes through :func:`build_scenario`:
:class:`~repro.experiments.config.ExperimentConfig` validates its
``scenario``/``scenario_params`` fields against the registry, the runner
builds workloads by name, and the CLI's ``faas-sched scenarios`` listing is
rendered from the same metadata — so a newly registered scenario is
immediately runnable, cacheable, and documented everywhere.

Determinism: a builder must derive *all* randomness from the
``numpy.random.Generator`` it is handed.  The parallel engine rebuilds
scenarios from ``(seed, name, params)`` inside worker processes, and the
serial-vs-parallel bit-identity tests hold for every registered scenario
only because builders honour this contract.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as _dc_replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.workload.functions import FunctionSpec
from repro.workload.generator import BURST_WINDOW_S, BurstScenario, RequestStream

__all__ = [
    "REQUIRED",
    "ScenarioParam",
    "ScenarioSpec",
    "ScenarioRegistry",
    "SCENARIOS",
    "register_scenario",
    "register_stream_builder",
    "get_scenario",
    "scenario_names",
    "build_scenario",
    "build_scenario_stream",
]

#: Builder contract: ``builder(cores, intensity, rng, *, window, catalog,
#: **params) -> BurstScenario``.  ``cores``/``intensity`` carry the paper's
#: load arithmetic; builders that define their own load (e.g. trace replay)
#: may ignore them, but must document that they do.
ScenarioBuilder = Callable[..., BurstScenario]


class _Required:
    """Sentinel default for parameters the caller must supply."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<required>"


#: Use as a :class:`ScenarioParam` default to mark the parameter mandatory.
REQUIRED = _Required()


@dataclass(frozen=True)
class ScenarioParam:
    """One declared scenario parameter.

    Attributes
    ----------
    name:
        Keyword-argument name passed to the builder.
    default:
        Default value, or :data:`REQUIRED` if the caller must supply one.
    doc:
        One-line description **including units** (seconds, requests/second,
        ...), rendered by ``faas-sched scenarios`` and docs/SCENARIOS.md.
    """

    name: str
    default: Any
    doc: str = ""

    @property
    def required(self) -> bool:
        return isinstance(self.default, _Required)


@dataclass(frozen=True)
class ScenarioSpec:
    """A registered scenario: builder plus catalog metadata."""

    name: str
    builder: ScenarioBuilder
    description: str
    #: Paper section the scenario models (e.g. ``"V-B"``), or
    #: ``"extension"`` for workloads beyond the paper's evaluation.
    paper_section: str
    params: Tuple[ScenarioParam, ...] = ()
    #: Optional truly-streaming builder returning a
    #: :class:`~repro.workload.generator.RequestStream` (same signature
    #: as :attr:`builder`); attached via :func:`register_stream_builder`.
    #: Scenarios without one stream through the generic deferred-build
    #: wrapper (see :meth:`build_stream`).
    stream_builder: Optional[ScenarioBuilder] = None

    def param_names(self) -> List[str]:
        return [p.name for p in self.params]

    def defaults(self) -> Dict[str, Any]:
        """Declared defaults (required parameters omitted)."""
        return {p.name: p.default for p in self.params if not p.required}

    def validate_params(self, params: Optional[Mapping[str, Any]]) -> Dict[str, Any]:
        """Merge *params* over the declared defaults, rejecting unknown
        names and missing required parameters with actionable messages."""
        params = dict(params) if params else {}
        declared = {p.name for p in self.params}
        unknown = sorted(set(params) - declared)
        if unknown:
            valid = ", ".join(sorted(declared)) or "(none)"
            raise ValueError(
                f"unknown parameter(s) {unknown} for scenario {self.name!r}; "
                f"valid parameters: {valid}"
            )
        merged = self.defaults()
        merged.update(params)
        missing = sorted(p.name for p in self.params if p.required and p.name not in merged)
        if missing:
            raise ValueError(
                f"scenario {self.name!r} requires parameter(s) {missing} "
                f"(e.g. --scenario-param {missing[0]}=...)"
            )
        return merged

    def build(
        self,
        cores: int,
        intensity: int,
        rng: np.random.Generator,
        *,
        window: float = BURST_WINDOW_S,
        catalog: Optional[Sequence[FunctionSpec]] = None,
        params: Optional[Mapping[str, Any]] = None,
    ) -> BurstScenario:
        """Build the scenario after validating *params*.

        ``window`` is the request-emission window in seconds (builders with
        their own duration parameter may override it); ``catalog`` defaults
        to the paper's 11-function SeBS catalog.
        """
        kwargs = self.validate_params(params)
        return self.builder(cores, intensity, rng, window=window, catalog=catalog, **kwargs)

    def build_stream(
        self,
        cores: int,
        intensity: int,
        rng: np.random.Generator,
        *,
        window: float = BURST_WINDOW_S,
        catalog: Optional[Sequence[FunctionSpec]] = None,
        params: Optional[Mapping[str, Any]] = None,
    ) -> RequestStream:
        """Build the scenario as a lazy :class:`RequestStream`.

        Scenarios with a registered streaming builder (currently
        ``replay``) produce requests in truly bounded memory.  Every other
        scenario goes through a *deferred-build* wrapper: the materialising
        builder runs only when the platform first pulls arrivals, and the
        request list stays internal to the generator — same RNG draw
        order, same requests, same injection order as the retained path,
        so streaming results match retained ones exactly.
        """
        kwargs = self.validate_params(params)
        if self.stream_builder is not None:
            return self.stream_builder(
                cores, intensity, rng, window=window, catalog=catalog, **kwargs
            )

        def deferred() -> Iterator[Any]:
            scenario = self.builder(
                cores, intensity, rng, window=window, catalog=catalog, **kwargs
            )
            return scenario.arrivals()

        return RequestStream(deferred, window=window, label=f"{self.name} (deferred)")


class ScenarioRegistry:
    """Name → :class:`ScenarioSpec` map with registration helpers."""

    def __init__(self) -> None:
        self._specs: Dict[str, ScenarioSpec] = {}

    def register(
        self,
        name: str,
        *,
        description: str,
        paper_section: str = "extension",
        params: Sequence[ScenarioParam] = (),
    ) -> Callable[[ScenarioBuilder], ScenarioBuilder]:
        """Decorator registering a builder under *name*.

        Raises :class:`ValueError` if *name* is already taken — silent
        replacement would let two modules fight over a name and make
        results depend on import order.
        """

        def decorate(builder: ScenarioBuilder) -> ScenarioBuilder:
            if name in self._specs:
                raise ValueError(
                    f"scenario {name!r} is already registered "
                    f"(by {self._specs[name].builder.__module__})"
                )
            self._specs[name] = ScenarioSpec(
                name=name,
                builder=builder,
                description=description,
                paper_section=paper_section,
                params=tuple(params),
            )
            return builder

        return decorate

    def register_stream(self, name: str) -> Callable[[ScenarioBuilder], ScenarioBuilder]:
        """Decorator attaching a truly-streaming builder to the already
        registered scenario *name* (see :meth:`ScenarioSpec.build_stream`).

        The streaming builder must produce the *same* requests — same
        rids, release times, functions, and service times, drawn from the
        RNG in the same order — as the materialising builder, just
        lazily; the streaming-vs-retained equivalence tests enforce this.
        """

        def decorate(builder: ScenarioBuilder) -> ScenarioBuilder:
            spec = self._specs.get(name)
            if spec is None:
                raise ValueError(
                    f"cannot attach a stream builder: scenario {name!r} is "
                    f"not registered (register the scenario first)"
                )
            if spec.stream_builder is not None:
                raise ValueError(
                    f"scenario {name!r} already has a stream builder "
                    f"(from {spec.stream_builder.__module__})"
                )
            self._specs[name] = _dc_replace(spec, stream_builder=builder)
            return builder

        return decorate

    def get(self, name: str) -> ScenarioSpec:
        """The spec for *name*; :class:`ValueError` listing the available
        scenario names otherwise."""
        spec = self._specs.get(name)
        if spec is None:
            available = ", ".join(self.names()) or "(none registered)"
            raise ValueError(
                f"unknown scenario {name!r}; available scenarios: {available}"
            )
        return spec

    def names(self) -> List[str]:
        return sorted(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[ScenarioSpec]:
        for name in self.names():
            yield self._specs[name]

    def __len__(self) -> int:
        return len(self._specs)


#: The default registry; the built-in scenario modules register here on
#: import, and downstream layers resolve names through the module-level
#: helpers below (which force those imports first).
SCENARIOS = ScenarioRegistry()


def _load_builtin_scenarios() -> None:
    """Import the modules whose decorators populate :data:`SCENARIOS`.

    Lazy (and idempotent — registration happens once per process at module
    import) so that ``repro.workload.registry`` itself has no import cycle
    with the builder modules.
    """
    import repro.workload.replay  # noqa: F401
    import repro.workload.scenarios  # noqa: F401
    import repro.workload.trace  # noqa: F401


def register_scenario(
    name: str,
    *,
    description: str,
    paper_section: str = "extension",
    params: Sequence[ScenarioParam] = (),
) -> Callable[[ScenarioBuilder], ScenarioBuilder]:
    """Register a builder in the default registry (decorator).

    Example
    -------
    >>> @register_scenario(
    ...     "constant",
    ...     description="n requests at t=0",
    ...     params=(ScenarioParam("n", 10, "request count"),),
    ... )
    ... def constant(cores, intensity, rng, *, window, catalog, n):
    ...     ...
    """
    return SCENARIOS.register(
        name, description=description, paper_section=paper_section, params=params
    )


def register_stream_builder(name: str) -> Callable[[ScenarioBuilder], ScenarioBuilder]:
    """Attach a truly-streaming builder to an already registered scenario
    in the default registry (decorator; see
    :meth:`ScenarioRegistry.register_stream`)."""
    return SCENARIOS.register_stream(name)


def get_scenario(name: str) -> ScenarioSpec:
    """The registered spec for *name* (built-ins loaded on demand)."""
    _load_builtin_scenarios()
    return SCENARIOS.get(name)


def scenario_names() -> List[str]:
    """Sorted names of every registered scenario."""
    _load_builtin_scenarios()
    return SCENARIOS.names()


def build_scenario(
    name: str,
    cores: int,
    intensity: int,
    rng: np.random.Generator,
    *,
    window: float = BURST_WINDOW_S,
    catalog: Optional[Sequence[FunctionSpec]] = None,
    params: Optional[Mapping[str, Any]] = None,
) -> BurstScenario:
    """Build the scenario registered under *name* — the single entry point
    used by the experiment runner, so every registered scenario composes
    with the parallel engine and its cache automatically."""
    return get_scenario(name).build(
        cores, intensity, rng, window=window, catalog=catalog, params=params
    )


def build_scenario_stream(
    name: str,
    cores: int,
    intensity: int,
    rng: np.random.Generator,
    *,
    window: float = BURST_WINDOW_S,
    catalog: Optional[Sequence[FunctionSpec]] = None,
    params: Optional[Mapping[str, Any]] = None,
) -> RequestStream:
    """Build the scenario registered under *name* as a lazy
    :class:`~repro.workload.generator.RequestStream` — the entry point of
    the runner's ``retain_records=False`` path (see
    :meth:`ScenarioSpec.build_stream` for the streaming semantics)."""
    return get_scenario(name).build_stream(
        cores, intensity, rng, window=window, catalog=catalog, params=params
    )
