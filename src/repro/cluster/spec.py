"""Cluster topology as experiment configuration.

:class:`ClusterSpec` makes the multi-node dimension a first-class,
hashable, JSON-serializable part of an experiment's identity: node count,
optional per-node :class:`~repro.node.config.NodeConfig` overrides for
heterogeneous fleets, the load-balancer flavour with its constructor
kwargs, and an optional reactive autoscaler.  It is carried by
:class:`~repro.experiments.config.ExperimentConfig`, validated at
construction (a typo fails before any simulation time is spent), folded
into the result-cache fingerprint, and swept by
:class:`~repro.experiments.grid.GridSpec` like any other grid dimension.

All collection-valued fields are stored as name-sorted ``(name, value)``
pair tuples — the same canonical form as ``scenario_params`` — so specs
stay hashable and their JSON form is one-to-one with their content.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.cluster.autoscaler import AutoscalerConfig
from repro.cluster.controller import validate_balancer_params
from repro.node.config import NodeConfig

__all__ = ["ClusterSpec", "DEFAULT_CLUSTER"]

#: Canonical pair-tuple form shared by every parameter field.
Pairs = Tuple[Tuple[str, Any], ...]
ParamsLike = Union[Mapping[str, Any], Sequence[Tuple[str, Any]], None]

_NODE_FIELDS = frozenset(f.name for f in fields(NodeConfig))
_AUTOSCALER_FIELDS = tuple(f.name for f in fields(AutoscalerConfig))


def _freeze_value(name: str, value: Any) -> Any:
    """Hashable, JSON-stable parameter values (see the identical rule for
    scenario params): scalars pass through, lists become tuples, anything
    else is rejected up front."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_value(name, item) for item in value)
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise ValueError(
        f"cluster parameter {name!r} has unsupported value type "
        f"{type(value).__name__}; use JSON scalars or lists"
    )


def _freeze_pairs(params: ParamsLike) -> Pairs:
    """Normalise a mapping or pair sequence to name-sorted pair tuples
    (duplicates resolve last-wins, sorting compares names only)."""
    if not params:
        return ()
    items = params.items() if isinstance(params, Mapping) else params
    deduped = {str(name): _freeze_value(str(name), value) for name, value in items}
    return tuple(sorted(deduped.items()))


@dataclass(frozen=True)
class ClusterSpec:
    """Topology of the fleet one experiment runs on.

    Attributes
    ----------
    nodes:
        Worker-node (invoker) count.  ``1`` with all other fields at
        their defaults is the classic single-node experiment.
    balancer:
        Name of a registered load-balancer flavour (see
        :data:`repro.cluster.controller.BALANCERS`).
    balancer_params:
        Balancer constructor kwargs as ``(name, value)`` pairs (a mapping
        is accepted); validated against the constructor and merged with
        its declared defaults, so the cache fingerprint covers defaults.
        Balancers with a ``seed`` parameter receive the experiment's root
        seed at run time unless ``seed`` is pinned here.
    node_overrides:
        Per-node :class:`~repro.node.config.NodeConfig` field overrides
        for heterogeneous fleets: one pair-tuple (or mapping) per node,
        applied over the experiment's base node configuration.  Empty
        means a homogeneous fleet; otherwise the length must equal
        ``nodes``.
    autoscaler:
        ``None`` (no autoscaling) or
        :class:`~repro.cluster.autoscaler.AutoscalerConfig` kwargs as
        pairs — ``()`` enables the autoscaler with its defaults.  Stored
        merged over the config's defaults (fingerprint covers them).
    """

    nodes: int = 1
    balancer: str = "least-loaded"
    balancer_params: Pairs = ()
    node_overrides: Tuple[Pairs, ...] = ()
    autoscaler: Optional[Pairs] = None

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes!r}")
        merged = validate_balancer_params(
            self.balancer, dict(_freeze_pairs(self.balancer_params))
        )
        object.__setattr__(self, "balancer_params", _freeze_pairs(merged))
        object.__setattr__(
            self,
            "node_overrides",
            tuple(_freeze_pairs(entry) for entry in self.node_overrides),
        )
        if self.node_overrides and len(self.node_overrides) != self.nodes:
            raise ValueError(
                f"node_overrides has {len(self.node_overrides)} entries for "
                f"{self.nodes} nodes; give one entry per node (or none)"
            )
        for entry in self.node_overrides:
            unknown = sorted(set(dict(entry)) - _NODE_FIELDS)
            if unknown:
                raise ValueError(
                    f"unknown NodeConfig field(s) {unknown} in node_overrides; "
                    f"valid fields: {', '.join(sorted(_NODE_FIELDS))}"
                )
        if self.autoscaler is not None:
            supplied = dict(_freeze_pairs(self.autoscaler))
            unknown = sorted(set(supplied) - set(_AUTOSCALER_FIELDS))
            if unknown:
                raise ValueError(
                    f"unknown autoscaler parameter(s) {unknown}; valid: "
                    f"{', '.join(_AUTOSCALER_FIELDS)}"
                )
            # Constructing validates values; storing every field makes the
            # cache fingerprint cover the defaults too.
            config = AutoscalerConfig(**supplied)
            merged_auto = {name: getattr(config, name) for name in _AUTOSCALER_FIELDS}
            object.__setattr__(self, "autoscaler", _freeze_pairs(merged_auto))

    # ------------------------------------------------------------------
    @property
    def is_default(self) -> bool:
        """True for the classic single-node topology (the exact historical
        code path: one invoker, platform-default balancer, no scaling)."""
        return self == DEFAULT_CLUSTER

    def balancer_kwargs(self) -> Dict[str, Any]:
        return dict(self.balancer_params)

    def autoscaler_config(self) -> Optional[AutoscalerConfig]:
        """The materialised autoscaler configuration, or ``None``."""
        if self.autoscaler is None:
            return None
        return AutoscalerConfig(**dict(self.autoscaler))

    def node_configs(self, base: NodeConfig) -> List[NodeConfig]:
        """One :class:`NodeConfig` per node: *base* plus this spec's
        per-node overrides (heterogeneous fleets)."""
        if not self.node_overrides:
            return [base] * self.nodes
        return [
            replace(base, **dict(overrides)) for overrides in self.node_overrides
        ]

    def with_(self, **changes) -> "ClusterSpec":
        """A copy with fields replaced (ergonomic sweep helper)."""
        return replace(self, **changes)

    def label_suffix(self) -> str:
        """Compact label fragment; empty for the default topology."""
        if self.is_default:
            return ""
        parts = [f"nodes={self.nodes}"]
        if self.balancer != "least-loaded":
            parts.append(f"balancer={self.balancer}")
        if self.autoscaler is not None:
            parts.append("autoscale")
        return " " + " ".join(parts)

    # ------------------------------------------------------------------
    # JSON form (cache fingerprints and on-disk results)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-compatible dict (pairs as lists-of-lists)."""
        return {
            "nodes": self.nodes,
            "balancer": self.balancer,
            "balancer_params": [list(pair) for pair in self.balancer_params],
            "node_overrides": [
                [list(pair) for pair in entry] for entry in self.node_overrides
            ],
            "autoscaler": (
                None
                if self.autoscaler is None
                else [list(pair) for pair in self.autoscaler]
            ),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ClusterSpec":
        """Inverse of :meth:`to_dict` (construction re-validates)."""
        return cls(
            nodes=payload["nodes"],
            balancer=payload["balancer"],
            balancer_params=tuple(
                (name, _untuple(value)) for name, value in payload["balancer_params"]
            ),
            node_overrides=tuple(
                tuple((name, _untuple(value)) for name, value in entry)
                for entry in payload["node_overrides"]
            ),
            autoscaler=(
                None
                if payload["autoscaler"] is None
                else tuple(
                    (name, _untuple(value)) for name, value in payload["autoscaler"]
                )
            ),
        )


def _untuple(value: Any) -> Any:
    """JSON turns tuples into lists; restore tuples recursively."""
    if isinstance(value, list):
        return tuple(_untuple(item) for item in value)
    return value


#: The classic single-node topology (shared instance; ClusterSpec is frozen).
DEFAULT_CLUSTER = ClusterSpec()
