"""The OpenWhisk controller's load-balancing role.

The paper does not modify the controller; its multi-node experiments use
the stock assignment of invocations to invokers.  We provide five
balancers:

* :class:`RoundRobinBalancer` — cyclic assignment;
* :class:`LeastLoadedBalancer` — fewest outstanding calls (ties by index);
* :class:`HashOverflowBalancer` — OpenWhisk's sharding-pool flavour: each
  function has a *home* invoker (hash of its name); when the home's
  outstanding work exceeds a capacity factor the call spills to the next
  invoker in a deterministic ring;
* :class:`PowerOfDChoicesBalancer` — join-shortest-of-d sampling: probe
  ``d`` invokers drawn from a seeded PRNG and send the call to the least
  loaded of the sample (Mitzenmacher's power of two choices for d=2);
* :class:`LocalityBalancer` — warm-container affinity: prefer invokers
  already holding idle warm containers for the request's function,
  spilling over a deterministic hash ring when every warm holder is
  overloaded.

Every balancer counts its routing decisions in :class:`BalancerStats`
(picks, spills) so experiment results can report per-cluster routing
quality; the :class:`~repro.cluster.platform.FaaSPlatform` increments
``picks`` once per routed call and the spill-capable balancers increment
``spills`` themselves.
"""

from __future__ import annotations

import inspect
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Sequence, Type

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workload.functions import FunctionSpec
    from repro.workload.generator import Request

__all__ = [
    "BalancerStats",
    "LoadBalancer",
    "RoundRobinBalancer",
    "LeastLoadedBalancer",
    "HashOverflowBalancer",
    "PowerOfDChoicesBalancer",
    "LocalityBalancer",
    "BALANCERS",
    "balancer_names",
    "balancer_param_names",
    "make_balancer",
    "validate_balancer_params",
]


@dataclass
class BalancerStats:
    """Routing counters of one balancer instance.

    ``picks`` counts routed calls (incremented by the platform, once per
    call); ``spills`` counts the calls a balancer could not place on its
    preferred invoker (home shard over threshold, no warm holder
    available, ...) — balancers without a preferred/fallback distinction
    never spill.
    """

    picks: int = 0
    spills: int = 0

    @property
    def spill_rate(self) -> float:
        """Fraction of routed calls that left the preferred invoker."""
        return self.spills / self.picks if self.picks else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "picks": self.picks,
            "spills": self.spills,
            "spill_rate": self.spill_rate,
        }


def _is_int(value: Any) -> bool:
    """True for genuine integers (bool is technically int but never what
    a balancer parameter means)."""
    return isinstance(value, int) and not isinstance(value, bool)


def _check_capacity_factor(value: Any) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"capacity_factor must be a number, got {value!r}")
    if value <= 0:
        raise ValueError("capacity_factor must be positive")


class LoadBalancer:
    """Base class: picks an invoker index for each request.

    When given a ``list``, the balancer keeps the *reference*: an
    autoscaler may append invokers mid-run and they become routable
    immediately.
    """

    name = ""

    def __init__(self, invokers: Sequence) -> None:
        if not invokers:
            raise ValueError("need at least one invoker")
        self.invokers = invokers if isinstance(invokers, list) else list(invokers)
        self.stats = BalancerStats()

    def pick(self, request: "Request") -> int:
        raise NotImplementedError


class RoundRobinBalancer(LoadBalancer):
    name = "round-robin"

    def __init__(self, invokers: Sequence) -> None:
        super().__init__(invokers)
        self._next = 0

    def pick(self, request: "Request") -> int:
        index = self._next
        self._next = (self._next + 1) % len(self.invokers)
        return index


class LeastLoadedBalancer(LoadBalancer):
    name = "least-loaded"

    def pick(self, request: "Request") -> int:
        return min(
            range(len(self.invokers)), key=lambda i: (self.invokers[i].outstanding, i)
        )


class _ThresholdMixin:
    """Shared overload threshold and deterministic hash-ring walk for the
    spilling balancers (``capacity_factor`` x cores outstanding calls)."""

    capacity_factor: float

    def _threshold(self, invoker) -> float:
        return self.capacity_factor * invoker.config.cores

    def _ring_pick(self, invokers: List, home: int) -> int:
        """First under-threshold invoker on the ring starting at *home*;
        the globally least-loaded one if every invoker is overloaded."""
        n = len(invokers)
        for step in range(n):
            index = (home + step) % n
            if invokers[index].outstanding < self._threshold(invokers[index]):
                return index
        return min(range(n), key=lambda i: (invokers[i].outstanding, i))


class HashOverflowBalancer(_ThresholdMixin, LoadBalancer):
    """Home invoker by function-name hash, spill on overload.

    ``capacity_factor`` scales each node's nominal concurrency (its core
    count) into an outstanding-call threshold above which the balancer
    tries the next invoker on the ring; if every invoker is above its
    threshold the least-loaded one is used.  Every call that leaves its
    home invoker counts as one spill in :attr:`LoadBalancer.stats`.
    """

    name = "hash-overflow"

    def __init__(self, invokers: Sequence, capacity_factor: float = 2.0) -> None:
        super().__init__(invokers)
        _check_capacity_factor(capacity_factor)
        self.capacity_factor = capacity_factor

    def pick(self, request: "Request") -> int:
        home = _stable_hash(request.function.name) % len(self.invokers)
        index = self._ring_pick(self.invokers, home)
        if index != home:
            self.stats.spills += 1
        return index


class PowerOfDChoicesBalancer(LoadBalancer):
    """Join-shortest-of-d: sample ``d`` distinct invokers, pick the least
    loaded of the sample (ties by index).

    The classic load-balancing result: sampling just two queues gets
    exponentially close to join-shortest-queue at a fraction of the
    probing cost — the right trade for large fleets where probing every
    invoker per call is unrealistic.  Sampling uses a private
    ``random.Random(seed)``, so runs are deterministic for a given seed
    and bit-identical across the serial and parallel engines; the
    experiment runner derives ``seed`` from the experiment's root seed
    unless one is given explicitly.

    Reads ``len(self.invokers)`` on every pick, so invokers appended to a
    live list mid-run (autoscaling) join the sampling population
    immediately.
    """

    name = "power-of-d"

    def __init__(self, invokers: Sequence, d: int = 2, seed: int = 1) -> None:
        super().__init__(invokers)
        # Exact type checks, not coercion: d=2.5 would silently truncate
        # while the cache fingerprint kept the untruncated value, so
        # distinct fingerprints would simulate identically.
        if not _is_int(d) or d < 1:
            raise ValueError(f"d must be an integer >= 1, got {d!r}")
        if not _is_int(seed):
            raise ValueError(f"seed must be an integer, got {seed!r}")
        self.d = d
        self._rng = random.Random(seed)

    def pick(self, request: "Request") -> int:
        n = len(self.invokers)
        if self.d >= n:
            candidates = range(n)
        else:
            candidates = self._rng.sample(range(n), self.d)
        return min(candidates, key=lambda i: (self.invokers[i].outstanding, i))


class LocalityBalancer(_ThresholdMixin, LoadBalancer):
    """Warm-container affinity with deterministic overflow.

    Prefers invokers that already hold an idle warm container for the
    request's function — routing there skips the cold-start path
    entirely, which is the single largest response-time term for short
    functions (paper Sect. VI).  Among warm holders under the overload
    threshold (``capacity_factor`` x cores outstanding calls, like
    :class:`HashOverflowBalancer`), the one with the most idle warm
    containers wins, ties broken by fewer outstanding calls then index.

    When no invoker holds a warm container — or every holder is over its
    threshold — the call *spills* (counted in stats) over the same
    deterministic hash ring as :class:`HashOverflowBalancer`: home by
    function-name hash, first under-threshold invoker on the ring,
    least-loaded as the last resort.  Spilling therefore tends to create
    a warm container on the spill target, so a hot function's working
    set spreads over exactly as many invokers as its load requires.

    Invokers that do not expose a container pool (plain stubs) count as
    holding no warm containers.
    """

    name = "locality"

    def __init__(self, invokers: Sequence, capacity_factor: float = 2.0) -> None:
        super().__init__(invokers)
        _check_capacity_factor(capacity_factor)
        self.capacity_factor = capacity_factor

    @staticmethod
    def _warm_count(invoker, spec: "FunctionSpec") -> int:
        pool = getattr(invoker, "pool", None)
        if pool is None:
            return 0
        return pool.warm_count(spec)

    def pick(self, request: "Request") -> int:
        n = len(self.invokers)
        spec = request.function
        best: Optional[int] = None
        best_key = None
        for index in range(n):
            invoker = self.invokers[index]
            warm = self._warm_count(invoker, spec)
            if warm <= 0 or invoker.outstanding >= self._threshold(invoker):
                continue
            key = (-warm, invoker.outstanding, index)
            if best_key is None or key < best_key:
                best, best_key = index, key
        if best is not None:
            return best
        # No routable warm holder: deterministic hash-ring overflow
        # (shared with HashOverflowBalancer).
        self.stats.spills += 1
        return self._ring_pick(self.invokers, _stable_hash(spec.name) % n)


#: Registry of balancer flavours by name.
BALANCERS: Dict[str, Type[LoadBalancer]] = {
    cls.name: cls
    for cls in (
        RoundRobinBalancer,
        LeastLoadedBalancer,
        HashOverflowBalancer,
        PowerOfDChoicesBalancer,
        LocalityBalancer,
    )
}


def balancer_names() -> List[str]:
    """Sorted names of every registered balancer flavour."""
    return sorted(BALANCERS)


def balancer_param_names(name: str) -> List[str]:
    """The constructor parameters balancer *name* declares (beyond the
    invoker list) — what a sweep may legitimately pass it."""
    return sorted(_declared_params(_balancer_class(name)))


def _balancer_class(name: str) -> Type[LoadBalancer]:
    cls = BALANCERS.get(name)
    if cls is None:
        raise ValueError(
            f"unknown balancer {name!r}; available: {', '.join(balancer_names())}"
        )
    return cls


def _declared_params(cls: Type[LoadBalancer]) -> Dict[str, inspect.Parameter]:
    """Constructor keyword parameters beyond ``self``/``invokers``."""
    parameters = dict(inspect.signature(cls.__init__).parameters)
    parameters.pop("self", None)
    parameters.pop("invokers", None)
    return parameters


class _ProbeInvoker:
    """Inert stand-in used to run constructor-time validation."""

    outstanding = 0


def validate_balancer_params(
    name: str, params: Optional[Mapping[str, Any]] = None
) -> Dict[str, Any]:
    """Validate balancer *name* and constructor *params*, returning the
    params merged over the constructor's declared defaults.

    Unknown names and parameters raise :class:`ValueError` listing what
    *is* available; value errors (``capacity_factor=0``, ``d=0``) surface
    from a probe construction, so a bad cluster configuration fails when
    the config is built, not minutes into a sweep.  ``seed`` is excluded
    from the merged defaults: it is injected at run time from the
    experiment's root seed unless the caller pinned it explicitly.
    """
    cls = _balancer_class(name)
    params = dict(params) if params else {}
    declared = _declared_params(cls)
    unknown = sorted(set(params) - set(declared))
    if unknown:
        valid = ", ".join(sorted(declared)) or "(none)"
        raise ValueError(
            f"unknown parameter(s) {unknown} for balancer {name!r}; "
            f"valid parameters: {valid}"
        )
    try:
        cls([_ProbeInvoker()], **params)  # value checks (raises ValueError)
    except TypeError as exc:
        # A constructor tripping over a wrong-typed value (e.g. comparing
        # str to int) must still surface as the validation error the
        # config layer and the CLI promise to handle.
        raise ValueError(
            f"invalid parameter value for balancer {name!r}: {exc}"
        ) from exc
    merged = {
        pname: parameter.default
        for pname, parameter in declared.items()
        if pname != "seed" and parameter.default is not inspect.Parameter.empty
    }
    merged.update(params)
    return merged


def make_balancer(
    name: str, invokers: Sequence, *, seed: Optional[int] = None, **kwargs
) -> LoadBalancer:
    """Instantiate the balancer registered under *name*.

    ``seed`` is forwarded only to balancers that declare a ``seed``
    parameter (the sampling ones) and only when the caller did not pass
    one in ``kwargs`` — so an experiment's root seed drives the sampling
    PRNG by default while an explicit ``seed`` balancer param pins it.
    """
    cls = _balancer_class(name)
    if seed is not None and "seed" in _declared_params(cls) and "seed" not in kwargs:
        kwargs = {**kwargs, "seed": seed}
    return cls(invokers, **kwargs)


def _stable_hash(name: str) -> int:
    """Process-independent 32-bit FNV-1a (Python's hash() is salted)."""
    value = 0x811C9DC5
    for byte in name.encode("utf-8"):
        value ^= byte
        value = (value * 0x01000193) & 0xFFFFFFFF
    return value
