"""The OpenWhisk controller's load-balancing role.

The paper does not modify the controller; its multi-node experiments use
the stock assignment of invocations to invokers.  We provide three
balancers:

* :class:`RoundRobinBalancer` — cyclic assignment;
* :class:`LeastLoadedBalancer` — fewest outstanding calls (ties by index);
* :class:`HashOverflowBalancer` — OpenWhisk's sharding-pool flavour: each
  function has a *home* invoker (hash of its name); when the home's
  outstanding work exceeds a capacity factor the call spills to the next
  invoker in a deterministic ring.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Protocol, Sequence, Type

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workload.generator import Request

__all__ = [
    "LoadBalancer",
    "RoundRobinBalancer",
    "LeastLoadedBalancer",
    "HashOverflowBalancer",
    "BALANCERS",
    "make_balancer",
]


class LoadBalancer:
    """Base class: picks an invoker index for each request.

    When given a ``list``, the balancer keeps the *reference*: an
    autoscaler may append invokers mid-run and they become routable
    immediately.
    """

    name = ""

    def __init__(self, invokers: Sequence) -> None:
        if not invokers:
            raise ValueError("need at least one invoker")
        self.invokers = invokers if isinstance(invokers, list) else list(invokers)

    def pick(self, request: "Request") -> int:
        raise NotImplementedError


class RoundRobinBalancer(LoadBalancer):
    name = "round-robin"

    def __init__(self, invokers: Sequence) -> None:
        super().__init__(invokers)
        self._next = 0

    def pick(self, request: "Request") -> int:
        index = self._next
        self._next = (self._next + 1) % len(self.invokers)
        return index


class LeastLoadedBalancer(LoadBalancer):
    name = "least-loaded"

    def pick(self, request: "Request") -> int:
        return min(
            range(len(self.invokers)), key=lambda i: (self.invokers[i].outstanding, i)
        )


class HashOverflowBalancer(LoadBalancer):
    """Home invoker by function-name hash, spill on overload.

    ``capacity_factor`` scales each node's nominal concurrency (its core
    count) into an outstanding-call threshold above which the balancer
    tries the next invoker on the ring; if every invoker is above its
    threshold the least-loaded one is used.
    """

    name = "hash-overflow"

    def __init__(self, invokers: Sequence, capacity_factor: float = 2.0) -> None:
        super().__init__(invokers)
        if capacity_factor <= 0:
            raise ValueError("capacity_factor must be positive")
        self.capacity_factor = capacity_factor

    def _threshold(self, invoker) -> float:
        return self.capacity_factor * invoker.config.cores

    def pick(self, request: "Request") -> int:
        n = len(self.invokers)
        home = _stable_hash(request.function.name) % n
        for step in range(n):
            index = (home + step) % n
            if self.invokers[index].outstanding < self._threshold(self.invokers[index]):
                return index
        return min(range(n), key=lambda i: (self.invokers[i].outstanding, i))


#: Registry of balancer flavours by name.
BALANCERS: Dict[str, Type[LoadBalancer]] = {
    cls.name: cls
    for cls in (RoundRobinBalancer, LeastLoadedBalancer, HashOverflowBalancer)
}


def make_balancer(name: str, invokers: Sequence, **kwargs) -> LoadBalancer:
    cls = BALANCERS.get(name)
    if cls is None:
        raise KeyError(f"unknown balancer {name!r}; available: {sorted(BALANCERS)}")
    return cls(invokers, **kwargs)


def _stable_hash(name: str) -> int:
    """Process-independent 32-bit FNV-1a (Python's hash() is salted)."""
    value = 0x811C9DC5
    for byte in name.encode("utf-8"):
        value ^= byte
        value = (value * 0x01000193) & 0xFFFFFFFF
    return value
