"""Client ↔ platform network/middleware latency model.

The paper's Table I measurements "include ca. 10 ms Kafka overhead"; we
split that into a request leg (client → NGINX → controller → Kafka →
invoker) and a response leg.  Latencies are deterministic by default to
keep experiment noise at zero (the paper likewise minimises network noise
by co-locating Gatling with the controller); optional jitter is available
for robustness testing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["NetworkModel"]


@dataclass
class NetworkModel:
    """Fixed-plus-jitter one-way latencies (seconds)."""

    request_latency_s: float = 0.005
    response_latency_s: float = 0.005
    jitter_s: float = 0.0
    rng: Optional[np.random.Generator] = None

    def __post_init__(self) -> None:
        if self.request_latency_s < 0 or self.response_latency_s < 0:
            raise ValueError("latencies must be non-negative")
        if self.jitter_s < 0:
            raise ValueError("jitter must be non-negative")
        if self.jitter_s > 0 and self.rng is None:
            raise ValueError("jitter requires an rng")

    def request_delay(self) -> float:
        """Latency of the client → invoker leg."""
        return self._with_jitter(self.request_latency_s)

    def response_delay(self) -> float:
        """Latency of the invoker → client leg."""
        return self._with_jitter(self.response_latency_s)

    @property
    def round_trip_s(self) -> float:
        return self.request_latency_s + self.response_latency_s

    def _with_jitter(self, base: float) -> float:
        if self.jitter_s <= 0:
            return base
        assert self.rng is not None
        return max(0.0, base + float(self.rng.normal(0.0, self.jitter_s)))
