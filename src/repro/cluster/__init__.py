"""Cluster layer: request routing from clients to worker nodes.

* :mod:`repro.cluster.network` — client ↔ platform latency (the ≈10 ms
  controller/Kafka overhead included in the paper's Table I);
* :mod:`repro.cluster.controller` — load balancers assigning calls to
  invokers (round-robin, least-loaded, OpenWhisk-like hash-with-overflow);
* :mod:`repro.cluster.platform` — the :class:`FaaSPlatform` façade that
  drives a scenario through the controller and invokers and collects
  client-side :class:`~repro.metrics.records.CallRecord`\\ s.
"""

from repro.cluster.controller import (
    BALANCERS,
    HashOverflowBalancer,
    LeastLoadedBalancer,
    LoadBalancer,
    RoundRobinBalancer,
    make_balancer,
)
from repro.cluster.network import NetworkModel
from repro.cluster.platform import FaaSPlatform

__all__ = [
    "BALANCERS",
    "FaaSPlatform",
    "HashOverflowBalancer",
    "LeastLoadedBalancer",
    "LoadBalancer",
    "NetworkModel",
    "RoundRobinBalancer",
    "make_balancer",
]
