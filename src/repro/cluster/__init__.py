"""Cluster layer: request routing from clients to worker nodes.

* :mod:`repro.cluster.network` — client ↔ platform latency (the ≈10 ms
  controller/Kafka overhead included in the paper's Table I);
* :mod:`repro.cluster.controller` — load balancers assigning calls to
  invokers (round-robin, least-loaded, OpenWhisk-like hash-with-overflow,
  power-of-d sampling, warm-container locality) plus their routing
  statistics;
* :mod:`repro.cluster.spec` — :class:`ClusterSpec`, the hashable fleet
  topology carried by experiment configs (node count, per-node
  overrides, balancer flavour + kwargs, optional autoscaler);
* :mod:`repro.cluster.autoscaler` — the reactive horizontal autoscaler;
* :mod:`repro.cluster.platform` — the :class:`FaaSPlatform` façade that
  drives a scenario through the controller and invokers and collects
  client-side :class:`~repro.metrics.records.CallRecord`\\ s.
"""

from repro.cluster.autoscaler import AutoscalerConfig, ReactiveAutoscaler
from repro.cluster.controller import (
    BALANCERS,
    BalancerStats,
    HashOverflowBalancer,
    LeastLoadedBalancer,
    LoadBalancer,
    LocalityBalancer,
    PowerOfDChoicesBalancer,
    RoundRobinBalancer,
    balancer_names,
    make_balancer,
    validate_balancer_params,
)
from repro.cluster.network import NetworkModel
from repro.cluster.platform import FaaSPlatform
from repro.cluster.spec import DEFAULT_CLUSTER, ClusterSpec

__all__ = [
    "AutoscalerConfig",
    "BALANCERS",
    "BalancerStats",
    "ClusterSpec",
    "DEFAULT_CLUSTER",
    "FaaSPlatform",
    "HashOverflowBalancer",
    "LeastLoadedBalancer",
    "LoadBalancer",
    "LocalityBalancer",
    "NetworkModel",
    "PowerOfDChoicesBalancer",
    "ReactiveAutoscaler",
    "RoundRobinBalancer",
    "balancer_names",
    "make_balancer",
    "validate_balancer_params",
]
