"""Horizontal autoscaling — the alternative the paper argues against.

The paper's introduction motivates node-level scheduling by the cost of
the obvious alternative: horizontally scaling the cluster, which "takes
at least dozens of seconds" for a new node plus seconds more to warm its
containers, so peaks must instead be absorbed by over-provisioning.
This module makes that argument quantitative: a reactive autoscaler adds
worker nodes when outstanding load crosses a threshold, each arriving
after a provisioning delay — letting users compare

* baseline + autoscaler (the status quo),
* our scheduling policies without scaling (the paper's proposal),

under the same burst.  See ``examples``/benchmarks ``ablations`` usage.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Union

from repro.node.baseline import BaselineInvoker
from repro.node.invoker import Invoker
from repro.scheduling.estimator import RuntimeEstimator
from repro.workload.functions import sebs_catalog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment
    from repro.node.config import NodeConfig

__all__ = ["AutoscalerConfig", "ReactiveAutoscaler"]

AnyInvoker = Union[Invoker, BaselineInvoker]


@dataclass(frozen=True)
class AutoscalerConfig:
    """Reactive scale-out policy.

    Attributes
    ----------
    max_nodes:
        Fleet-size ceiling (including the initial nodes).
    provisioning_delay_s:
        Boot time of a fresh node — "dozens of seconds" (paper Sect. I);
        the default models a fast 30 s VM boot.
    scale_out_outstanding_per_core:
        Add a node when total outstanding calls exceed this many per
        currently-running core (a CPU-utilisation-proxy trigger).
    check_interval_s:
        Control-loop period.
    warm_new_nodes:
        Whether a freshly-provisioned node warms containers before
        serving (costs extra seconds but avoids a cold-start storm).
    warmup_delay_s:
        Container warm-up time on the new node when ``warm_new_nodes``.
    """

    max_nodes: int = 4
    provisioning_delay_s: float = 30.0
    scale_out_outstanding_per_core: float = 2.0
    check_interval_s: float = 1.0
    warm_new_nodes: bool = True
    warmup_delay_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_nodes < 1:
            raise ValueError("max_nodes must be >= 1")
        if self.provisioning_delay_s < 0 or self.warmup_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.scale_out_outstanding_per_core <= 0:
            raise ValueError("scale_out_outstanding_per_core must be positive")
        if self.check_interval_s <= 0:
            raise ValueError("check_interval_s must be positive")


class ReactiveAutoscaler:
    """Adds worker nodes to a platform while a burst is in flight.

    The autoscaler owns a *factory* for new invokers and appends them to
    the (live) invoker list shared with the platform's load balancer —
    balancers read ``self.invokers`` on every pick, so new nodes start
    receiving calls the moment they are ready.
    """

    def __init__(
        self,
        env: "Environment",
        invokers: List[AnyInvoker],
        node_config: "NodeConfig",
        config: Optional[AutoscalerConfig] = None,
        factory: Optional[Callable[[int], AnyInvoker]] = None,
    ) -> None:
        self.env = env
        self.invokers = invokers
        self.node_config = node_config
        self.config = config if config is not None else AutoscalerConfig()
        self._factory = factory if factory is not None else self._default_factory
        #: (sim time, new fleet size) for every completed scale-out.
        self.scale_events: List[tuple[float, int]] = []
        self._provisioning = 0
        self._stopped = False
        self._process = env.process(self._control_loop())

    def stop(self) -> None:
        """Halt the control loop (e.g. once a scenario has finished)."""
        self._stopped = True

    # ------------------------------------------------------------------
    @property
    def fleet_size(self) -> int:
        return len(self.invokers)

    def _default_factory(self, index: int) -> AnyInvoker:
        """Clone the first node's setup for a scaled-out node.

        The reference policy's estimator settings (window, horizon) carry
        over, and constructor parameters are recovered by signature
        introspection for policies that store each parameter under an
        attribute of the same name (all built-ins do).  Callers whose
        policies hold richer construction state should pass an explicit
        ``factory`` — the experiment runner does, rebuilding from its
        config's ``policy``/``policy_params``.
        """
        reference = self.invokers[0]
        if reference.is_baseline:
            return BaselineInvoker(self.env, self.node_config, name=f"scaled-{index}")
        policy = reference.policy
        estimator = RuntimeEstimator(
            window=policy.estimator.window,
            frequency_horizon=policy.estimator.frequency_horizon,
        )
        kwargs = {}
        parameters = list(inspect.signature(type(policy).__init__).parameters)[2:]
        for name in parameters:  # beyond (self, estimator)
            if hasattr(policy, name):
                kwargs[name] = getattr(policy, name)
        return Invoker(
            self.env,
            self.node_config,
            policy=type(policy)(estimator, **kwargs),
            name=f"scaled-{index}",
        )

    def _should_scale_out(self) -> bool:
        if self.fleet_size + self._provisioning >= self.config.max_nodes:
            return False
        outstanding = sum(inv.outstanding for inv in self.invokers)
        cores = sum(inv.config.cores for inv in self.invokers)
        return outstanding > self.config.scale_out_outstanding_per_core * cores

    def _control_loop(self):
        while not self._stopped:
            yield self.env.timeout(self.config.check_interval_s)
            if self._should_scale_out():
                self._provisioning += 1
                self.env.process(self._provision())

    def _provision(self):
        yield self.env.timeout(self.config.provisioning_delay_s)
        invoker = self._factory(self.fleet_size)
        if self.config.warm_new_nodes:
            yield self.env.timeout(self.config.warmup_delay_s)
            invoker.warm_up(sebs_catalog())
        self._provisioning -= 1
        self.invokers.append(invoker)
        self.scale_events.append((self.env.now, self.fleet_size))
