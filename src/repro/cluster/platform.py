"""The FaaS platform façade: clients → controller → invokers → responses.

Mirrors the paper's Fig. 1 request flow: Gatling (the client generator)
sends blocking HTTP requests through NGINX/controller/Kafka to an
invoker's action containers; the connection stays open until the result
returns.  :class:`FaaSPlatform` drives a workload through that pipeline
and produces client-side :class:`~repro.metrics.records.CallRecord`\\ s.

Two workload shapes are supported:

* a materialised :class:`~repro.workload.generator.BurstScenario` — every
  client process is spawned up front (the exact historical code path the
  golden fingerprints pin);
* a lazy :class:`~repro.workload.generator.RequestStream` — a single
  injector process walks the arrival stream and spawns each client at its
  release time, so peak memory tracks the *concurrency* of the workload,
  not its length (the million-invocation streaming path).

Record retention is orthogonal: ``retain_records=False`` skips the
O(invocations) record list, and a ``collector``
(:class:`~repro.metrics.streaming.MetricsAccumulator`) folds each record
into constant-size state the moment its response reaches the client.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Union

from repro.cluster.controller import LoadBalancer, LeastLoadedBalancer
from repro.cluster.network import NetworkModel
from repro.metrics.records import CallRecord
from repro.sim.events import AnyOf, Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.failures.rng import FailureRng
    from repro.failures.spec import FailureSpec
    from repro.sim.core import Environment
    from repro.metrics.streaming import MetricsAccumulator
    from repro.node.baseline import BaselineInvoker
    from repro.node.invoker import Invoker, NodeCallInfo
    from repro.workload.generator import BurstScenario, Request, RequestStream

__all__ = ["FaaSPlatform"]

AnyInvoker = Union["Invoker", "BaselineInvoker"]
AnyWorkload = Union["BurstScenario", "RequestStream"]


class FaaSPlatform:
    """One controller, one or more invokers, and a client generator."""

    #: Grace period (seconds) granted after the last response for trailing
    #: background activity (container pauses, removals) to settle.
    DRAIN_GRACE_S = 30.0

    def __init__(
        self,
        env: "Environment",
        invokers: Sequence[AnyInvoker],
        balancer: Optional[LoadBalancer] = None,
        network: Optional[NetworkModel] = None,
        failures: Optional["FailureSpec"] = None,
        failure_rng: Optional["FailureRng"] = None,
    ) -> None:
        if not invokers:
            raise ValueError("need at least one invoker")
        self.env = env
        # Keep the caller's (possibly live) list: an autoscaler may append
        # invokers while a scenario is in flight.
        self.invokers = invokers if isinstance(invokers, list) else list(invokers)
        self.balancer = balancer if balancer is not None else LeastLoadedBalancer(self.invokers)
        self.network = network if network is not None else NetworkModel()
        if failures is not None and not failures.is_none and failure_rng is None:
            raise ValueError("failure injection requires a FailureRng")
        self.failures = None if failures is not None and failures.is_none else failures
        self._failure_rng = failure_rng
        #: The client coroutine: the exact historical generator on the
        #: failure-free path, the retrying client under injection.
        self._client = (
            self._client_call if self.failures is None else self._client_call_failures
        )
        self.records: List[CallRecord] = []
        #: Client-visible calls completed so far (exact, even when records
        #: are not retained).
        self.completed_count = 0
        self._retain_records = True
        self._collector: Optional["MetricsAccumulator"] = None
        self._pending = 0
        self._injecting = False
        self._all_done: Optional[Event] = None

    # ------------------------------------------------------------------
    def run_scenario(
        self,
        scenario: AnyWorkload,
        *,
        retain_records: bool = True,
        collector: Optional["MetricsAccumulator"] = None,
    ) -> List[CallRecord]:
        """Drive *scenario* to completion.

        A sized workload (:class:`BurstScenario`) takes the eager path:
        every client process is spawned up front, exactly as the platform
        always has.  A workload without ``__len__``
        (:class:`RequestStream`) takes the lazy path: one injector process
        spawns each client at its release time.

        ``collector.add(record)`` is invoked for every completed call the
        moment its response reaches the client (completion order);
        ``retain_records=False`` additionally skips the O(invocations)
        ``self.records`` list, and the returned list is then empty —
        read the collector instead.
        """
        self._retain_records = retain_records
        self._collector = collector
        if hasattr(scenario, "__len__"):
            if not len(scenario):
                return []
            self._pending = len(scenario)
            self._injecting = False
            self._all_done = Event(self.env)
            for request in scenario:
                self.env.process(self._client(request))
        else:
            self._pending = 0
            self._injecting = True
            self._all_done = Event(self.env)
            self.env.process(self._inject(scenario))
        self.env.run(until=self._all_done)
        # Drain trailing background activity (container pauses etc.) so
        # back-to-back scenarios start from a quiet node.  Bounded, because
        # long-lived control loops (e.g. an autoscaler) keep the calendar
        # populated forever.
        self.env.run(until=self.env.now + self.DRAIN_GRACE_S)
        self.records.sort(key=lambda r: r.rid)
        return self.records

    # ------------------------------------------------------------------
    def _inject(self, scenario: "RequestStream"):
        """Lazy injection: walk the arrival stream on simulation time,
        spawning one client process per request at its release moment.
        Peak memory is the in-flight call count, never the stream length."""
        env = self.env
        last_release = float("-inf")
        for request in scenario.arrivals():
            release = request.release_time
            if release < last_release:
                raise ValueError(
                    f"RequestStream {getattr(scenario, 'label', '')!r} "
                    f"yielded request rid={request.rid} at release time "
                    f"{release!r} after {last_release!r}; streams must "
                    f"yield in non-decreasing release-time order (see "
                    f"RequestStream.arrivals)"
                )
            last_release = release
            if release > env.now:
                yield env.timeout(release - env.now)
            self._pending += 1
            env.process(self._client(request))
        self._injecting = False
        if self._pending == 0 and self._all_done is not None:
            self._all_done.succeed()

    # ------------------------------------------------------------------
    def _client_call(self, request: "Request"):
        env = self.env
        if request.release_time > env.now:
            yield env.timeout(request.release_time - env.now)
        # Request leg: client -> controller/Kafka -> invoker.
        yield env.timeout(self.network.request_delay())
        index = self.balancer.pick(request)
        stats = getattr(self.balancer, "stats", None)
        if stats is not None:  # duck-typed custom balancers may omit it
            stats.picks += 1
        info = yield self.invokers[index].submit(request)
        # Response leg: invoker -> client.
        yield env.timeout(self.network.response_delay())
        record = CallRecord.from_node_info(info, env.now)
        self._finish(record)

    def _finish(self, record: CallRecord) -> None:
        if self._collector is not None:
            self._collector.add(record)
        if self._retain_records:
            self.records.append(record)
        self.completed_count += 1
        self._pending -= 1
        if self._pending == 0 and not self._injecting and self._all_done is not None:
            self._all_done.succeed()

    # ------------------------------------------------------------------
    def _client_call_failures(self, request: "Request"):
        """The retrying client (failure injection only): per-attempt
        faults, an optional client-side timeout, and exponential-backoff
        retries up to the spec's attempt budget (docs/FAILURES.md)."""
        env = self.env
        spec = self.failures
        assert spec is not None and self._failure_rng is not None
        if request.release_time > env.now:
            yield env.timeout(request.release_time - env.now)
        attempt = 0
        info: Optional["NodeCallInfo"] = None
        outcome = "ok"
        while True:
            attempt += 1
            # Request leg: client -> controller/Kafka -> invoker.
            yield env.timeout(self.network.request_delay())
            fault = self._failure_rng.attempt_fault(spec, request.rid, attempt)
            index = self.balancer.pick(request)
            stats = getattr(self.balancer, "stats", None)
            if stats is not None:  # duck-typed custom balancers may omit it
                stats.picks += 1
            done = self.invokers[index].submit(request, fault)
            if spec.timeout_s > 0.0:
                yield AnyOf(env, [done, env.timeout(spec.timeout_s)])
                if done.triggered:
                    info = done.value
                    attempt_outcome = info.outcome
                else:
                    # Abandon the attempt: the node finishes (or crashes)
                    # the orphan later; its late response is discarded.
                    info = None
                    attempt_outcome = "timeout"
            else:
                info = yield done
                attempt_outcome = info.outcome
            if attempt_outcome == "ok":
                break
            if attempt >= spec.max_attempts:
                outcome = "gave-up"
                break
            # Migrated calls (node crash under crash_inflight="migrate")
            # re-route immediately; every other retry backs off.
            if not (
                attempt_outcome == "node-crash" and spec.crash_inflight == "migrate"
            ):
                delay = spec.backoff_base_s * spec.backoff_factor ** (attempt - 1)
                if delay > 0:
                    yield env.timeout(delay)
        if outcome == "ok":
            # Response leg: invoker -> client.
            yield env.timeout(self.network.response_delay())
            record = CallRecord.from_node_info(
                info, env.now, attempts=attempt, outcome=outcome
            )
        elif info is not None:
            # Gave up on a failed (not timed-out) final attempt: the node
            # timeline of that attempt is real; keep it.
            record = CallRecord.from_node_info(
                info, env.now, attempts=attempt, outcome=outcome
            )
        else:
            # Every attempt timed out: no node timeline ever came back.
            now = env.now
            record = CallRecord(
                rid=request.rid,
                function_name=request.function.name,
                invoker="",
                release_time=request.release_time,
                received_at=now,
                dispatched_at=now,
                exec_start=now,
                exec_end=now,
                completed_at=now,
                service_time=request.service_time,
                reference_response_time=request.function.median_response_time,
                cold_start=False,
                start_kind="none",
                attempts=attempt,
                outcome=outcome,
            )
        self._finish(record)
