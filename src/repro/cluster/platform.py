"""The FaaS platform façade: clients → controller → invokers → responses.

Mirrors the paper's Fig. 1 request flow: Gatling (the client generator)
sends blocking HTTP requests through NGINX/controller/Kafka to an
invoker's action containers; the connection stays open until the result
returns.  :class:`FaaSPlatform` drives a workload through that pipeline
and produces client-side :class:`~repro.metrics.records.CallRecord`\\ s.

Two workload shapes are supported:

* a materialised :class:`~repro.workload.generator.BurstScenario` — every
  client process is spawned up front (the exact historical code path the
  golden fingerprints pin);
* a lazy :class:`~repro.workload.generator.RequestStream` — a single
  injector process walks the arrival stream and spawns each client at its
  release time, so peak memory tracks the *concurrency* of the workload,
  not its length (the million-invocation streaming path).

Record retention is orthogonal: ``retain_records=False`` skips the
O(invocations) record list, and a ``collector``
(:class:`~repro.metrics.streaming.MetricsAccumulator`) folds each record
into constant-size state the moment its response reaches the client.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Union

from repro.cluster.controller import LoadBalancer, LeastLoadedBalancer
from repro.cluster.network import NetworkModel
from repro.metrics.records import CallRecord
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment
    from repro.metrics.streaming import MetricsAccumulator
    from repro.node.baseline import BaselineInvoker
    from repro.node.invoker import Invoker
    from repro.workload.generator import BurstScenario, Request, RequestStream

__all__ = ["FaaSPlatform"]

AnyInvoker = Union["Invoker", "BaselineInvoker"]
AnyWorkload = Union["BurstScenario", "RequestStream"]


class FaaSPlatform:
    """One controller, one or more invokers, and a client generator."""

    #: Grace period (seconds) granted after the last response for trailing
    #: background activity (container pauses, removals) to settle.
    DRAIN_GRACE_S = 30.0

    def __init__(
        self,
        env: "Environment",
        invokers: Sequence[AnyInvoker],
        balancer: Optional[LoadBalancer] = None,
        network: Optional[NetworkModel] = None,
    ) -> None:
        if not invokers:
            raise ValueError("need at least one invoker")
        self.env = env
        # Keep the caller's (possibly live) list: an autoscaler may append
        # invokers while a scenario is in flight.
        self.invokers = invokers if isinstance(invokers, list) else list(invokers)
        self.balancer = balancer if balancer is not None else LeastLoadedBalancer(self.invokers)
        self.network = network if network is not None else NetworkModel()
        self.records: List[CallRecord] = []
        #: Client-visible calls completed so far (exact, even when records
        #: are not retained).
        self.completed_count = 0
        self._retain_records = True
        self._collector: Optional["MetricsAccumulator"] = None
        self._pending = 0
        self._injecting = False
        self._all_done: Optional[Event] = None

    # ------------------------------------------------------------------
    def run_scenario(
        self,
        scenario: AnyWorkload,
        *,
        retain_records: bool = True,
        collector: Optional["MetricsAccumulator"] = None,
    ) -> List[CallRecord]:
        """Drive *scenario* to completion.

        A sized workload (:class:`BurstScenario`) takes the eager path:
        every client process is spawned up front, exactly as the platform
        always has.  A workload without ``__len__``
        (:class:`RequestStream`) takes the lazy path: one injector process
        spawns each client at its release time.

        ``collector.add(record)`` is invoked for every completed call the
        moment its response reaches the client (completion order);
        ``retain_records=False`` additionally skips the O(invocations)
        ``self.records`` list, and the returned list is then empty —
        read the collector instead.
        """
        self._retain_records = retain_records
        self._collector = collector
        if hasattr(scenario, "__len__"):
            if not len(scenario):
                return []
            self._pending = len(scenario)
            self._injecting = False
            self._all_done = Event(self.env)
            for request in scenario:
                self.env.process(self._client_call(request))
        else:
            self._pending = 0
            self._injecting = True
            self._all_done = Event(self.env)
            self.env.process(self._inject(scenario))
        self.env.run(until=self._all_done)
        # Drain trailing background activity (container pauses etc.) so
        # back-to-back scenarios start from a quiet node.  Bounded, because
        # long-lived control loops (e.g. an autoscaler) keep the calendar
        # populated forever.
        self.env.run(until=self.env.now + self.DRAIN_GRACE_S)
        self.records.sort(key=lambda r: r.rid)
        return self.records

    # ------------------------------------------------------------------
    def _inject(self, scenario: "RequestStream"):
        """Lazy injection: walk the arrival stream on simulation time,
        spawning one client process per request at its release moment.
        Peak memory is the in-flight call count, never the stream length."""
        env = self.env
        last_release = float("-inf")
        for request in scenario.arrivals():
            release = request.release_time
            if release < last_release:
                raise ValueError(
                    f"RequestStream {getattr(scenario, 'label', '')!r} "
                    f"yielded request rid={request.rid} at release time "
                    f"{release!r} after {last_release!r}; streams must "
                    f"yield in non-decreasing release-time order (see "
                    f"RequestStream.arrivals)"
                )
            last_release = release
            if release > env.now:
                yield env.timeout(release - env.now)
            self._pending += 1
            env.process(self._client_call(request))
        self._injecting = False
        if self._pending == 0 and self._all_done is not None:
            self._all_done.succeed()

    # ------------------------------------------------------------------
    def _client_call(self, request: "Request"):
        env = self.env
        if request.release_time > env.now:
            yield env.timeout(request.release_time - env.now)
        # Request leg: client -> controller/Kafka -> invoker.
        yield env.timeout(self.network.request_delay())
        index = self.balancer.pick(request)
        stats = getattr(self.balancer, "stats", None)
        if stats is not None:  # duck-typed custom balancers may omit it
            stats.picks += 1
        info = yield self.invokers[index].submit(request)
        # Response leg: invoker -> client.
        yield env.timeout(self.network.response_delay())
        record = CallRecord.from_node_info(info, env.now)
        if self._collector is not None:
            self._collector.add(record)
        if self._retain_records:
            self.records.append(record)
        self.completed_count += 1
        self._pending -= 1
        if self._pending == 0 and not self._injecting and self._all_done is not None:
            self._all_done.succeed()
