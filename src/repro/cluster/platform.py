"""The FaaS platform façade: clients → controller → invokers → responses.

Mirrors the paper's Fig. 1 request flow: Gatling (the client generator)
sends blocking HTTP requests through NGINX/controller/Kafka to an
invoker's action containers; the connection stays open until the result
returns.  :class:`FaaSPlatform` drives a
:class:`~repro.workload.generator.BurstScenario` through that pipeline
and produces client-side :class:`~repro.metrics.records.CallRecord`\\ s.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Union

from repro.cluster.controller import LoadBalancer, LeastLoadedBalancer
from repro.cluster.network import NetworkModel
from repro.metrics.records import CallRecord
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment
    from repro.node.baseline import BaselineInvoker
    from repro.node.invoker import Invoker
    from repro.workload.generator import BurstScenario, Request

__all__ = ["FaaSPlatform"]

AnyInvoker = Union["Invoker", "BaselineInvoker"]


class FaaSPlatform:
    """One controller, one or more invokers, and a client generator."""

    #: Grace period (seconds) granted after the last response for trailing
    #: background activity (container pauses, removals) to settle.
    DRAIN_GRACE_S = 30.0

    def __init__(
        self,
        env: "Environment",
        invokers: Sequence[AnyInvoker],
        balancer: Optional[LoadBalancer] = None,
        network: Optional[NetworkModel] = None,
    ) -> None:
        if not invokers:
            raise ValueError("need at least one invoker")
        self.env = env
        # Keep the caller's (possibly live) list: an autoscaler may append
        # invokers while a scenario is in flight.
        self.invokers = invokers if isinstance(invokers, list) else list(invokers)
        self.balancer = balancer if balancer is not None else LeastLoadedBalancer(self.invokers)
        self.network = network if network is not None else NetworkModel()
        self.records: List[CallRecord] = []
        self._pending = 0
        self._all_done: Optional[Event] = None

    # ------------------------------------------------------------------
    def run_scenario(self, scenario: "BurstScenario") -> List[CallRecord]:
        """Inject every request of *scenario*, run to completion, and
        return the call records sorted by request id."""
        if not len(scenario):
            return []
        self._pending = len(scenario)
        self._all_done = Event(self.env)
        for request in scenario:
            self.env.process(self._client_call(request))
        self.env.run(until=self._all_done)
        # Drain trailing background activity (container pauses etc.) so
        # back-to-back scenarios start from a quiet node.  Bounded, because
        # long-lived control loops (e.g. an autoscaler) keep the calendar
        # populated forever.
        self.env.run(until=self.env.now + self.DRAIN_GRACE_S)
        self.records.sort(key=lambda r: r.rid)
        return self.records

    # ------------------------------------------------------------------
    def _client_call(self, request: "Request"):
        env = self.env
        if request.release_time > env.now:
            yield env.timeout(request.release_time - env.now)
        # Request leg: client -> controller/Kafka -> invoker.
        yield env.timeout(self.network.request_delay())
        index = self.balancer.pick(request)
        stats = getattr(self.balancer, "stats", None)
        if stats is not None:  # duck-typed custom balancers may omit it
            stats.picks += 1
        info = yield self.invokers[index].submit(request)
        # Response leg: invoker -> client.
        yield env.timeout(self.network.response_delay())
        self.records.append(CallRecord.from_node_info(info, env.now))
        self._pending -= 1
        if self._pending == 0 and self._all_done is not None:
            self._all_done.succeed()
