"""Failure injection as experiment configuration.

:class:`FailureSpec` makes the fault dimension a first-class, hashable,
JSON-serializable part of an experiment's identity: node crash/recovery
processes, a per-attempt container-kill hazard, straggler slowdowns, and
a per-invocation timeout with an exponential-backoff retry policy.  It is
carried by :class:`~repro.experiments.config.ExperimentConfig`, validated
at construction (a typo fails before any simulation time is spent),
folded into the result-cache fingerprint, and swept by
:class:`~repro.experiments.grid.GridSpec` like any other grid dimension.

The default :meth:`FailureSpec.none` spec preserves the exact historical
failure-free code path — the 20 golden fingerprints are byte-identical
under it.  Every injected fault is driven by a dedicated seeded RNG
stream (see :mod:`repro.failures.rng`), independent of the workload
streams, so runs stay deterministic and serial-vs-parallel bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Mapping, Sequence, Tuple, Union

__all__ = ["FailureSpec", "FAILURE_NONE", "CRASH_INFLIGHT_MODES"]

ParamsLike = Union[Mapping[str, Any], Sequence[Tuple[str, Any]], None]

#: What happens to calls a crashing node is holding (queued or in flight):
#: ``"fail"`` counts a failed attempt and retries with backoff;
#: ``"migrate"`` re-routes immediately (still consuming an attempt).
CRASH_INFLIGHT_MODES = ("fail", "migrate")


@dataclass(frozen=True)
class FailureSpec:
    """The fault regime one experiment runs under.

    Attributes
    ----------
    node_crash_rate:
        Mean crashes per second per node (exponential gaps).  A crashed
        node drops out of the balancer live-list and its queued/in-flight
        calls fail per ``crash_inflight``.  The last live node never
        crashes (the platform always stays reachable), so single-node
        topologies see no node crashes.
    node_recovery_s:
        Seconds a crashed node stays down before rejoining the live-list
        at its original roster position.
    crash_inflight:
        ``"fail"`` (failed attempt, retried with backoff) or
        ``"migrate"`` (immediate backoff-free re-route, still consuming
        an attempt) for calls dropped by a crash.
    container_kill_rate:
        Per-attempt probability that the container dies mid-execution;
        the attempt burns a uniform fraction of its work, then fails.
    straggler_prob:
        Per-attempt probability the attempt runs on a degraded container.
    straggler_factor:
        Work multiplier (>= 1) applied to straggler attempts.
    timeout_s:
        Client-side per-attempt wall-clock timeout; ``0`` disables.  A
        timed-out attempt is abandoned (it runs to completion on the node
        but its response is discarded) and retried.
    max_attempts:
        Total attempts per call (first try included); an exhausted call
        is recorded with outcome ``"gave-up"``.
    backoff_base_s:
        Delay before the first retry; retry *k* waits
        ``backoff_base_s * backoff_factor**(k-1)``.
    backoff_factor:
        Exponential backoff multiplier (>= 1).
    """

    node_crash_rate: float = 0.0
    node_recovery_s: float = 30.0
    crash_inflight: str = "fail"
    container_kill_rate: float = 0.0
    straggler_prob: float = 0.0
    straggler_factor: float = 4.0
    timeout_s: float = 0.0
    max_attempts: int = 3
    backoff_base_s: float = 0.5
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        # Canonical numeric types first, so equal specs hash (and
        # fingerprint) identically however they were spelled.
        for field in fields(self):
            if field.name == "crash_inflight":
                continue
            value = getattr(self, field.name)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(
                    f"failure parameter {field.name!r} must be a number, "
                    f"got {value!r}"
                )
            if field.name == "max_attempts":
                if value != int(value):
                    raise ValueError(f"max_attempts must be an integer, got {value!r}")
                object.__setattr__(self, field.name, int(value))
            else:
                object.__setattr__(self, field.name, float(value))
        for name in ("node_crash_rate", "node_recovery_s", "timeout_s", "backoff_base_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)!r}")
        for name in ("container_kill_rate", "straggler_prob"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ValueError(
                    f"{name} is a probability and must be in [0, 1], got "
                    f"{getattr(self, name)!r}"
                )
        for name in ("straggler_factor", "backoff_factor"):
            if getattr(self, name) < 1.0:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)!r}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts!r}")
        if self.crash_inflight not in CRASH_INFLIGHT_MODES:
            raise ValueError(
                f"crash_inflight must be one of {CRASH_INFLIGHT_MODES}, got "
                f"{self.crash_inflight!r}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def none(cls) -> "FailureSpec":
        """The failure-free regime (the exact historical code path)."""
        return FAILURE_NONE

    @classmethod
    def from_params(cls, params: ParamsLike) -> "FailureSpec":
        """Build a spec from ``(name, value)`` pairs or a mapping (the
        CLI's ``--failure-param`` form), rejecting unknown names."""
        if not params:
            return FAILURE_NONE
        items = params.items() if isinstance(params, Mapping) else params
        supplied = {str(name): value for name, value in items}
        valid = {field.name for field in fields(cls)}
        unknown = sorted(set(supplied) - valid)
        if unknown:
            raise ValueError(
                f"unknown failure parameter(s) {unknown}; valid: "
                f"{', '.join(sorted(valid))}"
            )
        return cls(**supplied)

    @property
    def is_none(self) -> bool:
        """True for the failure-free default (historical path)."""
        return self == FAILURE_NONE

    @property
    def has_node_crashes(self) -> bool:
        return self.node_crash_rate > 0.0

    @property
    def has_attempt_faults(self) -> bool:
        return self.container_kill_rate > 0.0 or self.straggler_prob > 0.0

    def with_(self, **changes: Any) -> "FailureSpec":
        """A copy with fields replaced (ergonomic sweep helper)."""
        return replace(self, **changes)

    def label_suffix(self) -> str:
        """Compact label fragment; empty for the failure-free default."""
        if self.is_none:
            return ""
        parts = []
        for field in fields(self):
            value = getattr(self, field.name)
            if value != getattr(FAILURE_NONE, field.name):
                parts.append(f"{field.name}={value}")
        return " failures[" + " ".join(parts) + "]"

    # ------------------------------------------------------------------
    # JSON form (cache fingerprints and on-disk results)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-compatible dict of every field (the fingerprint covers
        defaults, so changing a default invalidates the cache)."""
        return {field.name: getattr(self, field.name) for field in fields(self)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FailureSpec":
        """Inverse of :meth:`to_dict` (construction re-validates)."""
        return cls(**dict(payload))


#: The failure-free regime (shared instance; FailureSpec is frozen).
FAILURE_NONE = FailureSpec()
