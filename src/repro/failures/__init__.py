"""Failure injection: spec, seeded fault streams, and the node-crash
injector (see docs/FAILURES.md)."""

from repro.failures.injector import FailureInjector
from repro.failures.rng import AttemptFault, FailureRng
from repro.failures.spec import CRASH_INFLIGHT_MODES, FAILURE_NONE, FailureSpec

__all__ = [
    "AttemptFault",
    "CRASH_INFLIGHT_MODES",
    "FAILURE_NONE",
    "FailureInjector",
    "FailureRng",
    "FailureSpec",
]
