"""Dedicated seeded randomness for failure injection.

Two properties matter:

1. **Independence from the workload.**  Fault draws must not perturb the
   arrival/service streams — an experiment with failures sees the *same*
   workload as one without.  Failure streams therefore derive from the
   experiment seed through their own :class:`numpy.random.SeedSequence`
   spawn keys (the same FNV-keyed scheme as
   :class:`~repro.sim.rng.RngRegistry`), never from the registry streams.
2. **Draw-order independence.**  Event interleavings differ between
   otherwise-identical runs only in wall-clock, never in simulated order,
   but retries make the *number* of draws per call state-dependent.  Each
   ``(rid, attempt)`` pair therefore gets its own derived generator: what
   one attempt draws can never shift another call's faults, which is what
   keeps serial and ``jobs=N`` sweeps bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.sim.rng import _stable_hash

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.failures.spec import FailureSpec

__all__ = ["AttemptFault", "FailureRng"]

_ATTEMPT_KEY = _stable_hash("failures:attempt")
_NODE_KEY = _stable_hash("failures:node")


@dataclass(frozen=True)
class AttemptFault:
    """The faults one attempt of one call is subjected to.

    ``straggler`` multiplies the attempt's I/O and CPU work (degraded
    container); ``kill_fraction`` — when not ``None`` — is the fraction
    of that (already scaled) work the container burns before dying, after
    which the attempt fails with outcome ``"container-kill"``.
    """

    straggler: float = 1.0
    kill_fraction: Optional[float] = None

    @property
    def kills(self) -> bool:
        return self.kill_fraction is not None

    def scale(self, work: float) -> float:
        """The work this attempt actually executes."""
        scaled = work * self.straggler
        if self.kill_fraction is not None:
            scaled *= self.kill_fraction
        return scaled


class FailureRng:
    """Derives the per-attempt and per-node failure streams for one run."""

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)

    def attempt_fault(
        self, spec: "FailureSpec", rid: int, attempt: int
    ) -> Optional[AttemptFault]:
        """The fault (or ``None``) for attempt *attempt* of call *rid*.

        Pure function of ``(seed, rid, attempt)`` — a fresh generator per
        pair, with a fixed draw order (kill decision, kill fraction,
        straggler decision) so adding one hazard never reshuffles another.
        """
        if not spec.has_attempt_faults:
            return None
        seq = np.random.SeedSequence(
            entropy=self.seed, spawn_key=(_ATTEMPT_KEY, int(rid), int(attempt))
        )
        gen = np.random.Generator(np.random.PCG64(seq))
        kill_fraction: Optional[float] = None
        if spec.container_kill_rate > 0.0 and gen.random() < spec.container_kill_rate:
            kill_fraction = float(gen.random())
        straggler = 1.0
        if spec.straggler_prob > 0.0 and gen.random() < spec.straggler_prob:
            straggler = spec.straggler_factor
        if kill_fraction is None and straggler == 1.0:
            return None
        return AttemptFault(straggler=straggler, kill_fraction=kill_fraction)

    def node_stream(self, ordinal: int) -> np.random.Generator:
        """The crash-schedule generator for roster node *ordinal*."""
        seq = np.random.SeedSequence(
            entropy=self.seed, spawn_key=(_NODE_KEY, int(ordinal))
        )
        return np.random.Generator(np.random.PCG64(seq))
