"""Node crash/recovery processes (graceful degradation).

The :class:`FailureInjector` owns one simulation process per *roster*
node (the nodes the platform started with; autoscaled additions are not
crashed).  Each process draws exponential gaps from its node's dedicated
failure stream, crashes the node — removing it from the shared balancer
live-list and failing its queued/in-flight calls with outcome
``"node-crash"`` — and re-inserts it at its roster position after
``node_recovery_s``.

Two invariants keep degradation graceful and runs deterministic:

* **The last live node never crashes.**  A due crash on the only live
  node is skipped (the gap was still consumed, so the schedule is
  unchanged); the platform always stays reachable and ``balancer.pick``
  never sees an empty list.
* **Recovery re-inserts at the roster position** (before any autoscaled
  nodes), so the live-list order — which index-picking balancers depend
  on — is a pure function of simulated history.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.failures.rng import FailureRng
    from repro.failures.spec import FailureSpec
    from repro.sim.core import Environment

__all__ = ["FailureInjector"]


class FailureInjector:
    """Drives the crash/recovery schedule of every roster node.

    Parameters
    ----------
    env:
        Simulation environment.
    spec:
        The failure regime; only its node-crash fields are read here.
    invokers:
        The **shared live list** — the same object the platform, the
        balancer, and the autoscaler hold.  Crashes mutate it in place.
    rng:
        The run's failure streams (one crash schedule per roster node).
    """

    def __init__(
        self,
        env: "Environment",
        spec: "FailureSpec",
        invokers: List[Any],
        rng: "FailureRng",
    ) -> None:
        self.env = env
        self.spec = spec
        self._live = invokers
        self._roster = tuple(invokers)
        self._rng = rng
        self._stopped = False
        self.crashes = 0
        self.skipped_crashes = 0
        if spec.has_node_crashes:
            for ordinal, node in enumerate(self._roster):
                env.process(self._node_loop(ordinal, node))

    def stop(self) -> None:
        """Wind down after the run: loops exit at their next wake-up."""
        self._stopped = True

    # ------------------------------------------------------------------
    def _node_loop(self, ordinal: int, node: Any):
        gen = self._rng.node_stream(ordinal)
        scale = 1.0 / self.spec.node_crash_rate
        while not self._stopped:
            yield self.env.timeout(float(gen.exponential(scale)))
            if self._stopped:
                return
            if node not in self._live or len(self._live) <= 1:
                # Scaled away, or the last node standing: skip this crash
                # (the gap was consumed; the schedule marches on).
                self.skipped_crashes += 1
                continue
            self._crash(node)
            yield self.env.timeout(self.spec.node_recovery_s)
            if self._stopped:
                return
            self._recover(node)

    def _crash(self, node: Any) -> None:
        self.crashes += 1
        self._live.remove(node)
        node.crash()

    def _recover(self, node: Any) -> None:
        node.recover()
        # Roster nodes occupy a stable prefix of the live list; re-insert
        # after the live roster predecessors, before autoscaled additions.
        position = 0
        for prev in self._roster:
            if prev is node:
                break
            if prev in self._live:
                position += 1
        self._live.insert(position, node)
