"""Data-driven processing-time estimation (paper Sect. IV).

The invoker estimates a call's expected processing time ``E(p(i))`` by the
average of the last (at most) 10 *node-measured* processing times of the
same function — a window size the authors' earlier work [18] validated
against the Azure trace.  A function that has never finished on this node
has estimate 0 (paper Sect. IV-B), which makes unknown functions maximally
attractive to SEPT-like policies (they are tried quickly, after which real
data exists).

The estimator also records per-function call-arrival history, used by the
Fair-Choice policy (``#(f, -T)``: number of calls received in the last
``T`` seconds) and the RECT policy (``r̄(i)``: receipt time of the previous
call of the same function).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

__all__ = ["RuntimeEstimator", "EmaTracker", "DEFAULT_WINDOW"]

#: Number of most recent processing times averaged (paper: "at most 10").
DEFAULT_WINDOW = 10


class EmaTracker:
    """Per-function exponential moving average of a sample stream.

    The first sample seeds the estimate; afterwards it updates as
    ``ema <- alpha * sample + (1 - alpha) * ema``.  Never-seen functions
    report 0 — the same "unknown functions look maximally attractive"
    semantics as the window estimator (paper Sect. IV-B).  Shared by the
    EMA-estimating policies (``ETAS``, ``SEPT-EMA``).
    """

    def __init__(self, alpha: float) -> None:
        self.alpha = float(alpha)
        self._ema: Dict[str, float] = {}

    def update(self, function_name: str, sample: float) -> None:
        previous = self._ema.get(function_name)
        if previous is None:
            self._ema[function_name] = sample
        else:
            self._ema[function_name] = self.alpha * sample + (1.0 - self.alpha) * previous

    def get(self, function_name: str) -> float:
        """Current estimate (0 for never-seen functions)."""
        return self._ema.get(function_name, 0.0)


class RuntimeEstimator:
    """Sliding-window runtime statistics for one worker node.

    Parameters
    ----------
    window:
        Maximum number of recent finished calls to average per function.
    frequency_horizon:
        ``T`` of the Fair-Choice policy: how far back (seconds) arrivals
        are counted.  The paper suggests "a long time interval, e.g. 60 s".
    """

    def __init__(self, window: int = DEFAULT_WINDOW, frequency_horizon: float = 60.0) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window!r}")
        if frequency_horizon <= 0:
            raise ValueError(f"frequency_horizon must be positive, got {frequency_horizon!r}")
        self.window = int(window)
        self.frequency_horizon = float(frequency_horizon)
        self._samples: Dict[str, Deque[float]] = {}
        self._sums: Dict[str, float] = {}
        self._arrivals: Dict[str, Deque[float]] = {}
        self._last_arrival: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Processing-time estimate E(p(i))
    # ------------------------------------------------------------------
    def record_completion(self, function_name: str, processing_time: float) -> None:
        """Record a finished call's node-measured processing time."""
        if processing_time < 0:
            raise ValueError(f"negative processing time {processing_time!r}")
        samples = self._samples.get(function_name)
        if samples is None:
            samples = deque(maxlen=self.window)
            self._samples[function_name] = samples
            self._sums[function_name] = 0.0
        if len(samples) == samples.maxlen:
            self._sums[function_name] -= samples[0]
        samples.append(processing_time)
        self._sums[function_name] += processing_time

    def expected_processing_time(self, function_name: str) -> float:
        """``E(p(i))``: window-mean processing time; 0 if never executed."""
        samples = self._samples.get(function_name)
        if not samples:
            return 0.0
        return self._sums[function_name] / len(samples)

    def sample_count(self, function_name: str) -> int:
        samples = self._samples.get(function_name)
        return len(samples) if samples else 0

    # ------------------------------------------------------------------
    # Arrival history (#(f, -T) and r̄)
    # ------------------------------------------------------------------
    def record_arrival(self, function_name: str, now: float) -> None:
        """Record that a call of *function_name* was received at *now*.

        Must be called **after** the policy computed the new call's
        priority, so that ``r̄(i)`` refers to the *previous* call.
        """
        arrivals = self._arrivals.setdefault(function_name, deque())
        arrivals.append(now)
        self._last_arrival[function_name] = now

    def recent_call_count(self, function_name: str, now: float) -> int:
        """``#(f, -T)``: calls of *f* received within the last T seconds."""
        arrivals = self._arrivals.get(function_name)
        if not arrivals:
            return 0
        cutoff = now - self.frequency_horizon
        while arrivals and arrivals[0] < cutoff:
            arrivals.popleft()
        return len(arrivals)

    def previous_arrival(self, function_name: str) -> Optional[float]:
        """``r̄(i)``: receipt time of the most recent call of *f*, or None."""
        return self._last_arrival.get(function_name)
