"""Extension policies beyond the paper's five (DESIGN.md §7).

These are **not** part of the reproduction proper; they bound and
contextualise the paper's results.  All three are registered in the
scheduling-policy registry (:mod:`repro.scheduling.registry`), so they
run through ``ExperimentConfig``, the grid, the parallel engine and the
CLI exactly like the paper's policies:

* :class:`ClairvoyantSPT` — an oracle that knows each call's true
  processing time ``p(i)``.  Upper-bounds what any estimate-driven
  shortest-first policy (SEPT) could achieve; the gap between SEPT and
  this oracle measures the cost of estimation error.
* :class:`EtasLike` — the queueing rule of ETAS (Banaei & Sharifi, 2021,
  the paper's [43]): order by estimated completion time using a
  per-function *exponential moving average* runtime estimate rather than
  the paper's sliding-window mean.
* :class:`RoundRobinPerFunction` — classic fair queueing at function
  granularity: functions take turns, calls within a function stay FIFO.
  A fairness baseline for Fig.-5-style studies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.scheduling.estimator import EmaTracker, RuntimeEstimator
from repro.scheduling.policies import SchedulingPolicy
from repro.scheduling.registry import PolicyParam, register_policy, require_number

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workload.generator import Request

__all__ = ["ClairvoyantSPT", "EtasLike", "RoundRobinPerFunction", "EXTRA_POLICIES"]


def _validate_etas_params(params: dict) -> None:
    alpha = require_number("alpha", params["alpha"], "ETAS")
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must lie in (0, 1], got {params['alpha']!r}")


@register_policy(
    "ORACLE-SPT",
    description=(
        "clairvoyant shortest processing time: priority is the true p(i); "
        "upper-bounds what SEPT could achieve"
    ),
)
class ClairvoyantSPT(SchedulingPolicy):
    """Oracle shortest-processing-time: priority is the true ``p(i)``.

    Violates the paper's non-clairvoyance assumption by construction —
    useful only as a bound.
    """

    name = "ORACLE-SPT"
    starvation_free = False

    def priority(self, request: "Request", received_at: float) -> float:
        return request.service_time


@register_policy(
    "ETAS",
    description=(
        "ETAS-like rule of Banaei & Sharifi 2021 (the paper's [43]): "
        "r'(i) + EMA runtime estimate"
    ),
    starvation_free=True,
    params=(
        PolicyParam(
            "alpha",
            0.3,
            "EMA smoothing factor in (0, 1]; 1 keeps only the last sample",
        ),
    ),
    validator=_validate_etas_params,
)
class EtasLike(SchedulingPolicy):
    """ETAS-style earliest-estimated-completion with an EMA estimator.

    Priority is ``r'(i) + ema(f(i))`` where the EMA updates as
    ``ema <- alpha * sample + (1 - alpha) * ema`` on each completion.
    Functionally close to the paper's EECT; the difference is purely the
    estimator's memory profile.
    """

    name = "ETAS"
    starvation_free = True

    def __init__(self, estimator: RuntimeEstimator, alpha: float = 0.3) -> None:
        super().__init__(estimator)
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must lie in (0, 1], got {alpha!r}")
        self.alpha = alpha
        self._ema = EmaTracker(alpha)

    def priority(self, request: "Request", received_at: float) -> float:
        return received_at + self._ema.get(request.function.name)

    def on_completed(self, request: "Request", processing_time: float) -> None:
        super().on_completed(request, processing_time)
        self._ema.update(request.function.name, processing_time)

    def record_warmup(self, function_name: str, processing_time: float) -> None:
        super().record_warmup(function_name, processing_time)
        self._ema.update(function_name, processing_time)

    def ema(self, function_name: str) -> float:
        """Current EMA estimate (0 for never-seen functions)."""
        return self._ema.get(function_name)


@register_policy(
    "RR-FN",
    description=(
        "per-function round-robin: functions take turns, calls within a "
        "function stay FIFO"
    ),
    starvation_free=True,
)
class RoundRobinPerFunction(SchedulingPolicy):
    """Per-function round-robin: the k-th call of any function gets
    priority ``k`` — functions interleave fairly, FIFO within a function."""

    name = "RR-FN"
    starvation_free = True

    def __init__(self, estimator: RuntimeEstimator) -> None:
        super().__init__(estimator)
        self._counts: Dict[str, int] = {}

    def priority(self, request: "Request", received_at: float) -> float:
        name = request.function.name
        count = self._counts.get(name, 0)
        self._counts[name] = count + 1
        return float(count)


#: Extension-policy registry (kept separate from the paper's POLICIES).
EXTRA_POLICIES = {
    cls.name: cls for cls in (ClairvoyantSPT, EtasLike, RoundRobinPerFunction)
}
