"""Parameterized extension policies (registry-native, beyond the paper).

The paper fixes every policy's estimator to the 10-sample sliding-window
mean and gives no policy a knob.  These two policies exist to open the
estimator-ablation space the paper only gestures at (Sect. IV-B cites
[18] for the window choice; Sect. VII-D motivates fairness/urgency
blending):

* :class:`HybridFairCompletion` (``FC-HYBRID``) — a convex blend of
  Fair-Choice's recent-consumption fairness term and EECT's expected
  completion deadline.  ``deadline_weight=0`` is exactly FC,
  ``deadline_weight=1`` exactly EECT; anything in between trades
  inter-function fairness against starvation-bounded urgency.
* :class:`SmoothedSEPT` (``SEPT-EMA``) — SEPT with the estimator made
  policy-configurable: the sliding-window length is a parameter (routed
  into :class:`~repro.scheduling.estimator.RuntimeEstimator`
  construction), and an optional exponential-moving-average estimate
  (``smoothing > 0``) replaces the window mean entirely — the memory
  profile of ETAS under SEPT's ordering rule.

Both register through :func:`repro.scheduling.registry.register_policy`
with declared, documented parameters, so ``--policy-param`` reaches them
from the CLI and their parameters are part of the result-cache
fingerprint.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.scheduling.estimator import EmaTracker, RuntimeEstimator
from repro.scheduling.policies import SchedulingPolicy
from repro.scheduling.registry import (
    EstimatorFactory,
    PolicyParam,
    register_policy,
    require_number,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workload.generator import Request

__all__ = ["HybridFairCompletion", "SmoothedSEPT"]


def _validate_hybrid_params(params: dict) -> None:
    weight = require_number("deadline_weight", params["deadline_weight"], "FC-HYBRID")
    if not 0.0 <= weight <= 1.0:
        raise ValueError(
            f"deadline_weight must lie in [0, 1], got {params['deadline_weight']!r}"
        )


def _validate_smoothed_sept_params(params: dict) -> None:
    smoothing = require_number("smoothing", params["smoothing"], "SEPT-EMA")
    if not 0.0 <= smoothing < 1.0:
        raise ValueError(f"smoothing must lie in [0, 1), got {params['smoothing']!r}")
    window = params["window"]
    if window is None:
        return
    if smoothing:
        # With smoothing > 0 the priority reads only the EMA, so a window
        # would be silently inert — yet still diverge the cache
        # fingerprint, producing distinct cache entries with identical
        # results.  Reject the combination instead.
        raise ValueError(
            "SEPT-EMA ignores the window mean when smoothing > 0; give "
            "either window (window-mean SEPT) or smoothing (EMA), not both"
        )
    window = require_number("window", window, "SEPT-EMA")
    if int(window) != window or window < 1:
        raise ValueError(
            f"window must be a positive integer, got {params['window']!r}"
        )
    # Canonicalise integral floats (3.0 -> 3): the merged params are what
    # the config stores and fingerprints, and 3.0 vs 3 must not address
    # two cache entries for bit-identical simulations.
    params["window"] = int(window)


@register_policy(
    "FC-HYBRID",
    description=(
        "convex blend of FC fairness and EECT urgency: "
        "(1-w) * #(f,-T)*E(p) + w * (r' + E(p))"
    ),
    starvation_free=True,  # any w > 0 inherits EECT's unbounded r' anchor
    params=(
        PolicyParam(
            "deadline_weight",
            0.5,
            "weight w in [0, 1] on the EECT completion-deadline term; "
            "0 is exactly FC, 1 exactly EECT",
        ),
    ),
    validator=_validate_hybrid_params,
)
class HybridFairCompletion(SchedulingPolicy):
    """FC-HYBRID: ``(1-w) * #(f(i),-T) * E(p(i)) + w * (r'(i) + E(p(i)))``.

    Fair-Choice throttles functions by their recent resource consumption
    but is not starvation-free; EECT bounds every call's wait via its
    receipt-time anchor but ignores fairness.  The blend keeps FC's
    inter-function fairness pressure while the deadline term's unbounded
    growth guarantees no call waits forever (for any ``w > 0``).
    """

    name = "FC-HYBRID"
    starvation_free = True

    def __init__(self, estimator: RuntimeEstimator, deadline_weight: float = 0.5) -> None:
        super().__init__(estimator)
        if not 0.0 <= deadline_weight <= 1.0:
            raise ValueError(
                f"deadline_weight must lie in [0, 1], got {deadline_weight!r}"
            )
        self.deadline_weight = float(deadline_weight)

    def priority(self, request: "Request", received_at: float) -> float:
        fname = request.function.name
        estimate = self.estimator.expected_processing_time(fname)
        fairness = self.estimator.recent_call_count(fname, received_at) * estimate
        deadline = received_at + estimate
        w = self.deadline_weight
        return (1.0 - w) * fairness + w * deadline


@register_policy(
    "SEPT-EMA",
    description=(
        "SEPT with a policy-configurable estimator: sliding-window length "
        "as a parameter, optional EMA smoothing replacing the window mean"
    ),
    params=(
        PolicyParam(
            "window",
            None,
            "sliding-window length (samples) of the runtime estimator; "
            "None keeps the node's configured estimator_window (the paper "
            "fixes 10)",
        ),
        PolicyParam(
            "smoothing",
            0.0,
            "EMA factor in [0, 1): 0 keeps the window mean; alpha > 0 "
            "orders by an EMA estimate instead",
        ),
    ),
    validator=_validate_smoothed_sept_params,
)
def _build_smoothed_sept(
    make_estimator: EstimatorFactory, *, window: "int | None", smoothing: float
) -> "SmoothedSEPT":
    """Builder: routes ``window`` into estimator construction — the
    registry's estimator factory starts from the node's configured
    defaults, so only an explicitly supplied window changes them.
    Parameter values arrive validated (see
    :func:`_validate_smoothed_sept_params`)."""
    if window is None:
        return SmoothedSEPT(make_estimator(), smoothing=smoothing)
    return SmoothedSEPT(make_estimator(window=int(window)), smoothing=smoothing)


class SmoothedSEPT(SchedulingPolicy):
    """SEPT-EMA: shortest-first under a reconfigured estimator.

    With ``smoothing == 0`` the priority is the window-mean estimate
    (plain SEPT over a custom window).  With ``smoothing > 0`` the
    priority is a per-function EMA updated as ``ema <- alpha * sample +
    (1 - alpha) * ema`` on each completion — never-seen functions keep
    estimate 0 and are tried quickly, exactly like SEPT.
    """

    name = "SEPT-EMA"
    starvation_free = False

    def __init__(self, estimator: RuntimeEstimator, smoothing: float = 0.0) -> None:
        super().__init__(estimator)
        if not 0.0 <= smoothing < 1.0:
            raise ValueError(f"smoothing must lie in [0, 1), got {smoothing!r}")
        self.smoothing = float(smoothing)
        self._ema = EmaTracker(smoothing)

    def priority(self, request: "Request", received_at: float) -> float:
        fname = request.function.name
        if self.smoothing > 0.0:
            return self._ema.get(fname)
        return self.estimator.expected_processing_time(fname)

    def on_completed(self, request: "Request", processing_time: float) -> None:
        super().on_completed(request, processing_time)
        if self.smoothing > 0.0:
            self._ema.update(request.function.name, processing_time)

    def record_warmup(self, function_name: str, processing_time: float) -> None:
        super().record_warmup(function_name, processing_time)
        if self.smoothing > 0.0:
            self._ema.update(function_name, processing_time)

    def ema(self, function_name: str) -> float:
        """Current EMA estimate (0 for never-seen functions)."""
        return self._ema.get(function_name)
