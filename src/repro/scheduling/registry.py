"""Pluggable scheduling-policy registry: named, parameterized policies.

The paper's whole contribution is its policy set (Sect. IV), yet policies
were the last experiment dimension still hardcoded: a fixed five-entry
dict in :mod:`repro.scheduling.policies`, extension policies stranded in
:mod:`repro.scheduling.extra`, and no policy taking parameters.  This
module gives the scheduling layer the same first-class catalog the
workload layer (``repro.workload.registry``) and the cluster layer
(``repro.cluster.spec``) already have:

* :class:`PolicyParam` — one declared, documented policy parameter
  (name, default, units);
* :class:`PolicySpec` — a registered policy: a builder plus metadata
  (description, paper section, starvation-freedom) and a
  :meth:`PolicySpec.build` entry point that validates parameters;
* :class:`PolicyRegistry` — a name → spec map with duplicate rejection
  and error messages that list what *is* available;
* :func:`register_policy` — the decorator policy modules use to join the
  default registry.  It accepts either a :class:`~repro.scheduling.
  policies.SchedulingPolicy` subclass (instantiated as
  ``cls(make_estimator(), **params)``) or a builder function
  ``builder(make_estimator, **params) -> SchedulingPolicy`` for policies
  that configure their own :class:`~repro.scheduling.estimator.
  RuntimeEstimator` construction (window size, smoothing, ...).

Everything above the scheduling layer goes through :func:`build_policy`:
:class:`~repro.experiments.config.ExperimentConfig` validates its
``policy``/``policy_params`` fields against the registry, the invoker
builds policies by name, and the CLI's ``faas-sched policies`` listing is
rendered from the same metadata — so a newly registered policy is
immediately runnable, sweepable, cacheable, and documented everywhere.

Determinism: a policy must derive its decisions only from the estimator
it is handed and its own recorded history.  The parallel engine rebuilds
policies from ``(name, params)`` inside worker processes, which is why
serial and parallel runs stay bit-identical for every registered policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.scheduling.estimator import DEFAULT_WINDOW, RuntimeEstimator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scheduling.policies import SchedulingPolicy

__all__ = [
    "REQUIRED",
    "PolicyParam",
    "PolicySpec",
    "PolicyRegistry",
    "POLICY_REGISTRY",
    "register_policy",
    "require_number",
    "get_policy",
    "policy_names",
    "policy_param_names",
    "build_policy",
]

#: Estimator factory handed to policy builders: calling it yields a fresh
#: :class:`RuntimeEstimator` carrying the node's configured defaults;
#: keyword overrides (``window=``, ``frequency_horizon=``) replace them —
#: which is how a registered policy makes estimator construction
#: policy-configurable without reaching into the node config.
EstimatorFactory = Callable[..., RuntimeEstimator]

#: Builder contract: ``builder(make_estimator, **params) -> SchedulingPolicy``.
PolicyBuilder = Callable[..., "SchedulingPolicy"]


class _Required:
    """Sentinel default for parameters the caller must supply."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<required>"


#: Use as a :class:`PolicyParam` default to mark the parameter mandatory.
REQUIRED = _Required()


@dataclass(frozen=True)
class PolicyParam:
    """One declared policy parameter.

    Attributes
    ----------
    name:
        Keyword-argument name passed to the policy builder.
    default:
        Default value, or :data:`REQUIRED` if the caller must supply one.
    doc:
        One-line description **including units** where applicable, rendered
        by ``faas-sched policies`` and docs/POLICIES.md.
    """

    name: str
    default: Any
    doc: str = ""

    @property
    def required(self) -> bool:
        return isinstance(self.default, _Required)


@dataclass(frozen=True)
class PolicySpec:
    """A registered scheduling policy: builder plus catalog metadata."""

    name: str
    builder: PolicyBuilder
    description: str
    #: Paper section the policy reproduces (e.g. ``"IV"``), or
    #: ``"extension"`` for policies beyond the paper's five.
    paper_section: str
    #: Whether the policy provably prevents starvation (paper Sect. IV).
    starvation_free: bool = False
    params: Tuple[PolicyParam, ...] = ()
    #: Optional cross-parameter validator, called with the merged params
    #: by :meth:`validate_params`.  Must raise :class:`ValueError` on bad
    #: values/combinations — running here (not in the builder) means an
    #: invalid config fails at construction, before any simulation time
    #: (ExperimentConfig validates through this same path).
    validator: Optional[Callable[[Dict[str, Any]], None]] = None

    def param_names(self) -> List[str]:
        return [p.name for p in self.params]

    def defaults(self) -> Dict[str, Any]:
        """Declared defaults (required parameters omitted)."""
        return {p.name: p.default for p in self.params if not p.required}

    def validate_params(self, params: Optional[Mapping[str, Any]]) -> Dict[str, Any]:
        """Merge *params* over the declared defaults, rejecting unknown
        names and missing required parameters with actionable messages."""
        params = dict(params) if params else {}
        declared = {p.name for p in self.params}
        unknown = sorted(set(params) - declared)
        if unknown:
            valid = ", ".join(sorted(declared)) or "(none)"
            raise ValueError(
                f"unknown parameter(s) {unknown} for policy {self.name!r}; "
                f"valid parameters: {valid}"
            )
        merged = self.defaults()
        merged.update(params)
        missing = sorted(p.name for p in self.params if p.required and p.name not in merged)
        if missing:
            raise ValueError(
                f"policy {self.name!r} requires parameter(s) {missing} "
                f"(e.g. --policy-param {missing[0]}=...)"
            )
        if self.validator is not None:
            self.validator(merged)
        return merged

    def build(
        self,
        params: Optional[Mapping[str, Any]] = None,
        *,
        window: int = DEFAULT_WINDOW,
        frequency_horizon: float = 60.0,
    ) -> "SchedulingPolicy":
        """Instantiate the policy after validating *params*.

        ``window``/``frequency_horizon`` are the node's estimator defaults
        (:class:`~repro.node.config.NodeConfig` fields); the builder's
        estimator factory starts from them and lets declared parameters
        override per policy.
        """
        kwargs = self.validate_params(params)

        def make_estimator(**overrides: Any) -> RuntimeEstimator:
            merged = {"window": window, "frequency_horizon": frequency_horizon}
            merged.update(overrides)
            return RuntimeEstimator(**merged)

        return self.builder(make_estimator, **kwargs)


class PolicyRegistry:
    """Name → :class:`PolicySpec` map with registration helpers.

    Lookups are case-insensitive (``"sept"`` finds ``SEPT``) to match the
    historical :func:`repro.scheduling.policies.make_policy` behaviour;
    registered names keep their canonical (upper-case) spelling.
    """

    def __init__(self) -> None:
        self._specs: Dict[str, PolicySpec] = {}

    def register(
        self,
        name: str,
        *,
        description: str,
        paper_section: str = "extension",
        starvation_free: bool = False,
        params: Sequence[PolicyParam] = (),
        validator: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> Callable[[Any], Any]:
        """Decorator registering a policy class or builder under *name*.

        Raises :class:`ValueError` if *name* is already taken (compared
        case-insensitively) — silent replacement would let two modules
        fight over a name and make results depend on import order.
        """

        def decorate(target: Any) -> Any:
            key = name.upper()
            if key in self._specs:
                raise ValueError(
                    f"policy {name!r} is already registered "
                    f"(by {self._specs[key].builder.__module__})"
                )
            builder = self._as_builder(target)
            self._specs[key] = PolicySpec(
                name=name,
                builder=builder,
                description=description,
                paper_section=paper_section,
                starvation_free=starvation_free,
                params=tuple(params),
                validator=validator,
            )
            return target

        return decorate

    @staticmethod
    def _as_builder(target: Any) -> PolicyBuilder:
        """Normalise the registered object to the builder contract: a
        :class:`SchedulingPolicy` subclass gets the standard construction
        ``cls(make_estimator(), **params)``; anything else must already be
        a ``builder(make_estimator, **params)`` callable."""
        from repro.scheduling.policies import SchedulingPolicy

        if isinstance(target, type) and issubclass(target, SchedulingPolicy):

            def class_builder(
                make_estimator: EstimatorFactory, **params: Any
            ) -> "SchedulingPolicy":
                return target(make_estimator(), **params)

            class_builder.__module__ = target.__module__
            class_builder.__qualname__ = f"{target.__qualname__} (class)"
            return class_builder
        if callable(target):
            return target
        raise TypeError(
            f"@register_policy expects a SchedulingPolicy subclass or a "
            f"builder callable, got {type(target).__name__}"
        )

    def get(self, name: str) -> PolicySpec:
        """The spec for *name* (case-insensitive); :class:`ValueError`
        listing the available policy names otherwise."""
        spec = self._specs.get(str(name).upper())
        if spec is None:
            available = ", ".join(self.names()) or "(none registered)"
            raise ValueError(
                f"unknown policy {name!r}; available policies: {available}"
            )
        return spec

    def names(self) -> List[str]:
        return sorted(self._specs)

    def __contains__(self, name: str) -> bool:
        return str(name).upper() in self._specs

    def __iter__(self) -> Iterator[PolicySpec]:
        for name in self.names():
            yield self._specs[name]

    def __len__(self) -> int:
        return len(self._specs)


#: The default registry; the built-in policy modules register here on
#: import, and downstream layers resolve names through the module-level
#: helpers below (which force those imports first).
POLICY_REGISTRY = PolicyRegistry()


def _load_builtin_policies() -> None:
    """Import the modules whose decorators populate :data:`POLICY_REGISTRY`.

    Lazy (and idempotent — registration happens once per process at module
    import) so that ``repro.scheduling.registry`` itself has no import
    cycle with the policy modules.
    """
    import repro.scheduling.extra  # noqa: F401
    import repro.scheduling.parametric  # noqa: F401
    import repro.scheduling.policies  # noqa: F401


def require_number(name: str, value: Any, policy: str) -> float:
    """Validator helper: *value* as a float, :class:`ValueError` otherwise
    (bools are rejected too — ``True`` is not a weight)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(
            f"policy {policy!r} parameter {name!r} must be a number, "
            f"got {value!r}"
        )
    return float(value)


def register_policy(
    name: str,
    *,
    description: str,
    paper_section: str = "extension",
    starvation_free: bool = False,
    params: Sequence[PolicyParam] = (),
    validator: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> Callable[[Any], Any]:
    """Register a policy class or builder in the default registry.

    ``validator`` (optional) receives the merged parameter dict and must
    raise :class:`ValueError` on bad values or combinations; it runs
    inside :meth:`PolicySpec.validate_params`, so invalid parameters fail
    at ``ExperimentConfig`` construction rather than mid-run.

    Example
    -------
    >>> @register_policy(
    ...     "LIFO",
    ...     description="newest call first",
    ...     params=(PolicyParam("bias", 0.0, "tie-breaking bias"),),
    ... )
    ... class LastInFirstOut(SchedulingPolicy):
    ...     ...
    """
    return POLICY_REGISTRY.register(
        name,
        description=description,
        paper_section=paper_section,
        starvation_free=starvation_free,
        params=params,
        validator=validator,
    )


def get_policy(name: str) -> PolicySpec:
    """The registered spec for *name* (built-ins loaded on demand)."""
    _load_builtin_policies()
    return POLICY_REGISTRY.get(name)


def policy_names() -> List[str]:
    """Sorted canonical names of every registered policy."""
    _load_builtin_policies()
    return POLICY_REGISTRY.names()


def policy_param_names(name: str) -> List[str]:
    """Declared parameter names of the policy registered under *name*."""
    return get_policy(name).param_names()


def build_policy(
    name: str,
    params: Optional[Mapping[str, Any]] = None,
    *,
    window: int = DEFAULT_WINDOW,
    frequency_horizon: float = 60.0,
) -> "SchedulingPolicy":
    """Build the policy registered under *name* — the single entry point
    used by the invoker, so every registered policy composes with the
    experiment grid, the parallel engine, and its cache automatically."""
    return get_policy(name).build(
        params, window=window, frequency_horizon=frequency_horizon
    )
