"""The five node-level scheduling policies of paper Sect. IV.

Each policy maps an incoming call to a scalar *priority*; the invoker's
queue serves the **lowest** priority first.  Priorities are computed once,
when the call is received by the invoker (``r'(i)``), and never change
(paper: "once a priority of a particular action call is computed, it does
not change").

===========  =========================================================
Policy       Priority of call *i*
===========  =========================================================
FIFO         ``r'(i)`` — receipt time (the baseline ordering)
SEPT         ``E(p(i))`` — expected processing time
EECT         ``r'(i) + E(p(i))`` — expected completion time if a core
             were immediately available (starvation-free)
RECT         ``r̄(i) + E(p(i))`` — like EECT but anchored at the receipt
             time of the *previous* call of the same function
             (starvation-free; r̄ increases over time)
FC           ``#(f(i), -T) · E(p(i))`` — recent total resource
             consumption of the function (fairness across functions)
===========  =========================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Type

from repro.scheduling.estimator import RuntimeEstimator
from repro.scheduling.registry import register_policy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workload.generator import Request

__all__ = [
    "SchedulingPolicy",
    "FirstInFirstOut",
    "ShortestExpectedProcessingTime",
    "EarliestExpectedCompletionTime",
    "RecentExpectedCompletionTime",
    "FairChoice",
    "POLICIES",
    "make_policy",
]


class SchedulingPolicy:
    """Base class: computes an immutable priority at call receipt.

    Subclasses implement :meth:`priority`.  The invoker calls
    :meth:`on_received` exactly once per call, *in receipt order*; the
    default implementation computes the priority and then lets the
    estimator record the arrival (order matters for RECT's ``r̄``).
    """

    #: Registry name, set by subclasses.
    name: str = ""
    #: Whether the policy provably prevents starvation (paper Sect. IV).
    starvation_free: bool = False

    def __init__(self, estimator: RuntimeEstimator) -> None:
        self.estimator = estimator

    def priority(self, request: "Request", received_at: float) -> float:
        """The call's priority (lower = served earlier)."""
        raise NotImplementedError

    def on_received(self, request: "Request", received_at: float) -> float:
        """Compute the priority, then record the arrival for bookkeeping."""
        value = self.priority(request, received_at)
        self.estimator.record_arrival(request.function.name, received_at)
        return value

    def on_completed(self, request: "Request", processing_time: float) -> None:
        """Feed the node-measured processing time back to the estimator."""
        self.estimator.record_completion(request.function.name, processing_time)

    def record_warmup(self, function_name: str, processing_time: float) -> None:
        """Seed estimation state during node warm-up (paper Sect. V-A).

        The default feeds the window estimator exactly like a measured
        completion; policies that keep their own estimates (EMA-based
        ones) override this so warm-up reaches them too — otherwise their
        first-wave priorities would degenerate while the window policies
        start seeded.
        """
        self.estimator.record_completion(function_name, processing_time)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__}>"


@register_policy(
    "FIFO",
    description="first-in-first-out: priority is the receipt time r'(i)",
    paper_section="IV",
    starvation_free=True,
)
class FirstInFirstOut(SchedulingPolicy):
    """FIFO: priority is the receipt time ``r'(i)``.

    Note this is *our* FIFO (paper Sect. IV): ordering matches the
    baseline, but it runs on top of the CPU-based container management
    (1 core per container, busy <= cores, bounded working set).
    """

    name = "FIFO"
    starvation_free = True  # receipt times strictly increase

    def priority(self, request: "Request", received_at: float) -> float:
        return received_at


@register_policy(
    "SEPT",
    description="shortest expected processing time: priority is E(p(i))",
    paper_section="IV",
)
class ShortestExpectedProcessingTime(SchedulingPolicy):
    """SEPT: priority is ``E(p(i))``; short functions jump the queue."""

    name = "SEPT"
    starvation_free = False

    def priority(self, request: "Request", received_at: float) -> float:
        return self.estimator.expected_processing_time(request.function.name)


@register_policy(
    "EECT",
    description="earliest expected completion time: priority is r'(i) + E(p(i))",
    paper_section="IV",
    starvation_free=True,
)
class EarliestExpectedCompletionTime(SchedulingPolicy):
    """EECT: priority is ``r'(i) + E(p(i))``.

    Starvation-free: if ``r'(j) > r'(i) + E(p(i))`` then *j* is served
    after *i*, so no call waits forever (paper Sect. IV).
    """

    name = "EECT"
    starvation_free = True

    def priority(self, request: "Request", received_at: float) -> float:
        return received_at + self.estimator.expected_processing_time(request.function.name)


@register_policy(
    "RECT",
    description=(
        "recent expected completion time: like EECT but anchored at the "
        "previous same-function receipt time r̄(i)"
    ),
    paper_section="IV",
    starvation_free=True,
)
class RecentExpectedCompletionTime(SchedulingPolicy):
    """RECT: priority is ``r̄(i) + E(p(i))`` with ``r̄(i)`` the receipt time
    of the previous call of the same function (the current receipt time for
    a function's first call).  ``r̄`` increases over time, so RECT is
    starvation-free like EECT but favours functions idle for a while."""

    name = "RECT"
    starvation_free = True

    def priority(self, request: "Request", received_at: float) -> float:
        previous = self.estimator.previous_arrival(request.function.name)
        anchor = previous if previous is not None else received_at
        return anchor + self.estimator.expected_processing_time(request.function.name)


@register_policy(
    "FC",
    description=(
        "fair choice: priority is #(f(i), -T) * E(p(i)) — recent total "
        "resource consumption of the function"
    ),
    paper_section="IV",
)
class FairChoice(SchedulingPolicy):
    """FC: priority is ``#(f(i), -T) * E(p(i))`` — the function's estimated
    total processing-time consumption over the recent window ``T``.

    Functions that recently consumed much node time (frequent or long) are
    deprioritised, yielding inter-function fairness (paper Sect. VII-D).
    """

    name = "FC"
    starvation_free = False

    def priority(self, request: "Request", received_at: float) -> float:
        fname = request.function.name
        count = self.estimator.recent_call_count(fname, received_at)
        return count * self.estimator.expected_processing_time(fname)


#: Registry of the paper's policies by name.
POLICIES: Dict[str, Type[SchedulingPolicy]] = {
    cls.name: cls
    for cls in (
        FirstInFirstOut,
        ShortestExpectedProcessingTime,
        EarliestExpectedCompletionTime,
        RecentExpectedCompletionTime,
        FairChoice,
    )
}


def make_policy(name: str, estimator: RuntimeEstimator | None = None, **kwargs) -> SchedulingPolicy:
    """Instantiate a policy by registry name (case-insensitive).

    Parameters
    ----------
    name:
        One of ``FIFO``, ``SEPT``, ``EECT``, ``RECT``, ``FC``.
    estimator:
        Shared :class:`RuntimeEstimator`; a fresh one is created if omitted.
    kwargs:
        Forwarded to :class:`RuntimeEstimator` when one is created
        (``window``, ``frequency_horizon``).
    """
    key = name.upper()
    cls = POLICIES.get(key)
    if cls is None:
        raise KeyError(
            f"unknown policy {name!r}; available: {', '.join(sorted(POLICIES))}"
        )
    return cls(estimator if estimator is not None else RuntimeEstimator(**kwargs))
