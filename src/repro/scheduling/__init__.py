"""Node-level scheduling policies — the paper's primary contribution.

* :mod:`repro.scheduling.estimator` — the data-driven processing-time
  estimator ``E(p(i))``: mean of the last ≤10 node-measured processing
  times of the same function (0 for never-executed functions);
* :mod:`repro.scheduling.policies` — the five queueing policies of
  Sect. IV: FIFO, SEPT, EECT, RECT and Fair-Choice (FC);
* :mod:`repro.scheduling.extra` — extension policies bounding the paper's
  results (clairvoyant oracle, ETAS-like EMA rule, per-function RR);
* :mod:`repro.scheduling.parametric` — parameterized extension policies
  (FC/EECT hybrid, SEPT with a configurable estimator);
* :mod:`repro.scheduling.registry` — the policy registry: every policy
  above is a named, parameterized, first-class catalog entry consumed by
  the experiment grid, the cache, and the CLI;
* :mod:`repro.scheduling.queue` — a stable priority queue (ties broken by
  arrival order) used by the invoker.
"""

from repro.scheduling.estimator import RuntimeEstimator
from repro.scheduling.policies import (
    POLICIES,
    EarliestExpectedCompletionTime,
    FairChoice,
    FirstInFirstOut,
    RecentExpectedCompletionTime,
    SchedulingPolicy,
    ShortestExpectedProcessingTime,
    make_policy,
)
from repro.scheduling.extra import (
    EXTRA_POLICIES,
    ClairvoyantSPT,
    EtasLike,
    RoundRobinPerFunction,
)
from repro.scheduling.parametric import HybridFairCompletion, SmoothedSEPT
from repro.scheduling.queue import StablePriorityQueue
from repro.scheduling.registry import (
    POLICY_REGISTRY,
    PolicyParam,
    PolicySpec,
    build_policy,
    get_policy,
    policy_names,
    register_policy,
)

__all__ = [
    "ClairvoyantSPT",
    "EarliestExpectedCompletionTime",
    "EtasLike",
    "EXTRA_POLICIES",
    "FairChoice",
    "FirstInFirstOut",
    "HybridFairCompletion",
    "POLICIES",
    "POLICY_REGISTRY",
    "PolicyParam",
    "PolicySpec",
    "RecentExpectedCompletionTime",
    "RoundRobinPerFunction",
    "RuntimeEstimator",
    "SchedulingPolicy",
    "ShortestExpectedProcessingTime",
    "SmoothedSEPT",
    "StablePriorityQueue",
    "build_policy",
    "get_policy",
    "make_policy",
    "policy_names",
    "register_policy",
]
