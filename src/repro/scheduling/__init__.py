"""Node-level scheduling policies — the paper's primary contribution.

* :mod:`repro.scheduling.estimator` — the data-driven processing-time
  estimator ``E(p(i))``: mean of the last ≤10 node-measured processing
  times of the same function (0 for never-executed functions);
* :mod:`repro.scheduling.policies` — the five queueing policies of
  Sect. IV: FIFO, SEPT, EECT, RECT and Fair-Choice (FC);
* :mod:`repro.scheduling.queue` — a stable priority queue (ties broken by
  arrival order) used by the invoker.
"""

from repro.scheduling.estimator import RuntimeEstimator
from repro.scheduling.policies import (
    POLICIES,
    EarliestExpectedCompletionTime,
    FairChoice,
    FirstInFirstOut,
    RecentExpectedCompletionTime,
    SchedulingPolicy,
    ShortestExpectedProcessingTime,
    make_policy,
)
from repro.scheduling.extra import (
    EXTRA_POLICIES,
    ClairvoyantSPT,
    EtasLike,
    RoundRobinPerFunction,
)
from repro.scheduling.queue import StablePriorityQueue

__all__ = [
    "ClairvoyantSPT",
    "EarliestExpectedCompletionTime",
    "EtasLike",
    "EXTRA_POLICIES",
    "FairChoice",
    "FirstInFirstOut",
    "POLICIES",
    "RecentExpectedCompletionTime",
    "RoundRobinPerFunction",
    "RuntimeEstimator",
    "SchedulingPolicy",
    "ShortestExpectedProcessingTime",
    "StablePriorityQueue",
    "make_policy",
]
