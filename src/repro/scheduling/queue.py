"""A stable priority queue for the invoker.

Ties on priority are broken by insertion order (receipt order), matching
the behaviour of a priority queue fed by a single invoker thread.  The
paper's FIFO policy relies on this: with priority = receipt time it
degenerates to exact arrival ordering.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Generic, Iterator, List, Optional, Tuple, TypeVar

__all__ = ["StablePriorityQueue"]

T = TypeVar("T")


class StablePriorityQueue(Generic[T]):
    """A heap-based priority queue with FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, T]] = []
        self._seq = count()

    def push(self, priority: float, item: T) -> None:
        """Insert *item* with *priority* (lower served first)."""
        heapq.heappush(self._heap, (priority, next(self._seq), item))

    def pop(self) -> Tuple[float, T]:
        """Remove and return ``(priority, item)`` with the lowest priority.

        Raises
        ------
        IndexError
            If the queue is empty.
        """
        priority, _, item = heapq.heappop(self._heap)
        return priority, item

    def peek(self) -> Tuple[float, T]:
        """Return (without removing) the lowest-priority entry."""
        priority, _, item = self._heap[0]
        return priority, item

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __iter__(self) -> Iterator[T]:
        """Items in priority order (FIFO within equal priority),
        non-destructive.

        Pops a shallow copy of the heap lazily instead of materializing a
        full sort, so taking the first ``k`` items costs O(n + k log n)
        rather than O(n log n).
        """
        heap = self._heap.copy()
        while heap:
            yield heapq.heappop(heap)[2]
