"""Plain-text rendering of result tables (the benches' output format)."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.metrics.stats import PAPER_PERCENTILES, SummaryStats

__all__ = ["format_table", "render_summary_table", "format_ratio"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned monospace table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_summary_table(
    entries: Sequence[Tuple[str, SummaryStats]],
    title: str = "",
    include_stretch: bool = True,
    annotations: Optional[Sequence[str]] = None,
    annotation_header: str = "significance",
) -> str:
    """Rows of Table-III-style statistics, one per labelled summary.

    ``annotations`` (one string per entry, e.g. "3/5 sig vs FC") appends a
    trailing column — how ``faas-sched grid --compare`` marks which rows
    differ significantly from the reference strategy after Holm
    correction (see docs/COMPARISONS.md).
    """
    if annotations is not None and len(annotations) != len(entries):
        raise ValueError(
            f"got {len(annotations)} annotations for {len(entries)} entries"
        )
    headers = ["config", "n", "R.avg"] + [f"R.p{q}" for q in PAPER_PERCENTILES]
    if include_stretch:
        headers += ["S.avg"] + [f"S.p{q}" for q in PAPER_PERCENTILES]
    headers += ["max c(i)", "colds"]
    if annotations is not None:
        headers.append(annotation_header)
    rows = []
    for idx, (label, stats) in enumerate(entries):
        row: List[object] = [label, stats.n_calls, stats.mean_response_time]
        row += [stats.response_time_percentiles[q] for q in PAPER_PERCENTILES]
        if include_stretch:
            row.append(stats.mean_stretch)
            row += [stats.stretch_percentiles[q] for q in PAPER_PERCENTILES]
        row += [stats.max_completion_time, stats.cold_starts]
        if annotations is not None:
            row.append(annotations[idx])
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_ratio(paper: float, measured: float) -> str:
    """``paper -> measured (xRATIO)`` comparison cell."""
    if measured == 0:
        return f"{paper:.2f} -> {measured:.2f}"
    return f"{paper:.2f} -> {measured:.2f} (x{paper / measured:.2f})"


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.2f}"
    return str(cell)
