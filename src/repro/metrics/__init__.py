"""Metrics: per-call records, response-time/stretch statistics, reports."""

from repro.metrics.ascii import render_boxplot
from repro.metrics.records import CallRecord
from repro.metrics.stats import (
    BoxStats,
    SummaryStats,
    box_stats,
    percentile,
    summarize,
)
from repro.metrics.report import format_table, render_summary_table

__all__ = [
    "BoxStats",
    "CallRecord",
    "SummaryStats",
    "box_stats",
    "format_table",
    "percentile",
    "render_boxplot",
    "render_summary_table",
    "summarize",
]
