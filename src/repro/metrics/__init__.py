"""Metrics: per-call records, response-time/stretch statistics, reports."""

from repro.metrics.ascii import render_boxplot
from repro.metrics.cluster import ClusterBreakdown, NodeUsage, cluster_breakdown
from repro.metrics.compare import (
    COMPARE_METRICS,
    DEFAULT_METRICS,
    BootstrapCI,
    ComparisonResult,
    GridComparison,
    MannWhitneyResult,
    MetricComparison,
    bootstrap_diff_ci,
    cliffs_delta,
    compare_grid,
    compare_results,
    compare_samples,
    effect_magnitude,
    holm_bonferroni,
    mann_whitney_u,
)
from repro.metrics.records import CallRecord
from repro.metrics.stats import (
    BoxStats,
    SummaryStats,
    box_stats,
    percentile,
    summarize,
)
from repro.metrics.report import format_table, render_summary_table
from repro.metrics.serialize import (
    record_from_dict,
    record_to_dict,
    records_from_dicts,
    records_to_dicts,
)
from repro.metrics.streaming import (
    ExactSum,
    MetricsAccumulator,
    StreamingSummary,
    SummaryAccumulator,
    TDigest,
    merge_accumulators,
)

__all__ = [
    "BootstrapCI",
    "BoxStats",
    "COMPARE_METRICS",
    "CallRecord",
    "ComparisonResult",
    "DEFAULT_METRICS",
    "GridComparison",
    "MannWhitneyResult",
    "MetricComparison",
    "ClusterBreakdown",
    "NodeUsage",
    "cluster_breakdown",
    "ExactSum",
    "MetricsAccumulator",
    "StreamingSummary",
    "SummaryAccumulator",
    "SummaryStats",
    "TDigest",
    "merge_accumulators",
    "bootstrap_diff_ci",
    "box_stats",
    "cliffs_delta",
    "compare_grid",
    "compare_results",
    "compare_samples",
    "effect_magnitude",
    "format_table",
    "holm_bonferroni",
    "mann_whitney_u",
    "percentile",
    "record_from_dict",
    "record_to_dict",
    "records_from_dicts",
    "records_to_dicts",
    "render_boxplot",
    "render_summary_table",
    "summarize",
]
