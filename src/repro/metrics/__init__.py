"""Metrics: per-call records, response-time/stretch statistics, reports."""

from repro.metrics.ascii import render_boxplot
from repro.metrics.cluster import ClusterBreakdown, NodeUsage, cluster_breakdown
from repro.metrics.records import CallRecord
from repro.metrics.stats import (
    BoxStats,
    SummaryStats,
    box_stats,
    percentile,
    summarize,
)
from repro.metrics.report import format_table, render_summary_table
from repro.metrics.serialize import (
    record_from_dict,
    record_to_dict,
    records_from_dicts,
    records_to_dicts,
)
from repro.metrics.streaming import (
    ExactSum,
    MetricsAccumulator,
    StreamingSummary,
    SummaryAccumulator,
    TDigest,
    merge_accumulators,
)

__all__ = [
    "BoxStats",
    "CallRecord",
    "ClusterBreakdown",
    "NodeUsage",
    "cluster_breakdown",
    "ExactSum",
    "MetricsAccumulator",
    "StreamingSummary",
    "SummaryAccumulator",
    "SummaryStats",
    "TDigest",
    "merge_accumulators",
    "box_stats",
    "format_table",
    "percentile",
    "record_from_dict",
    "record_to_dict",
    "records_from_dicts",
    "records_to_dicts",
    "render_boxplot",
    "render_summary_table",
    "summarize",
]
