"""JSON-compatible (de)serialization of call records.

The on-disk result cache (:mod:`repro.experiments.parallel`) persists
:class:`~repro.metrics.records.CallRecord` lists as JSON.  Python's ``json``
module emits floats with ``repr``, which round-trips IEEE-754 doubles
exactly, so a record loaded from the cache is bit-identical to the record
that was stored — the property the serial-vs-parallel identity tests rely
on.
"""

from __future__ import annotations

from dataclasses import fields
from typing import Any, Dict, Iterable, List, Sequence

from repro.metrics.records import CallRecord

__all__ = [
    "record_to_dict",
    "record_from_dict",
    "records_to_dicts",
    "records_from_dicts",
]

#: Field order is fixed by the dataclass definition, so serialized records
#: are stable across runs (useful for diffing cache entries).
_RECORD_FIELDS = tuple(f.name for f in fields(CallRecord))


def record_to_dict(record: CallRecord) -> Dict[str, Any]:
    """A JSON-compatible dict with one key per dataclass field."""
    return {name: getattr(record, name) for name in _RECORD_FIELDS}


def record_from_dict(data: Dict[str, Any]) -> CallRecord:
    """Inverse of :func:`record_to_dict`; ignores unknown keys so cache
    entries written by newer minor revisions still load when the record
    schema only grew."""
    return CallRecord(**{name: data[name] for name in _RECORD_FIELDS})


def records_to_dicts(records: Iterable[CallRecord]) -> List[Dict[str, Any]]:
    return [record_to_dict(r) for r in records]


def records_from_dicts(data: Sequence[Dict[str, Any]]) -> List[CallRecord]:
    return [record_from_dict(d) for d in data]
