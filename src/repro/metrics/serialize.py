"""JSON-compatible (de)serialization of call records.

The on-disk result cache (:mod:`repro.experiments.parallel`) persists
:class:`~repro.metrics.records.CallRecord` lists as JSON.  Python's ``json``
module emits floats with ``repr``, which round-trips IEEE-754 doubles
exactly, so a record loaded from the cache is bit-identical to the record
that was stored — the property the serial-vs-parallel identity tests rely
on.
"""

from __future__ import annotations

from dataclasses import fields
from typing import Any, Dict, Iterable, List, Sequence

from repro.metrics.records import CallRecord

__all__ = [
    "record_to_dict",
    "record_from_dict",
    "records_to_dicts",
    "records_from_dicts",
]

#: Field order is fixed by the dataclass definition, so serialized records
#: are stable across runs (useful for diffing cache entries).
_RECORD_FIELDS = tuple(f.name for f in fields(CallRecord))

#: Failure-injection fields are serialized *sparsely*: the failure-free
#: values are omitted, so records from the historical code path — and the
#: golden fingerprints computed over them — are byte-identical to before
#: the fields existed.
_SPARSE_DEFAULTS = {"attempts": 1, "outcome": "ok"}


def record_to_dict(record: CallRecord) -> Dict[str, Any]:
    """A JSON-compatible dict with one key per dataclass field (sparse
    fields omitted at their failure-free defaults)."""
    data = {}
    for name in _RECORD_FIELDS:
        value = getattr(record, name)
        if name in _SPARSE_DEFAULTS and value == _SPARSE_DEFAULTS[name]:
            continue
        data[name] = value
    return data


def record_from_dict(data: Dict[str, Any]) -> CallRecord:
    """Inverse of :func:`record_to_dict`; ignores unknown keys so cache
    entries written by newer minor revisions still load when the record
    schema only grew, and fills sparse fields with their defaults."""
    return CallRecord(
        **{
            name: data.get(name, _SPARSE_DEFAULTS[name]) if name in _SPARSE_DEFAULTS
            else data[name]
            for name in _RECORD_FIELDS
        }
    )


def records_to_dicts(records: Iterable[CallRecord]) -> List[Dict[str, Any]]:
    return [record_to_dict(r) for r in records]


def records_from_dicts(data: Sequence[Dict[str, Any]]) -> List[CallRecord]:
    return [record_from_dict(d) for d in data]
