"""Per-node (cluster-level) metric breakdowns.

Single-node experiments summarize over one invoker; cluster experiments
additionally need to answer *how well the fleet was used*: how calls
spread over invokers, how far utilization diverged between nodes, and how
often the balancer had to leave its preferred target.  This module
derives those views from data every result already carries — call records
(each names its serving invoker), per-node diagnostics, and the
balancer's routing counters — so cached results gain the breakdown
retroactively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.metrics.report import format_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import ExperimentResult

__all__ = ["NodeUsage", "ClusterBreakdown", "cluster_breakdown"]


@dataclass(frozen=True)
class NodeUsage:
    """How one invoker participated in a run."""

    name: str
    #: Measured (client-visible) calls the node served.
    calls: int
    #: Fraction of all measured calls (0..1).
    share: float
    #: Mean client response time of the node's calls (0 when idle).
    mean_response_time: float
    cpu_utilization: float
    cold_starts: int


@dataclass
class ClusterBreakdown:
    """Fleet-level view of one experiment result.

    Attributes
    ----------
    nodes:
        One :class:`NodeUsage` per invoker, in fleet order (autoscaled
        nodes appended after the initial fleet).
    imbalance:
        ``max / mean`` of per-node measured-call counts — ``1.0`` is a
        perfectly even spread, ``n`` means one node served everything.
    spill_rate:
        Fraction of routed calls the balancer placed off its preferred
        invoker (``0.0`` for balancers without a preference notion, and
        on the classic single-node path).
    balancer:
        Balancer flavour name, or ``None`` on the single-node path.
    scale_events:
        ``(sim time, new fleet size)`` pairs recorded by the autoscaler.
    """

    nodes: List[NodeUsage]
    imbalance: float
    spill_rate: float
    balancer: Optional[str] = None
    scale_events: List[List[float]] = field(default_factory=list)

    def render(self) -> str:
        rows = [
            [
                usage.name,
                usage.calls,
                usage.share,
                usage.mean_response_time,
                usage.cpu_utilization,
                usage.cold_starts,
            ]
            for usage in self.nodes
        ]
        title = "Cluster breakdown"
        if self.balancer:
            title += f" — balancer={self.balancer}"
        title += f" (imbalance x{self.imbalance:.2f}, spill rate {self.spill_rate:.1%})"
        if self.scale_events:
            title += f", {len(self.scale_events)} scale-out(s)"
        return format_table(
            ["node", "calls", "share", "R.avg", "cpu util", "colds"],
            rows,
            title=title,
        )


def cluster_breakdown(result: "ExperimentResult") -> ClusterBreakdown:
    """Derive the fleet-level breakdown of one experiment result."""
    counts: Dict[str, int] = {}
    response_sums: Dict[str, float] = {}
    for record in result.records:
        counts[record.invoker] = counts.get(record.invoker, 0) + 1
        response_sums[record.invoker] = (
            response_sums.get(record.invoker, 0.0) + record.response_time
        )
    total = len(result.records)

    nodes: List[NodeUsage] = []
    per_node_counts: List[int] = []
    for stats in result.node_stats:
        name = str(stats.get("name", f"node-{len(nodes)}"))
        calls = counts.pop(name, 0)
        per_node_counts.append(calls)
        nodes.append(
            NodeUsage(
                name=name,
                calls=calls,
                share=calls / total if total else 0.0,
                mean_response_time=response_sums.get(name, 0.0) / calls if calls else 0.0,
                cpu_utilization=float(stats.get("cpu_utilization", 0.0)),
                cold_starts=int(stats.get("cold_starts", 0)),
            )
        )
    # Records naming an invoker absent from node_stats would silently
    # vanish from the breakdown — that's a bookkeeping bug, not a state.
    if counts:
        raise ValueError(
            f"records reference invoker(s) missing from node_stats: "
            f"{sorted(counts)}"
        )

    mean_calls = sum(per_node_counts) / len(per_node_counts) if per_node_counts else 0.0
    imbalance = max(per_node_counts) / mean_calls if mean_calls else 1.0

    balancer_stats: Dict[str, Any] = result.balancer_stats or {}
    return ClusterBreakdown(
        nodes=nodes,
        imbalance=imbalance,
        spill_rate=float(balancer_stats.get("spill_rate", 0.0)),
        balancer=balancer_stats.get("balancer"),
        scale_events=[list(event) for event in balancer_stats.get("scale_events", [])],
    )
