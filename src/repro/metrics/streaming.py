"""Constant-memory streaming metrics: exact sums, quantile sketches, and
the accumulator that replaces full :class:`~repro.metrics.records.CallRecord`
retention.

A million-invocation (or an Azure-scale, ten-million-invocation) replay
cannot afford an O(invocations) record list.  This module folds each
completed call into constant-size state instead:

* :class:`ExactSum` — Shewchuk-style error-free summation (the algorithm
  behind :func:`math.fsum`).  The running value is the *correctly rounded*
  IEEE-754 sum of everything added, which makes it **order-independent**:
  folding calls in completion order, in rid order, or merging partial sums
  computed by different pool workers all yield bit-identical totals.  This
  is what lets streaming runs report the exact same means as retained
  runs, and lets cross-worker merges stay deterministic.

* :class:`TDigest` — a merging t-digest quantile sketch (Dunning &
  Ertl).  Centroid sizes are bounded by ``4·n·q(1-q)/δ`` (``δ`` =
  :attr:`~TDigest.compression`), so the sketch keeps ``O(δ·log(n/δ))``
  centroids — a few hundred at δ=200, growing only logarithmically with
  stream length — and estimates the ``q``-quantile
  with a *rank* error of at most ``q(1-q) · RANK_ERROR_FACTOR / δ``
  (see :meth:`TDigest.rank_error_bound`; the bound is deliberately
  generous and enforced by ``tests/metrics/test_streaming_quantiles.py``).
  Merging digests is supported and approximately commutative/associative:
  exact state differs with merge order, but every estimate stays within
  the documented bound of the exact quantile.

* :class:`SummaryAccumulator` — the :class:`MetricsAccumulator` protocol's
  reference implementation: counts, cold-start tallies, exact moment sums
  for mean/std, the max completion moment, and t-digests for response
  time and stretch.  ``add`` folds one record, ``merge`` combines
  accumulators across seeds or pool workers, ``summary`` renders a
  :class:`StreamingSummary` that is attribute-compatible with
  :class:`~repro.metrics.stats.SummaryStats` (reports and tables consume
  either).

Exactness contract: ``n_calls``, ``cold_starts``, ``max_completion_time``
and the means are **exact** (bit-identical across streaming/retained runs
and any merge order); only the percentiles are sketched, with the bound
above.  Golden-fingerprint runs therefore keep ``retain_records=True``
and the historical exact percentiles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Protocol, Tuple, runtime_checkable

from repro.metrics.records import CallRecord
from repro.metrics.stats import PAPER_PERCENTILES

__all__ = [
    "ExactSum",
    "TDigest",
    "MetricsAccumulator",
    "StreamingSummary",
    "SummaryAccumulator",
    "merge_accumulators",
]


class ExactSum:
    """Error-free streaming summation (Shewchuk's algorithm, as in
    ``math.fsum``).

    Keeps a list of non-overlapping partials whose exact sum equals the
    exact real sum of everything added; :attr:`value` rounds that to the
    nearest double.  The partial list stays tiny in practice (its length
    is bounded by the exponent range, ~40 for well-scaled data), so the
    accumulator is effectively constant-size.
    """

    __slots__ = ("_partials",)

    def __init__(self, partials: Optional[Iterable[float]] = None) -> None:
        self._partials: List[float] = []
        if partials:
            for x in partials:
                self.add(float(x))

    def add(self, x: float) -> None:
        """Fold *x* into the running sum, exactly."""
        partials = self._partials
        i = 0
        for y in partials:
            if abs(x) < abs(y):
                x, y = y, x
            hi = x + y
            lo = y - (hi - x)
            if lo:
                partials[i] = lo
                i += 1
            x = hi
        partials[i:] = [x]

    def merge(self, other: "ExactSum") -> None:
        """Fold another exact sum in; the result is the exact sum of the
        union, independent of merge order."""
        for x in other._partials:
            self.add(x)

    @property
    def value(self) -> float:
        """The correctly rounded sum of everything added so far.

        The partial decomposition depends on insertion order, but the
        exact real number it represents does not; ``math.fsum`` rounds
        that exact value correctly, so ``value`` is bit-identical across
        any add/merge order.
        """
        return math.fsum(self._partials)

    def to_list(self) -> List[float]:
        """JSON-compatible state (exact: partials are plain doubles)."""
        return list(self._partials)

    @classmethod
    def from_list(cls, partials: Iterable[float]) -> "ExactSum":
        return cls(partials)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExactSum({self.value!r})"


#: Safety factor in the documented t-digest rank-error bound (the merging
#: digest's theoretical per-centroid bound is ``2·n·q(1-q)/δ`` ranks;
#: interpolation plus repeated merges motivate the doubled headroom).
_RANK_ERROR_FACTOR = 4.0

#: Incoming values are buffered and merged in batches of
#: ``_BUFFER_FACTOR × compression`` — larger batches amortise the sort.
_BUFFER_FACTOR = 5


class TDigest:
    """A merging t-digest: streaming quantiles in bounded memory.

    Parameters
    ----------
    compression:
        The ``δ`` knob: more centroids → tighter quantiles → more memory.
        The default (200) keeps ``O(δ·log(n/δ))`` centroids (~550 at two
        thousand points, ~1.3k at ten million — tail ranks get singleton
        centroids, which is what buys the tight tail quantiles) and a
        worst-case rank error of ``q(1-q)·4/δ`` — at most 0.5% of ranks
        at the median, proportionally tighter in the tails (P99 error ≤
        0.02% of ranks).

    Determinism: compression is a pure function of the buffered points, so
    two digests fed the same stream are bit-identical — the property the
    streaming-vs-retained equivalence tests pin.
    """

    __slots__ = ("compression", "_means", "_weights", "_count", "_buffer", "_min", "_max")

    def __init__(self, compression: float = 200.0) -> None:
        if compression < 20:
            raise ValueError(f"compression must be >= 20, got {compression!r}")
        self.compression = float(compression)
        self._means: List[float] = []
        self._weights: List[float] = []
        self._count: float = 0.0
        self._buffer: List[Tuple[float, float]] = []
        self._min = float("inf")
        self._max = float("-inf")

    # ------------------------------------------------------------------
    @property
    def count(self) -> float:
        """Total weight added so far."""
        return self._count + sum(w for _, w in self._buffer)

    @property
    def centroid_count(self) -> int:
        """Compressed centroids currently held (diagnostic)."""
        return len(self._means)

    def rank_error_bound(self, q: float) -> float:
        """Documented worst-case *rank* error (as a fraction of ``n``) of
        :meth:`quantile` at quantile ``q``."""
        q = min(max(q, 0.0), 1.0)
        return max(q * (1.0 - q), 1e-3) * _RANK_ERROR_FACTOR / self.compression

    def add(self, x: float, w: float = 1.0) -> None:
        """Fold one observation of weight *w* into the sketch."""
        if w <= 0:
            raise ValueError(f"weight must be positive, got {w!r}")
        x = float(x)
        if x != x:  # NaN would silently poison every later estimate
            raise ValueError("cannot add NaN to a TDigest")
        self._buffer.append((x, float(w)))
        if x < self._min:
            self._min = x
        if x > self._max:
            self._max = x
        if len(self._buffer) >= _BUFFER_FACTOR * self.compression:
            self._compress()

    def merge(self, other: "TDigest") -> None:
        """Fold another digest in (approximately commutative: estimates
        from ``merge(a, b)`` and ``merge(b, a)`` agree within the rank
        bound, though internal centroids may differ)."""
        other._compress()
        for mean, weight in zip(other._means, other._weights):
            self._buffer.append((mean, weight))
        if other._min < self._min:
            self._min = other._min
        if other._max > self._max:
            self._max = other._max
        self._compress()

    # ------------------------------------------------------------------
    def _k_limit(self, cumulative: float, total: float) -> float:
        """Max weight of a centroid whose left edge sits at *cumulative*:
        the merging-digest size bound ``4·n·q(1-q)/δ`` (never below 1 so
        singletons always fit)."""
        q = cumulative / total
        return max(4.0 * total * q * (1.0 - q) / self.compression, 1.0)

    def _compress(self) -> None:
        """Merge buffered points into the centroid list (the merging
        t-digest's single pass over the sorted union)."""
        if not self._buffer:
            return
        points = sorted(
            list(zip(self._means, self._weights)) + self._buffer,
            key=lambda mw: mw[0],
        )
        self._buffer = []
        total = sum(w for _, w in points)
        means: List[float] = []
        weights: List[float] = []
        cum = 0.0  # weight fully to the left of the open centroid
        cur_mean, cur_weight = points[0]
        for mean, weight in points[1:]:
            if cur_weight + weight <= self._k_limit(cum + cur_weight / 2.0, total):
                # Weighted mean update keeps the centroid's center of mass.
                cur_weight += weight
                cur_mean += (mean - cur_mean) * (weight / cur_weight)
            else:
                means.append(cur_mean)
                weights.append(cur_weight)
                cum += cur_weight
                cur_mean, cur_weight = mean, weight
        means.append(cur_mean)
        weights.append(cur_weight)
        self._means = means
        self._weights = weights
        self._count = total

    # ------------------------------------------------------------------
    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``q`` in [0, 1]) of everything
        added so far; raises :class:`ValueError` on an empty sketch."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q!r}")
        self._compress()
        if not self._means:
            raise ValueError("cannot take a quantile of an empty sketch")
        means, weights, total = self._means, self._weights, self._count
        if len(means) == 1:
            return means[0]
        target = q * total
        # Walk centroids; centroid i's mass is centred at C_i = cum + w_i/2.
        cum = 0.0
        prev_center = None
        prev_mean = self._min
        for mean, weight in zip(means, weights):
            center = cum + weight / 2.0
            if target < center:
                if prev_center is None:
                    # Below the first centroid's center: lerp from the min.
                    span = center
                    frac = target / span if span > 0 else 0.0
                    return self._min + (mean - self._min) * frac
                span = center - prev_center
                frac = (target - prev_center) / span if span > 0 else 0.0
                return prev_mean + (mean - prev_mean) * frac
            cum += weight
            prev_center, prev_mean = center, mean
        # Above the last centroid's center: lerp to the max.
        span = total - prev_center
        frac = (target - prev_center) / span if span > 0 else 1.0
        return prev_mean + (self._max - prev_mean) * min(frac, 1.0)

    def percentile(self, p: float) -> float:
        """Estimate the *p*-th percentile (``p`` in [0, 100])."""
        return self.quantile(p / 100.0)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible state (floats round-trip exactly via ``repr``)."""
        self._compress()
        return {
            "compression": self.compression,
            "means": list(self._means),
            "weights": list(self._weights),
            "min": self._min,
            "max": self._max,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TDigest":
        digest = cls(compression=data["compression"])
        digest._means = [float(m) for m in data["means"]]
        digest._weights = [float(w) for w in data["weights"]]
        digest._count = sum(digest._weights)
        digest._min = float(data["min"])
        digest._max = float(data["max"])
        return digest

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<TDigest n={self.count:g} centroids={self.centroid_count} "
            f"compression={self.compression:g}>"
        )


@runtime_checkable
class MetricsAccumulator(Protocol):
    """What the runner/platform require of a streaming metrics sink.

    Implementations must be picklable (they cross the parallel engine's
    process boundary inside :class:`~repro.experiments.runner
    .ExperimentResult`) and mergeable (grid views pool per-seed
    accumulators the way retained mode pools record lists).
    """

    def add(self, record: CallRecord) -> None:
        """Fold one completed call in (called at response time)."""
        ...  # pragma: no cover - protocol

    def merge(self, other: "MetricsAccumulator") -> None:
        """Fold another accumulator in (cross-seed / cross-worker)."""
        ...  # pragma: no cover - protocol

    def summary(self) -> "StreamingSummary":
        """Render the constant-size state as summary statistics."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class StreamingSummary:
    """Summary statistics from a streaming accumulator.

    Attribute-compatible with :class:`~repro.metrics.stats.SummaryStats`
    (same field names, same ``response_percentile``/``stretch_percentile``
    /``as_row`` API), so report renderers accept either.  The percentile
    dicts hold *sketch estimates*; everything else is exact.
    """

    n_calls: int
    mean_response_time: float
    response_time_percentiles: dict
    mean_stretch: float
    stretch_percentiles: dict
    max_completion_time: float
    cold_starts: int
    #: Streaming standard deviations (population); ``SummaryStats`` has no
    #: counterpart — extra information, not a compatibility break.
    std_response_time: float = 0.0
    std_stretch: float = 0.0
    #: Failure-injection accounting (exact integers, zero on the
    #: failure-free path) — mirrors ``SummaryStats``.
    retries: int = 0
    gave_up: int = 0
    failed_calls: int = 0

    def response_percentile(self, q: int) -> float:
        return self.response_time_percentiles[q]

    def stretch_percentile(self, q: int) -> float:
        return self.stretch_percentiles[q]

    def as_row(self) -> List[float]:
        """Values in the paper's Table-III column order."""
        return [
            self.mean_response_time,
            *(self.response_time_percentiles[q] for q in PAPER_PERCENTILES),
            self.mean_stretch,
            *(self.stretch_percentiles[q] for q in PAPER_PERCENTILES),
            self.max_completion_time,
        ]


@dataclass
class SummaryAccumulator:
    """Constant-size fold of completed calls (the default accumulator).

    Exact fields (order- and merge-order-independent, bit-identical to a
    retained run): ``n_calls``, ``cold_starts``, ``max_completion_time``,
    the response/stretch means (via :class:`ExactSum`), and the second
    moments behind the streaming standard deviations.  Sketched fields:
    the response/stretch percentiles (:class:`TDigest`, rank error per
    :meth:`TDigest.rank_error_bound`).
    """

    compression: float = 200.0
    n_calls: int = 0
    cold_starts: int = 0
    retries: int = 0
    gave_up: int = 0
    failed_calls: int = 0
    max_completion_time: float = float("-inf")
    response_sum: ExactSum = field(default_factory=ExactSum)
    response_sumsq: ExactSum = field(default_factory=ExactSum)
    stretch_sum: ExactSum = field(default_factory=ExactSum)
    stretch_sumsq: ExactSum = field(default_factory=ExactSum)
    response_digest: TDigest = field(default=None)  # type: ignore[assignment]
    stretch_digest: TDigest = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.response_digest is None:
            self.response_digest = TDigest(self.compression)
        if self.stretch_digest is None:
            self.stretch_digest = TDigest(self.compression)

    # ------------------------------------------------------------------
    def add(self, record: CallRecord) -> None:
        """Fold one completed call in."""
        response = record.response_time
        stretch = record.stretch
        self.n_calls += 1
        if record.cold_start:
            self.cold_starts += 1
        # Same accounting as repro.metrics.stats.summarize, so retained
        # and streaming runs report identical failure counters.
        self.retries += record.attempts - 1
        if record.outcome == "gave-up":
            self.gave_up += 1
        self.failed_calls += (record.attempts - 1) + (1 if record.outcome != "ok" else 0)
        if record.completed_at > self.max_completion_time:
            self.max_completion_time = record.completed_at
        self.response_sum.add(response)
        self.response_sumsq.add(response * response)
        self.stretch_sum.add(stretch)
        self.stretch_sumsq.add(stretch * stretch)
        self.response_digest.add(response)
        self.stretch_digest.add(stretch)

    def merge(self, other: "SummaryAccumulator") -> None:
        """Fold another accumulator in.  Exact fields combine exactly
        (any merge order gives bit-identical values); digests combine
        within their rank bound."""
        self.n_calls += other.n_calls
        self.cold_starts += other.cold_starts
        self.retries += other.retries
        self.gave_up += other.gave_up
        self.failed_calls += other.failed_calls
        if other.max_completion_time > self.max_completion_time:
            self.max_completion_time = other.max_completion_time
        self.response_sum.merge(other.response_sum)
        self.response_sumsq.merge(other.response_sumsq)
        self.stretch_sum.merge(other.stretch_sum)
        self.stretch_sumsq.merge(other.stretch_sumsq)
        self.response_digest.merge(other.response_digest)
        self.stretch_digest.merge(other.stretch_digest)

    # ------------------------------------------------------------------
    @staticmethod
    def _std(sumsq: ExactSum, total: ExactSum, n: int) -> float:
        mean = total.value / n
        variance = sumsq.value / n - mean * mean
        return variance**0.5 if variance > 0 else 0.0

    def summary(self) -> StreamingSummary:
        """The accumulated statistics; raises on an empty accumulator
        (mirroring :func:`repro.metrics.stats.summarize`)."""
        if self.n_calls == 0:
            raise ValueError("cannot summarize zero records")
        n = self.n_calls
        return StreamingSummary(
            n_calls=n,
            mean_response_time=self.response_sum.value / n,
            response_time_percentiles={
                q: self.response_digest.percentile(q) for q in PAPER_PERCENTILES
            },
            mean_stretch=self.stretch_sum.value / n,
            stretch_percentiles={
                q: self.stretch_digest.percentile(q) for q in PAPER_PERCENTILES
            },
            max_completion_time=self.max_completion_time,
            cold_starts=self.cold_starts,
            std_response_time=self._std(self.response_sumsq, self.response_sum, n),
            std_stretch=self._std(self.stretch_sumsq, self.stretch_sum, n),
            retries=self.retries,
            gave_up=self.gave_up,
            failed_calls=self.failed_calls,
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible state for the on-disk result cache."""
        return {
            "compression": self.compression,
            "n_calls": self.n_calls,
            "cold_starts": self.cold_starts,
            "retries": self.retries,
            "gave_up": self.gave_up,
            "failed_calls": self.failed_calls,
            "max_completion_time": self.max_completion_time,
            "response_sum": self.response_sum.to_list(),
            "response_sumsq": self.response_sumsq.to_list(),
            "stretch_sum": self.stretch_sum.to_list(),
            "stretch_sumsq": self.stretch_sumsq.to_list(),
            "response_digest": self.response_digest.to_dict(),
            "stretch_digest": self.stretch_digest.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SummaryAccumulator":
        return cls(
            compression=data["compression"],
            n_calls=int(data["n_calls"]),
            cold_starts=int(data["cold_starts"]),
            retries=int(data.get("retries", 0)),
            gave_up=int(data.get("gave_up", 0)),
            failed_calls=int(data.get("failed_calls", 0)),
            max_completion_time=float(data["max_completion_time"]),
            response_sum=ExactSum.from_list(data["response_sum"]),
            response_sumsq=ExactSum.from_list(data["response_sumsq"]),
            stretch_sum=ExactSum.from_list(data["stretch_sum"]),
            stretch_sumsq=ExactSum.from_list(data["stretch_sumsq"]),
            response_digest=TDigest.from_dict(data["response_digest"]),
            stretch_digest=TDigest.from_dict(data["stretch_digest"]),
        )


def merge_accumulators(
    accumulators: Iterable[SummaryAccumulator],
) -> SummaryAccumulator:
    """Pool accumulators (per-seed, per-worker, per-node) into one.

    The streaming counterpart of pooling record lists: exact fields are
    merge-order-independent, so parallel and serial grids pool to
    bit-identical counts/means/makespans.
    """
    merged: Optional[SummaryAccumulator] = None
    for acc in accumulators:
        if merged is None:
            merged = SummaryAccumulator(compression=acc.compression)
        merged.merge(acc)
    if merged is None:
        raise ValueError("cannot merge zero accumulators")
    return merged
