"""ASCII rendering of the paper's box plots.

Matplotlib is not available in the offline environment, so the figure
experiments render their box statistics as text-mode box plots — enough
to eyeball the shapes the paper's Figures 3-5 show (log-scale stretch
panels included).
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.metrics.stats import BoxStats

__all__ = ["render_boxplot"]

_DEFAULT_WIDTH = 60


def render_boxplot(
    entries: Sequence[Tuple[str, BoxStats]],
    title: str = "",
    width: int = _DEFAULT_WIDTH,
    log_scale: bool = False,
    unit: str = "",
) -> str:
    """Render labelled box plots on a shared horizontal axis.

    Each row draws ``|whisker---[ q1 | median | q3 ]---whisker|`` with the
    mean marked ``*`` (clamped into the axis if it falls outside the
    whisker span, like the paper's green triangles).
    """
    if not entries:
        raise ValueError("no boxes to render")
    if width < 20:
        raise ValueError("width too small to draw a box plot")

    lo = min(stats.whisker_low for _, stats in entries)
    hi = max(max(stats.whisker_high, stats.mean) for _, stats in entries)
    if log_scale:
        floor = min(
            [stats.whisker_low for _, stats in entries if stats.whisker_low > 0]
            or [1e-3]
        )
        transform = lambda v: math.log10(max(v, floor))  # noqa: E731
        lo, hi = transform(max(lo, floor)), transform(max(hi, floor))
    else:
        transform = lambda v: v  # noqa: E731
    span = hi - lo or 1.0

    def column(value: float) -> int:
        fraction = (transform(value) - lo) / span
        return max(0, min(width - 1, int(round(fraction * (width - 1)))))

    label_width = max(len(label) for label, _ in entries)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, stats in entries:
        row = [" "] * width
        w_lo, q1, med, q3, w_hi = (
            column(stats.whisker_low),
            column(stats.q1),
            column(stats.median),
            column(stats.q3),
            column(stats.whisker_high),
        )
        for i in range(w_lo, w_hi + 1):
            row[i] = "-"
        for i in range(q1, q3 + 1):
            row[i] = "="
        row[w_lo] = "|"
        row[w_hi] = "|"
        row[q1] = "["
        row[q3] = "]"
        row[column(stats.mean)] = "*"
        row[med] = "#"  # median wins when it coincides with the mean
        lines.append(
            f"{label.rjust(label_width)}  {''.join(row)}  "
            f"med={stats.median:.3g}{unit} mean={stats.mean:.3g}{unit}"
        )
    scale = "log10" if log_scale else "linear"
    lines.append(
        f"{' ' * label_width}  axis: {scale}, "
        f"[{_fmt_axis(lo, log_scale)} .. {_fmt_axis(hi, log_scale)}]{unit}"
    )
    return "\n".join(lines)


def _fmt_axis(value: float, log_scale: bool) -> str:
    if log_scale:
        return f"{10 ** value:.3g}"
    return f"{value:.3g}"
