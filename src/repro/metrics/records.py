"""Per-call measurement records (the client's view, as Gatling reports)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.node.invoker import NodeCallInfo

__all__ = ["CallRecord"]


@dataclass(frozen=True)
class CallRecord:
    """End-to-end measurement of one call.

    Times follow the paper's notation: the request is generated at
    ``r(i)`` (:attr:`release_time`), received by the invoker at ``r'(i)``
    (:attr:`received_at`), and its response reaches the client at ``c(i)``
    (:attr:`completed_at`).
    """

    rid: int
    function_name: str
    invoker: str
    release_time: float
    received_at: float
    dispatched_at: float
    exec_start: float
    exec_end: float
    completed_at: float
    service_time: float
    #: Idle-system median response time of the function — the stretch
    #: denominator the paper uses (Sect. V-A).
    reference_response_time: float
    cold_start: bool
    start_kind: str
    #: Attempts the client made (1 unless failure injection retried).
    attempts: int = 1
    #: Final disposition: ``"ok"`` or ``"gave-up"`` (retry budget
    #: exhausted under failure injection — see docs/FAILURES.md).
    outcome: str = "ok"

    @property
    def response_time(self) -> float:
        """``R(i) = c(i) - r(i)``."""
        return self.completed_at - self.release_time

    @property
    def stretch(self) -> float:
        """``S(i) = R(i) / p̃(f(i))`` with the Table-I median as p̃;
        like the paper's, this can fall below 1."""
        return self.response_time / self.reference_response_time

    @property
    def wait_time(self) -> float:
        """Queueing delay at the invoker."""
        return self.dispatched_at - self.received_at

    @property
    def processing_time(self) -> float:
        """Node-measured execution duration."""
        return self.exec_end - self.exec_start

    @property
    def failed(self) -> bool:
        return self.outcome != "ok"

    @classmethod
    def from_node_info(
        cls,
        info: "NodeCallInfo",
        completed_at: float,
        attempts: int = 1,
        outcome: str = "ok",
    ) -> "CallRecord":
        """Assemble a client record from node-level info plus the moment
        the response reached the client."""
        request = info.request
        return cls(
            rid=request.rid,
            function_name=request.function.name,
            invoker=info.invoker,
            release_time=request.release_time,
            received_at=info.received_at,
            dispatched_at=info.dispatched_at,
            exec_start=info.exec_start,
            exec_end=info.exec_end,
            completed_at=completed_at,
            service_time=request.service_time,
            reference_response_time=request.function.median_response_time,
            cold_start=info.cold_start,
            start_kind=info.start_kind,
            attempts=attempts,
            outcome=outcome,
        )
