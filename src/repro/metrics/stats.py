"""Aggregate statistics over call records (paper Tables III-VI).

The paper reports, per (cores, intensity, strategy): average, 50th, 75th,
95th and 99th percentiles of both response time ``R(i)`` and stretch
``S(i)``, plus the maximum completion moment ``max c(i)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from repro.metrics.records import CallRecord

__all__ = ["SummaryStats", "BoxStats", "percentile", "summarize", "box_stats"]

#: Percentiles the paper tabulates.
PAPER_PERCENTILES = (50, 75, 95, 99)


def percentile(values: Sequence[float], q: float) -> float:
    """Percentile with linear interpolation (numpy's default), matching
    what pandas/matplotlib-based paper tooling computes."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot take a percentile of no data")
    return float(np.percentile(arr, q))


@dataclass(frozen=True)
class BoxStats:
    """Box-plot statistics as drawn in the paper's figures: quartile box,
    median, mean, and 1.5·IQR whiskers."""

    q1: float
    median: float
    q3: float
    mean: float
    whisker_low: float
    whisker_high: float
    n: int

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "BoxStats":
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            raise ValueError("cannot compute box stats of no data")
        q1, med, q3 = (float(np.percentile(arr, q)) for q in (25, 50, 75))
        iqr = q3 - q1
        lo_limit, hi_limit = q1 - 1.5 * iqr, q3 + 1.5 * iqr
        in_lo = arr[arr >= lo_limit]
        in_hi = arr[arr <= hi_limit]
        whisker_low = float(in_lo.min()) if in_lo.size else float(arr.min())
        whisker_high = float(in_hi.max()) if in_hi.size else float(arr.max())
        # Whiskers are drawn from the box edges: clamp so they never cross
        # the box (possible when every value beyond a quartile is an outlier).
        whisker_low = min(whisker_low, q1)
        whisker_high = max(whisker_high, q3)
        return cls(q1, med, q3, float(arr.mean()), whisker_low, whisker_high, int(arr.size))


def box_stats(values: Sequence[float]) -> BoxStats:
    """Convenience alias for :meth:`BoxStats.from_values`."""
    return BoxStats.from_values(values)


@dataclass(frozen=True)
class SummaryStats:
    """One row of the paper's Table III/IV (or V/VI without stretch)."""

    n_calls: int
    mean_response_time: float
    response_time_percentiles: dict
    mean_stretch: float
    stretch_percentiles: dict
    max_completion_time: float
    cold_starts: int
    #: Failure-injection accounting (all zero on the failure-free path):
    #: extra attempts beyond the first, calls that exhausted their retry
    #: budget, and failed attempts overall (see docs/FAILURES.md).
    retries: int = 0
    gave_up: int = 0
    failed_calls: int = 0

    def response_percentile(self, q: int) -> float:
        return self.response_time_percentiles[q]

    def stretch_percentile(self, q: int) -> float:
        return self.stretch_percentiles[q]

    def as_row(self) -> List[float]:
        """Values in the paper's Table-III column order."""
        return [
            self.mean_response_time,
            *(self.response_time_percentiles[q] for q in PAPER_PERCENTILES),
            self.mean_stretch,
            *(self.stretch_percentiles[q] for q in PAPER_PERCENTILES),
            self.max_completion_time,
        ]


def summarize(records: Iterable[CallRecord]) -> SummaryStats:
    """Aggregate call records into the paper's summary statistics."""
    records = list(records)
    if not records:
        raise ValueError("cannot summarize zero records")
    responses = np.array([r.response_time for r in records])
    stretches = np.array([r.stretch for r in records])
    completions = np.array([r.completed_at for r in records])
    return SummaryStats(
        n_calls=len(records),
        mean_response_time=float(responses.mean()),
        response_time_percentiles={
            q: float(np.percentile(responses, q)) for q in PAPER_PERCENTILES
        },
        mean_stretch=float(stretches.mean()),
        stretch_percentiles={
            q: float(np.percentile(stretches, q)) for q in PAPER_PERCENTILES
        },
        max_completion_time=float(completions.max()),
        cold_starts=sum(1 for r in records if r.cold_start),
        retries=sum(r.attempts - 1 for r in records),
        gave_up=sum(1 for r in records if r.outcome == "gave-up"),
        failed_calls=sum(
            (r.attempts - 1) + (1 if r.outcome != "ok" else 0) for r in records
        ),
    )
