"""Statistically honest comparisons over per-seed metric distributions.

Every policy-vs-policy number in this repo used to be a point-estimate
delta ("FC looks ~12% faster").  The paper's rankings (Table IV) rest on
*distributions* — five (or twenty, or an adaptively chosen number of)
seeds per cell — so this module replaces eyeballing with proper tests:

* :func:`mann_whitney_u` — the Mann-Whitney U rank-sum test.  **Exact**
  null distribution (dynamic-programming enumeration, cached per sample
  size) for small tie-free samples; normal approximation **with tie
  correction** and continuity correction otherwise.  Pure stdlib — no
  scipy.
* :func:`bootstrap_diff_ci` — percentile or BCa bootstrap confidence
  intervals for the difference of a statistic (mean by default), driven
  by a **deterministic, config-seeded PRNG** so every rerun produces the
  same interval.
* :func:`cliffs_delta` — the Cliff's delta effect size (how often an A
  value exceeds a B value, in [-1, 1]) with the conventional
  negligible/small/medium/large magnitude labels.
* :func:`holm_bonferroni` — step-down multiple-comparison correction
  across a family of tests (the metric × cell grid), which never rejects
  more than the uncorrected tests would.

The user-facing surface is :func:`compare_results` (two repetition runs →
:class:`ComparisonResult`) and :func:`compare_grid` (two strategies
inside one grid → :class:`GridComparison`, Holm-corrected across every
metric × cell), consumed by ``faas-sched compare``, the adaptive seed
allocator (:mod:`repro.experiments.adaptive`) and the significance-tested
bench gate (``tools/bench_compare.py``).  Both consume retained *and*
streaming results: per-seed metric values come from
``ExperimentResult.summary()`` when records were retained and from the
constant-size accumulator otherwise — exact metrics (means, cold starts,
makespan) are bit-identical across modes, sketched percentiles agree
within the t-digest rank bound (docs/COMPARISONS.md, docs/STREAMING.md).

Every metric here is *lower-is-better* (response time, stretch, cold
starts, makespan), so a negative difference means A wins.
"""

from __future__ import annotations

import bisect
import hashlib
import math
import random
import re
from dataclasses import dataclass, replace
from functools import lru_cache
from statistics import NormalDist
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.metrics.report import format_table

__all__ = [
    "COMPARE_METRICS",
    "DEFAULT_METRICS",
    "MannWhitneyResult",
    "BootstrapCI",
    "MetricComparison",
    "ComparisonResult",
    "GridComparison",
    "mann_whitney_u",
    "cliffs_delta",
    "effect_magnitude",
    "bootstrap_diff_ci",
    "holm_bonferroni",
    "compare_samples",
    "compare_results",
    "compare_grid",
    "seed_metric_values",
    "summary_of",
]

_NORMAL = NormalDist()

#: Largest per-sample size for which the exact Mann-Whitney null
#: distribution is enumerated (DP table of O(n·m·nm) entries, cached per
#: ``(n, m)``); larger — or tied — samples use the normal approximation.
EXACT_LIMIT = 25


# ----------------------------------------------------------------------
# Mann-Whitney U
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MannWhitneyResult:
    """One two-sided Mann-Whitney U test.

    ``u_statistic`` is U for the *first* sample (small U ⇒ A's values sit
    below B's); ``method`` records whether the p-value came from the
    exact null distribution (``"exact"``) or the tie-corrected normal
    approximation (``"normal"``).
    """

    u_statistic: float
    p_value: float
    method: str
    n_a: int
    n_b: int


def _check_samples(a: Sequence[float], b: Sequence[float], what: str) -> None:
    if len(a) == 0 or len(b) == 0:
        raise ValueError(
            f"cannot run {what} on empty samples (got n_a={len(a)}, "
            f"n_b={len(b)}); each side needs at least one per-seed value — "
            f"run the experiment with at least one seed per side"
        )
    for name, values in (("A", a), ("B", b)):
        for x in values:
            if x != x:  # NaN comparisons silently corrupt every rank
                raise ValueError(f"sample {name} contains NaN; {what} is undefined")


def _midranks(pooled: Sequence[float]) -> Tuple[List[float], List[int]]:
    """Midranks of ``pooled`` (ties share the average rank) plus the tie
    group sizes (for the normal approximation's tie correction)."""
    order = sorted(range(len(pooled)), key=lambda i: pooled[i])
    ranks = [0.0] * len(pooled)
    tie_sizes: List[int] = []
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and pooled[order[j + 1]] == pooled[order[i]]:
            j += 1
        # Positions i..j (0-based) share the average of ranks i+1..j+1.
        mid = (i + j + 2) / 2.0
        for k in range(i, j + 1):
            ranks[order[k]] = mid
        tie_sizes.append(j - i + 1)
        i = j + 1
    return ranks, tie_sizes


@lru_cache(maxsize=None)
def _exact_u_cdf(n: int, m: int) -> Tuple[float, ...]:
    """``P(U <= u)`` for ``u`` in ``0..n·m`` under the tie-free null.

    Classic DP over the number of arrangements of ``n`` A-ranks among
    ``n + m`` positions achieving each U value:
    ``count(n, m, u) = count(n-1, m, u-m) + count(n, m-1, u)``.
    Cached per ``(n, m)`` so repeated small-sample tests (the calibration
    suite runs thousands) pay the table once.
    """
    max_u = n * m
    # N(u; i, j): arrangements of i A-ranks and j B-ranks with U = u.
    # Condition on the largest pooled value: an A beats all j B's
    # (N(u - j; i-1, j)), a B beats nothing (N(u; i, j-1)).
    # table[j][u] holds N(u; i, j) for the current i.
    table = [[1 if u == 0 else 0 for u in range(max_u + 1)] for _ in range(m + 1)]
    for _ in range(n):  # i = 1..n
        new = [[1 if u == 0 else 0 for u in range(max_u + 1)]]  # j = 0
        for j in range(1, m + 1):
            prev_i = table[j]
            same_i = new[j - 1]
            new.append(
                [
                    same_i[u] + (prev_i[u - j] if u >= j else 0)
                    for u in range(max_u + 1)
                ]
            )
        table = new
    counts_row = table[m]
    total = math.comb(n + m, n)
    cdf: List[float] = []
    running = 0
    for u in range(max_u + 1):
        running += counts_row[u]
        cdf.append(running / total)
    return tuple(cdf)


def mann_whitney_u(
    a: Sequence[float],
    b: Sequence[float],
    *,
    exact_limit: int = EXACT_LIMIT,
) -> MannWhitneyResult:
    """Two-sided Mann-Whitney U test of ``a`` vs ``b``.

    Exact p-value (enumerated null distribution) when both samples have
    at most ``exact_limit`` values and the pooled data is tie-free;
    normal approximation with tie correction and a 0.5 continuity
    correction otherwise.  All-tied pools (zero rank variance) return
    ``p = 1.0`` — no evidence of any difference.
    """
    _check_samples(a, b, "a Mann-Whitney U test")
    n, m = len(a), len(b)
    pooled = list(a) + list(b)
    ranks, tie_sizes = _midranks(pooled)
    rank_sum_a = sum(ranks[:n])
    u_a = rank_sum_a - n * (n + 1) / 2.0
    has_ties = any(size > 1 for size in tie_sizes)

    if not has_ties and n <= exact_limit and m <= exact_limit:
        cdf = _exact_u_cdf(n, m)
        u_int = int(round(u_a))
        u_min = min(u_int, n * m - u_int)
        p = min(1.0, 2.0 * cdf[u_min])
        return MannWhitneyResult(u_a, p, "exact", n, m)

    total = n + m
    mu = n * m / 2.0
    tie_term = sum(t**3 - t for t in tie_sizes)
    variance = n * m / 12.0 * ((total + 1) - tie_term / (total * (total - 1)))
    if variance <= 0:
        # Every pooled value identical: the test carries no information.
        return MannWhitneyResult(u_a, 1.0, "normal", n, m)
    # Continuity correction shrinks |U - mu| by 0.5 (never past zero).
    z = (abs(u_a - mu) - 0.5) / math.sqrt(variance)
    z = max(z, 0.0)
    p = min(1.0, 2.0 * (1.0 - _NORMAL.cdf(z)))
    return MannWhitneyResult(u_a, p, "normal", n, m)


# ----------------------------------------------------------------------
# Effect size
# ----------------------------------------------------------------------
#: Romano et al. magnitude thresholds for |Cliff's delta|.
_MAGNITUDES = ((0.147, "negligible"), (0.33, "small"), (0.474, "medium"))


def cliffs_delta(a: Sequence[float], b: Sequence[float]) -> float:
    """Cliff's delta: ``P(A > B) - P(A < B)`` over all cross pairs.

    ``+1`` means every A value exceeds every B value, ``-1`` the reverse,
    ``0`` perfect overlap.  With lower-is-better metrics, negative delta
    favours A.
    """
    _check_samples(a, b, "Cliff's delta")
    sorted_b = sorted(b)
    n, m = len(a), len(b)
    greater = 0
    less = 0
    # Two binary searches per A value: O((n+m) log m) instead of O(n·m).
    for x in a:
        less += len(sorted_b) - bisect.bisect_right(sorted_b, x)  # b > x
        greater += bisect.bisect_left(sorted_b, x)  # b < x
    return (greater - less) / (n * m)


def effect_magnitude(delta: float) -> str:
    """The conventional label for a Cliff's delta value."""
    magnitude = abs(delta)
    for threshold, label in _MAGNITUDES:
        if magnitude < threshold:
            return label
    return "large"


# ----------------------------------------------------------------------
# Bootstrap confidence intervals
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BootstrapCI:
    """A bootstrap confidence interval for ``statistic(A) - statistic(B)``.

    ``point`` is the observed difference; ``low``/``high`` bound it at the
    given confidence.  ``seed`` is the PRNG seed actually used, so any
    interval can be reproduced exactly.
    """

    low: float
    high: float
    point: float
    confidence: float
    method: str
    resamples: int
    seed: int

    def excludes_zero(self) -> bool:
        """Whether the interval separates the two samples (no overlap
        with "no difference")."""
        return self.low > 0.0 or self.high < 0.0


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def _quantile_of(sorted_values: Sequence[float], q: float) -> float:
    """Empirical quantile of an ascending list (nearest-rank with the
    conventional ``ceil(q·B) - 1`` index, clamped)."""
    b = len(sorted_values)
    index = min(b - 1, max(0, math.ceil(q * b) - 1))
    return sorted_values[index]


def bootstrap_diff_ci(
    a: Sequence[float],
    b: Sequence[float],
    *,
    statistic: Callable[[Sequence[float]], float] = _mean,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
    method: str = "bca",
) -> BootstrapCI:
    """Bootstrap CI for ``statistic(a) - statistic(b)`` (independent
    resampling of each side).

    ``method="bca"`` (the default) applies bias correction and
    acceleration (jackknife skewness); it falls back to the plain
    percentile interval when a sample is too small to jackknife (fewer
    than two values per side) or the bootstrap distribution is fully
    one-sided.  The PRNG is ``random.Random(seed)`` — deterministic, and
    independent of any global state.
    """
    _check_samples(a, b, "a bootstrap confidence interval")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence!r}")
    if resamples < 10:
        raise ValueError(f"resamples must be >= 10, got {resamples!r}")
    if method not in ("bca", "percentile"):
        raise ValueError(f"method must be 'bca' or 'percentile', got {method!r}")
    rng = random.Random(seed)
    point = statistic(a) - statistic(b)
    thetas = sorted(
        statistic(rng.choices(a, k=len(a))) - statistic(rng.choices(b, k=len(b)))
        for _ in range(resamples)
    )
    tail = (1.0 - confidence) / 2.0
    lo_q, hi_q = tail, 1.0 - tail

    used_method = method
    if method == "bca":
        adjusted = _bca_quantiles(a, b, statistic, point, thetas, lo_q, hi_q)
        if adjusted is None:
            used_method = "percentile"
        else:
            lo_q, hi_q = adjusted
    low = _quantile_of(thetas, lo_q)
    high = _quantile_of(thetas, hi_q)
    return BootstrapCI(low, high, point, confidence, used_method, resamples, seed)


def _bca_quantiles(
    a: Sequence[float],
    b: Sequence[float],
    statistic: Callable[[Sequence[float]], float],
    point: float,
    sorted_thetas: Sequence[float],
    lo_q: float,
    hi_q: float,
) -> Optional[Tuple[float, float]]:
    """BCa-adjusted tail quantiles, or ``None`` when the correction is
    undefined (degenerate bootstrap distribution or un-jackknifeable
    samples) and the percentile interval should be used instead."""
    if len(a) < 2 or len(b) < 2:
        return None
    count = len(sorted_thetas)
    below = sum(1 for t in sorted_thetas if t < point)
    equal = sum(1 for t in sorted_thetas if t == point)
    p0 = (below + 0.5 * equal) / count
    # A fully one-sided distribution makes inv_cdf blow up; percentile
    # handles that regime more honestly than a clamped z0 would.
    if p0 <= 0.0 or p0 >= 1.0:
        return None
    z0 = _NORMAL.inv_cdf(p0)
    # Jackknife over both samples for the acceleration constant.
    jack: List[float] = []
    stat_b = statistic(b)
    for i in range(len(a)):
        jack.append(statistic([x for k, x in enumerate(a) if k != i]) - stat_b)
    stat_a = statistic(a)
    for j in range(len(b)):
        jack.append(stat_a - statistic([x for k, x in enumerate(b) if k != j]))
    jbar = _mean(jack)
    cubes = sum((jbar - v) ** 3 for v in jack)
    squares = sum((jbar - v) ** 2 for v in jack)
    # squares > 0 does not guarantee squares**1.5 > 0: for deviations
    # around 1e-157 the 1.5 power underflows to exactly 0.0.
    denom = 6.0 * squares**1.5
    accel = cubes / denom if denom > 0 else 0.0

    def adjust(q: float) -> float:
        z = _NORMAL.inv_cdf(q)
        denom = 1.0 - accel * (z0 + z)
        if denom <= 0:
            return 1.0 if z0 + z > 0 else 0.0
        adj = _NORMAL.cdf(z0 + (z0 + z) / denom)
        return min(max(adj, 0.0), 1.0)

    return adjust(lo_q), adjust(hi_q)


# ----------------------------------------------------------------------
# Multiple-comparison correction
# ----------------------------------------------------------------------
def holm_bonferroni(
    p_values: Sequence[float], alpha: float = 0.05
) -> List[Tuple[float, bool]]:
    """Holm-Bonferroni step-down correction.

    Returns ``(adjusted_p, reject)`` per input p-value, in input order.
    Adjusted p-values are monotone (``p_adj >= p``), so the corrected
    procedure can never reject a hypothesis the uncorrected tests would
    retain — the family-wise error rate stays at ``alpha``.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha!r}")
    m = len(p_values)
    if m == 0:
        return []
    for p in p_values:
        if not 0.0 <= p <= 1.0 or p != p:
            raise ValueError(f"p-values must be in [0, 1], got {p!r}")
    order = sorted(range(m), key=lambda i: p_values[i])
    adjusted = [0.0] * m
    running_max = 0.0
    for rank, idx in enumerate(order):
        stepped = min(1.0, (m - rank) * p_values[idx])
        running_max = max(running_max, stepped)
        adjusted[idx] = running_max
    return [(adjusted[i], adjusted[i] <= alpha) for i in range(m)]


# ----------------------------------------------------------------------
# Per-seed metric extraction
# ----------------------------------------------------------------------
#: Metric name → extractor over a summary (``SummaryStats`` or the
#: attribute-compatible ``StreamingSummary``).  All lower-is-better.
COMPARE_METRICS: Dict[str, Callable[[Any], float]] = {
    "mean_response_time": lambda s: s.mean_response_time,
    "p50_response_time": lambda s: s.response_time_percentiles[50],
    "p95_response_time": lambda s: s.response_time_percentiles[95],
    "p99_response_time": lambda s: s.response_time_percentiles[99],
    "mean_stretch": lambda s: s.mean_stretch,
    "p99_stretch": lambda s: s.stretch_percentiles[99],
    "cold_starts": lambda s: float(s.cold_starts),
    "makespan": lambda s: s.max_completion_time,
    # Failure-injection accounting (zero on the failure-free path; getattr
    # keeps summaries cached before the counters existed comparable).
    "retries": lambda s: float(getattr(s, "retries", 0)),
    "gave_up": lambda s: float(getattr(s, "gave_up", 0)),
    "failed_calls": lambda s: float(getattr(s, "failed_calls", 0)),
}

#: The acceptance-relevant default family: mean/p99 of both response time
#: and stretch, plus cold starts.
DEFAULT_METRICS: Tuple[str, ...] = (
    "mean_response_time",
    "p99_response_time",
    "mean_stretch",
    "p99_stretch",
    "cold_starts",
)


def summary_of(result: Any) -> Any:
    """Per-seed summary of one :class:`ExperimentResult` in whichever
    mode it ran: exact record-derived statistics when records were
    retained, the constant-size accumulator's view otherwise."""
    if getattr(result, "retained", True):
        return result.summary()
    return result.streaming_summary()


def _resolve_metrics(metrics: Optional[Sequence[str]]) -> Tuple[str, ...]:
    names = tuple(metrics) if metrics is not None else DEFAULT_METRICS
    unknown = [name for name in names if name not in COMPARE_METRICS]
    if unknown:
        raise ValueError(
            f"unknown comparison metric(s) {unknown}; available: "
            f"{', '.join(COMPARE_METRICS)}"
        )
    if not names:
        raise ValueError("at least one comparison metric is required")
    return names


def seed_metric_values(results: Sequence[Any], metric: str) -> List[float]:
    """One value per result (per seed) for ``metric``; the input to every
    test in this module."""
    (name,) = _resolve_metrics((metric,))
    extractor = COMPARE_METRICS[name]
    return [float(extractor(summary_of(result))) for result in results]


def _config_label(config: Any) -> str:
    """A config's label with the seed stripped — the identity of a
    repetition *set*, not of one run."""
    return re.sub(r" seed=\d+", "", config.label())


def derive_seed(*parts: Any) -> int:
    """A deterministic 63-bit PRNG seed from string-able parts (config
    labels, metric names) — stable across processes and Python versions,
    unlike ``hash()``."""
    blob = "\x1f".join(str(part) for part in parts).encode("utf-8")
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big") >> 1


# ----------------------------------------------------------------------
# Comparison results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MetricComparison:
    """One metric's A-vs-B test battery.

    ``diff = mean_a - mean_b`` (negative favours A: every metric is
    lower-is-better); ``percent_change`` is ``None`` when the B mean is
    zero — there is no honest percentage of a zero baseline.
    ``p_adjusted``/``significant`` reflect the Holm correction across
    whichever family this comparison belongs to (all metrics of one
    :func:`compare_results` call, or the full metric × cell grid of
    :func:`compare_grid`).
    """

    metric: str
    n_a: int
    n_b: int
    mean_a: float
    mean_b: float
    diff: float
    percent_change: Optional[float]
    u_statistic: float
    p_value: float
    method: str
    cliffs_delta: float
    effect_magnitude: str
    ci: BootstrapCI
    p_adjusted: float = 1.0
    significant: bool = False

    def verdict(self, label_a: str, label_b: str) -> str:
        """One plain-language line ("FC beats SEPT on p99_stretch ...")."""
        if not self.significant:
            return (
                f"{label_a} vs {label_b} on {self.metric}: no significant "
                f"difference (p_adj={self.p_adjusted:.3g})"
            )
        winner, loser = (label_a, label_b) if self.diff < 0 else (label_b, label_a)
        return (
            f"{winner} beats {loser} on {self.metric} "
            f"(p_adj={self.p_adjusted:.3g}, Cliff's δ={self.cliffs_delta:+.2f} "
            f"{self.effect_magnitude})"
        )


@dataclass(frozen=True)
class ComparisonResult:
    """A full A-vs-B comparison: one :class:`MetricComparison` per
    metric, Holm-corrected as one family (unless built by
    :func:`compare_grid`, whose family spans every cell)."""

    label_a: str
    label_b: str
    alpha: float
    comparisons: Tuple[MetricComparison, ...]
    #: Which modes the per-seed summaries came from ("retained",
    #: "streaming", or "mixed" — diagnostic only).
    mode: str = "retained"

    def __getitem__(self, metric: str) -> MetricComparison:
        for comparison in self.comparisons:
            if comparison.metric == metric:
                return comparison
        raise KeyError(
            f"metric {metric!r} was not compared; compared: "
            f"{', '.join(c.metric for c in self.comparisons)}"
        )

    def significant(self) -> Tuple[MetricComparison, ...]:
        """The metrics that remain significant after correction."""
        return tuple(c for c in self.comparisons if c.significant)

    def all_separated(self, metrics: Optional[Sequence[str]] = None) -> bool:
        """Whether every requested metric is significant after correction
        *and* its CI excludes zero — the adaptive allocator's stopping
        rule."""
        names = set(metrics) if metrics is not None else {
            c.metric for c in self.comparisons
        }
        chosen = [c for c in self.comparisons if c.metric in names]
        if not chosen:
            raise ValueError(f"no compared metric among {sorted(names)}")
        return all(c.significant and c.ci.excludes_zero() for c in chosen)

    def render(self, title: Optional[str] = None) -> str:
        """An aligned table plus one verdict line per metric."""
        if title is None:
            sig = sum(1 for c in self.comparisons if c.significant)
            title = (
                f"{self.label_a}  vs  {self.label_b}  "
                f"(n={self.comparisons[0].n_a} vs {self.comparisons[0].n_b} "
                f"seeds, α={self.alpha:g}, Holm-corrected: "
                f"{sig}/{len(self.comparisons)} significant, {self.mode} mode)"
            )
        table = format_table(
            _COMPARISON_HEADERS,
            [_comparison_row(c) for c in self.comparisons],
            title=title,
        )
        verdicts = "\n".join(
            "  " + c.verdict(self.label_a, self.label_b) for c in self.comparisons
        )
        return table + "\n\n" + verdicts


_COMPARISON_HEADERS = (
    "metric",
    "A",
    "B",
    "Δ%",
    "U",
    "p",
    "p(holm)",
    "δ",
    "effect",
    "CI(Δ)",
    "sig",
)


def _comparison_row(c: MetricComparison) -> List[object]:
    percent = "n/a (B=0)" if c.percent_change is None else f"{c.percent_change:+.1f}%"
    ci = f"[{c.ci.low:+.3g}, {c.ci.high:+.3g}]"
    return [
        c.metric,
        c.mean_a,
        c.mean_b,
        percent,
        c.u_statistic,
        f"{c.p_value:.3g}",
        f"{c.p_adjusted:.3g}",
        f"{c.cliffs_delta:+.2f}",
        c.effect_magnitude,
        ci,
        "yes" if c.significant else "-",
    ]


def _raw_metric_comparison(
    values_a: Sequence[float],
    values_b: Sequence[float],
    metric: str,
    *,
    confidence: float,
    resamples: int,
    ci_method: str,
    seed: int,
) -> MetricComparison:
    test = mann_whitney_u(values_a, values_b)
    delta = cliffs_delta(values_a, values_b)
    ci = bootstrap_diff_ci(
        values_a,
        values_b,
        confidence=confidence,
        resamples=resamples,
        seed=seed,
        method=ci_method,
    )
    mean_a, mean_b = _mean(values_a), _mean(values_b)
    diff = mean_a - mean_b
    percent = None if mean_b == 0 else (diff / abs(mean_b)) * 100.0
    return MetricComparison(
        metric=metric,
        n_a=len(values_a),
        n_b=len(values_b),
        mean_a=mean_a,
        mean_b=mean_b,
        diff=diff,
        percent_change=percent,
        u_statistic=test.u_statistic,
        p_value=test.p_value,
        method=test.method,
        cliffs_delta=delta,
        effect_magnitude=effect_magnitude(delta),
        ci=ci,
    )


def _apply_holm(
    comparisons: Sequence[MetricComparison], alpha: float
) -> List[MetricComparison]:
    corrected = holm_bonferroni([c.p_value for c in comparisons], alpha)
    return [
        replace(c, p_adjusted=p_adj, significant=reject)
        for c, (p_adj, reject) in zip(comparisons, corrected)
    ]


def _results_mode(results: Sequence[Any]) -> str:
    modes = {
        "retained" if getattr(r, "retained", True) else "streaming" for r in results
    }
    return modes.pop() if len(modes) == 1 else "mixed"


def compare_samples(
    values_a: Mapping[str, Sequence[float]],
    values_b: Mapping[str, Sequence[float]],
    *,
    label_a: str = "A",
    label_b: str = "B",
    alpha: float = 0.05,
    confidence: float = 0.95,
    resamples: int = 2000,
    ci_method: str = "bca",
    seed: Optional[int] = None,
) -> ComparisonResult:
    """Compare raw per-metric sample mappings (the low-level entry point:
    ``tools/bench_compare.py`` feeds benchmark timings through here).

    Both mappings must share the same metric names; Holm correction runs
    across that family.  ``seed=None`` derives a deterministic seed per
    metric from the labels — reruns reproduce the same intervals.
    """
    if set(values_a) != set(values_b):
        raise ValueError(
            f"metric sets differ: A has {sorted(values_a)}, B has "
            f"{sorted(values_b)}"
        )
    if not values_a:
        raise ValueError("cannot compare zero metrics")
    raw = [
        _raw_metric_comparison(
            list(values_a[metric]),
            list(values_b[metric]),
            metric,
            confidence=confidence,
            resamples=resamples,
            ci_method=ci_method,
            seed=seed if seed is not None else derive_seed(label_a, label_b, metric),
        )
        for metric in values_a
    ]
    return ComparisonResult(
        label_a=label_a,
        label_b=label_b,
        alpha=alpha,
        comparisons=tuple(_apply_holm(raw, alpha)),
        mode="samples",
    )


def compare_results(
    results_a: Sequence[Any],
    results_b: Sequence[Any],
    *,
    metrics: Optional[Sequence[str]] = None,
    alpha: float = 0.05,
    confidence: float = 0.95,
    resamples: int = 2000,
    ci_method: str = "bca",
    seed: Optional[int] = None,
    label_a: Optional[str] = None,
    label_b: Optional[str] = None,
) -> ComparisonResult:
    """Compare two repetition runs (sequences of per-seed
    :class:`~repro.experiments.runner.ExperimentResult`).

    Per-seed metric values come from each result's exact summary when
    records were retained and from its streaming accumulator otherwise —
    pass results from either mode (or a mix).  The Holm family is the
    requested metric set.  ``seed=None`` derives the bootstrap seed from
    the config labels and metric name, so the same comparison always
    yields the same intervals ("config-seeded").
    """
    if len(results_a) == 0 or len(results_b) == 0:
        raise ValueError(
            "cannot compare empty result sets; run at least one seed per side "
            "(run_repetitions(config, seeds=...))"
        )
    names = _resolve_metrics(metrics)
    label_a = label_a if label_a is not None else _config_label(results_a[0].config)
    label_b = label_b if label_b is not None else _config_label(results_b[0].config)
    summaries_a = [summary_of(r) for r in results_a]
    summaries_b = [summary_of(r) for r in results_b]
    raw = [
        _raw_metric_comparison(
            [float(COMPARE_METRICS[name](s)) for s in summaries_a],
            [float(COMPARE_METRICS[name](s)) for s in summaries_b],
            name,
            confidence=confidence,
            resamples=resamples,
            ci_method=ci_method,
            seed=seed if seed is not None else derive_seed(label_a, label_b, name),
        )
        for name in names
    ]
    mode_a = _results_mode(results_a)
    mode_b = _results_mode(results_b)
    return ComparisonResult(
        label_a=label_a,
        label_b=label_b,
        alpha=alpha,
        comparisons=tuple(_apply_holm(raw, alpha)),
        mode=mode_a if mode_a == mode_b else "mixed",
    )


# ----------------------------------------------------------------------
# Grid comparison
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GridComparison:
    """Two strategies compared across every grid cell they share, with
    Holm correction across the **entire metric × cell family** — 15 cells
    × 5 metrics is 75 chances for a spurious p < 0.05; the correction is
    what makes "significant" mean something at grid scale."""

    strategy_a: str
    strategy_b: str
    alpha: float
    #: ``(cell_label, per-cell ComparisonResult)`` in grid run order; the
    #: per-cell ``significant`` flags already reflect the grid-wide
    #: correction.
    cells: Tuple[Tuple[str, ComparisonResult], ...]
    #: ``(key_a, key_b)`` grid cell keys aligned with :attr:`cells`, so
    #: callers can map each comparison back to its grid cells (e.g. to
    #: annotate a summary table).
    keys: Tuple[Tuple[Any, Any], ...] = ()

    def total_comparisons(self) -> int:
        return sum(len(result.comparisons) for _, result in self.cells)

    def significant(self) -> List[Tuple[str, MetricComparison]]:
        """Every (cell label, metric comparison) still significant after
        the grid-wide correction."""
        return [
            (label, comparison)
            for label, result in self.cells
            for comparison in result.comparisons
            if comparison.significant
        ]

    def render(self) -> str:
        sig = len(self.significant())
        title = (
            f"{self.strategy_a}  vs  {self.strategy_b}  across "
            f"{len(self.cells)} cells (α={self.alpha:g}, Holm-corrected over "
            f"{self.total_comparisons()} metric×cell tests: {sig} significant)"
        )
        headers = ("cell",) + _COMPARISON_HEADERS
        rows = [
            [label] + _comparison_row(comparison)
            for label, result in self.cells
            for comparison in result.comparisons
        ]
        table = format_table(headers, rows, title=title)
        verdicts = [
            f"  [{label}] {comparison.verdict(self.strategy_a, self.strategy_b)}"
            for label, comparison in self.significant()
        ]
        if not verdicts:
            verdicts = ["  no metric×cell comparison is significant after correction"]
        return table + "\n\n" + "\n".join(verdicts)


def compare_grid(
    grid: Any,
    strategy_a: str,
    strategy_b: str,
    *,
    metrics: Optional[Sequence[str]] = None,
    alpha: float = 0.05,
    confidence: float = 0.95,
    resamples: int = 2000,
    ci_method: str = "bca",
) -> GridComparison:
    """Compare two swept strategies inside one
    :class:`~repro.experiments.grid.GridResults`.

    For every ``(cores, intensity[, nodes, balancer])`` cell holding both
    strategies, each metric's per-seed distributions are tested; Holm
    correction then runs across **all** metric × cell p-values at once.
    """
    names = _resolve_metrics(metrics)
    strategies = set(grid.spec.strategies)
    missing = [s for s in (strategy_a, strategy_b) if s not in strategies]
    if missing:
        raise ValueError(
            f"strateg{'y' if len(missing) == 1 else 'ies'} {missing} not in "
            f"this grid; swept: {', '.join(grid.spec.strategies)}"
        )
    if strategy_a == strategy_b:
        raise ValueError(f"comparing {strategy_a!r} against itself is vacuous")

    pairs: List[Tuple[str, Any, Any]] = []
    for key in grid.cell_keys():
        if key[2] != strategy_a:
            continue
        partner = key[:2] + (strategy_b,) + key[3:]
        if partner in grid.cells:
            label = re.sub(
                rf" {re.escape(strategy_a)}( |$)", r"\1", grid.cell_label(key)
            ).strip()
            pairs.append((label, key, partner))
    if not pairs:
        raise ValueError(
            f"no grid cell holds both {strategy_a!r} and {strategy_b!r}"
        )

    # Build every raw comparison first, then correct across the family.
    cell_raw: List[Tuple[str, str, List[MetricComparison]]] = []
    for label, key_a, key_b in pairs:
        results_a = grid.results_for(key_a)
        summaries_a = [summary_of(r) for r in results_a]
        summaries_b = [summary_of(r) for r in grid.results_for(key_b)]
        raw = [
            _raw_metric_comparison(
                [float(COMPARE_METRICS[name](s)) for s in summaries_a],
                [float(COMPARE_METRICS[name](s)) for s in summaries_b],
                name,
                confidence=confidence,
                resamples=resamples,
                ci_method=ci_method,
                seed=derive_seed(strategy_a, strategy_b, label, name),
            )
            for name in names
        ]
        cell_raw.append((label, _results_mode(results_a), raw))

    flat = [comparison for _, _, raw in cell_raw for comparison in raw]
    corrected = _apply_holm(flat, alpha)
    cells: List[Tuple[str, ComparisonResult]] = []
    cursor = 0
    for label, mode, raw in cell_raw:
        chunk = tuple(corrected[cursor : cursor + len(raw)])
        cursor += len(raw)
        cells.append(
            (
                label,
                ComparisonResult(
                    label_a=strategy_a,
                    label_b=strategy_b,
                    alpha=alpha,
                    comparisons=chunk,
                    mode=mode,
                ),
            )
        )
    return GridComparison(
        strategy_a=strategy_a,
        strategy_b=strategy_b,
        alpha=alpha,
        cells=tuple(cells),
        keys=tuple((key_a, key_b) for _, key_a, key_b in pairs),
    )
