"""repro — reproduction of "Call Scheduling to Reduce Response Time of a FaaS
System" (Żuk, Przybylski, Rzadca; IEEE CLUSTER 2022).

The package simulates an OpenWhisk-like FaaS platform with a discrete-event
kernel and implements the paper's node-level scheduling policies (FIFO, SEPT,
EECT, RECT, Fair-Choice) together with its CPU-based container management,
plus the default OpenWhisk baseline the paper compares against.

Quickstart
----------
>>> from repro import ExperimentConfig, run_experiment
>>> cfg = ExperimentConfig(cores=10, intensity=30, policy="SEPT", seed=1)
>>> result = run_experiment(cfg)
>>> result.summary().mean_response_time  # doctest: +SKIP

Public names are re-exported lazily (PEP 562) so that subpackages — e.g. the
standalone DES kernel :mod:`repro.sim` — can be imported without pulling in
the whole platform model.
"""

from typing import TYPE_CHECKING

__version__ = "1.0.0"

#: Maps public name -> defining module, resolved lazily on attribute access.
_EXPORTS = {
    "FunctionSpec": "repro.workload.functions",
    "sebs_catalog": "repro.workload.functions",
    "BurstScenario": "repro.workload.generator",
    "requests_for_intensity": "repro.workload.generator",
    "ScenarioParam": "repro.workload.registry",
    "ScenarioRegistry": "repro.workload.registry",
    "ScenarioSpec": "repro.workload.registry",
    "register_scenario": "repro.workload.registry",
    "build_scenario": "repro.workload.registry",
    "get_scenario": "repro.workload.registry",
    "scenario_names": "repro.workload.registry",
    "replay_scenario": "repro.workload.replay",
    "POLICIES": "repro.scheduling.policies",
    "SchedulingPolicy": "repro.scheduling.policies",
    "FirstInFirstOut": "repro.scheduling.policies",
    "ShortestExpectedProcessingTime": "repro.scheduling.policies",
    "EarliestExpectedCompletionTime": "repro.scheduling.policies",
    "RecentExpectedCompletionTime": "repro.scheduling.policies",
    "FairChoice": "repro.scheduling.policies",
    "make_policy": "repro.scheduling.policies",
    "PolicyParam": "repro.scheduling.registry",
    "PolicyRegistry": "repro.scheduling.registry",
    "PolicySpec": "repro.scheduling.registry",
    "register_policy": "repro.scheduling.registry",
    "build_policy": "repro.scheduling.registry",
    "get_policy": "repro.scheduling.registry",
    "policy_names": "repro.scheduling.registry",
    "RuntimeEstimator": "repro.scheduling.estimator",
    "ClusterSpec": "repro.cluster.spec",
    "AutoscalerConfig": "repro.cluster.autoscaler",
    "balancer_names": "repro.cluster.controller",
    "make_balancer": "repro.cluster.controller",
    "ExperimentConfig": "repro.experiments.config",
    "MultiNodeConfig": "repro.experiments.config",
    "run_experiment": "repro.experiments.runner",
    "run_multi_node_experiment": "repro.experiments.runner",
    "run_repetitions": "repro.experiments.runner",
    "GridSpec": "repro.experiments.grid",
    "GridResults": "repro.experiments.grid",
    "run_grid": "repro.experiments.grid",
    "run_configs": "repro.experiments.parallel",
    "ResultCache": "repro.experiments.parallel",
    "EngineStats": "repro.experiments.parallel",
    "progress_printer": "repro.experiments.parallel",
    "CallRecord": "repro.metrics.records",
    "SummaryStats": "repro.metrics.stats",
    "summarize": "repro.metrics.stats",
}

__all__ = sorted(_EXPORTS) + ["__version__"]


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value  # cache for next access
    return value


def __dir__():
    return __all__


if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from repro.cluster.autoscaler import AutoscalerConfig
    from repro.cluster.controller import balancer_names, make_balancer
    from repro.cluster.spec import ClusterSpec
    from repro.experiments.config import ExperimentConfig, MultiNodeConfig
    from repro.experiments.grid import GridResults, GridSpec, run_grid
    from repro.experiments.parallel import (
        EngineStats,
        ResultCache,
        progress_printer,
        run_configs,
    )
    from repro.experiments.runner import (
        run_experiment,
        run_multi_node_experiment,
        run_repetitions,
    )
    from repro.metrics.records import CallRecord
    from repro.metrics.stats import SummaryStats, summarize
    from repro.scheduling.estimator import RuntimeEstimator
    from repro.scheduling.policies import (
        POLICIES,
        EarliestExpectedCompletionTime,
        FairChoice,
        FirstInFirstOut,
        RecentExpectedCompletionTime,
        SchedulingPolicy,
        ShortestExpectedProcessingTime,
        make_policy,
    )
    from repro.scheduling.registry import (
        PolicyParam,
        PolicyRegistry,
        PolicySpec,
        build_policy,
        get_policy,
        policy_names,
        register_policy,
    )
    from repro.workload.functions import FunctionSpec, sebs_catalog
    from repro.workload.generator import BurstScenario, requests_for_intensity
    from repro.workload.registry import (
        ScenarioParam,
        ScenarioRegistry,
        ScenarioSpec,
        build_scenario,
        get_scenario,
        register_scenario,
        scenario_names,
    )
    from repro.workload.replay import replay_scenario
