"""Experiment registry: one entry per paper artifact (see DESIGN.md §4).

Each entry maps an experiment id to a callable
``run(quick: bool, engine: EngineOptions, workload: WorkloadSelection,
cluster: ClusterSelection, policies: PolicySelection) -> str`` returning
a rendered report.  ``quick=True`` runs a scaled-down version (fewer
seeds / smaller sweeps) suitable for CI and the default benchmark
invocation; ``quick=False`` reproduces the paper's full protocol.
``engine`` carries the execution knobs (worker count, cache directory,
progress callback); ``workload`` an optional scenario override
(``--scenario``/``--scenario-param``), ``cluster`` an optional
cluster-topology override (``--nodes``/``--balancer``/...) and
``policies`` an optional scheduling-policy override
(``--policies``/``--policy-param``) for the grid-backed artifacts;
artifacts that do not run the grid ignore the engine knobs and reject
the overrides.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.experiments.ablations import (
    ablate_busy_limit,
    ablate_cold_start_cost,
    ablate_estimator_window,
    ablate_fc_horizon,
)
from repro.experiments.artifacts import (
    fig3_from_grid,
    fig4_from_grid,
    reject_cluster_sweep,
    table2_from_grid,
    table3_from_grid,
)
from repro.experiments.fig2_coldstarts import run_fig2
from repro.experiments.fig5_fairness import run_fig5
from repro.experiments.fig6_multinode import run_fig6
from repro.experiments.grid import GridSpec, run_grid
from repro.experiments.parallel import EngineOptions, EngineStats, ProgressCallback
from repro.experiments.table1 import run_table1
from repro.failures.spec import FailureSpec

__all__ = [
    "EXPERIMENTS",
    "GRID_BACKED",
    "WorkloadSelection",
    "ClusterSelection",
    "PolicySelection",
    "FailureSelection",
    "run_registered",
    "experiment_ids",
]


@dataclass(frozen=True)
class WorkloadSelection:
    """An optional scenario override for grid-backed artifacts.

    ``scenario=None`` keeps each artifact's own workload (the paper's
    protocol); a name (plus params) reruns the artifact's grid under that
    registered scenario instead — e.g. Table III under Poisson arrivals.
    """

    scenario: Optional[str] = None
    params: Tuple[Tuple[str, Any], ...] = ()

    def apply(self, spec: GridSpec) -> GridSpec:
        if self.scenario is None:
            return spec
        return replace(spec, scenario=self.scenario, scenario_params=self.params)


#: No override: every artifact runs its published workload.
DEFAULT_WORKLOAD = WorkloadSelection()


@dataclass(frozen=True)
class ClusterSelection:
    """An optional cluster-topology override for grid-backed artifacts.

    All fields at their defaults keep each artifact's own topology (the
    paper's single-node protocol); setting ``nodes``/``balancers`` reruns
    the artifact's grid swept over those topologies instead — e.g.
    Table III on 3 nodes under power-of-d routing.
    """

    nodes: Optional[Tuple[int, ...]] = None
    balancers: Optional[Tuple[str, ...]] = None
    balancer_params: Tuple[Tuple[str, Any], ...] = ()
    autoscale: bool = False

    @property
    def is_default(self) -> bool:
        return self == DEFAULT_CLUSTER_SELECTION

    def apply(self, spec: GridSpec) -> GridSpec:
        changes: Dict[str, Any] = {}
        if self.nodes is not None:
            changes["nodes"] = tuple(self.nodes)
        if self.balancers is not None:
            changes["balancers"] = tuple(self.balancers)
        if self.balancer_params:
            changes["balancer_params"] = tuple(self.balancer_params)
        if self.autoscale:
            changes["autoscale"] = True
        return replace(spec, **changes) if changes else spec


#: No override: every artifact runs on its published topology.
DEFAULT_CLUSTER_SELECTION = ClusterSelection()


@dataclass(frozen=True)
class PolicySelection:
    """An optional scheduling-policy override for grid-backed artifacts.

    ``strategies=None`` with no params keeps each artifact's own strategy
    set (the paper's six); a tuple of registered policy names (plus
    ``baseline``) reruns the artifact's grid over those strategies
    instead — e.g. Table III comparing ``SEPT`` against ``SEPT-EMA`` and
    ``ORACLE-SPT``.  ``params`` reach each swept strategy filtered to
    the parameters it declares (see
    :meth:`~repro.experiments.grid.GridSpec.policy_params_by_strategy`).
    """

    strategies: Optional[Tuple[str, ...]] = None
    params: Tuple[Tuple[str, Any], ...] = ()

    @property
    def is_default(self) -> bool:
        return self == DEFAULT_POLICY_SELECTION

    def apply(self, spec: GridSpec) -> GridSpec:
        changes: Dict[str, Any] = {}
        if self.strategies is not None:
            changes["strategies"] = tuple(self.strategies)
        if self.params:
            changes["policy_params"] = tuple(self.params)
        return replace(spec, **changes) if changes else spec


#: No override: every artifact sweeps its published strategies.
DEFAULT_POLICY_SELECTION = PolicySelection()


@dataclass(frozen=True)
class FailureSelection:
    """An optional fault-regime override for grid-backed artifacts.

    Empty ``params`` keeps the failure-free historical path; naming
    :class:`~repro.failures.spec.FailureSpec` fields (``--failure-param
    node_crash_rate=0.005`` etc.) reruns the artifact's grid with that
    fault regime injected into every cell (see docs/FAILURES.md).
    """

    params: Tuple[Tuple[str, Any], ...] = ()

    @property
    def is_default(self) -> bool:
        return not self.params

    def spec(self) -> FailureSpec:
        return FailureSpec.from_params(self.params)

    def apply(self, spec: GridSpec) -> GridSpec:
        if self.is_default:
            return spec
        return replace(spec, failures=self.spec())


#: No override: every artifact runs failure-free.
DEFAULT_FAILURE_SELECTION = FailureSelection()


def _grid_spec(
    quick: bool,
    workload: WorkloadSelection,
    cluster: ClusterSelection,
    policies: PolicySelection,
    failures: FailureSelection = DEFAULT_FAILURE_SELECTION,
) -> GridSpec:
    if quick:
        spec = GridSpec(
            cores=(10, 20),
            intensities=(30, 60),
            strategies=("baseline", "FIFO", "SEPT", "EECT", "RECT", "FC"),
            seeds=(1,),
        )
    else:
        spec = GridSpec()
    return failures.apply(policies.apply(cluster.apply(workload.apply(spec))))


def _table1(quick, engine, workload, cluster, policies, failures) -> str:
    return run_table1(calls_per_function=20 if quick else 50).render()


def _fig2(quick, engine, workload, cluster, policies, failures) -> str:
    if quick:
        return run_fig2(
            memories_mb=(4096, 16384, 32768, 131072), intensities=(30, 120)
        ).render()
    return run_fig2().render()


def _fig3(quick, engine, workload, cluster, policies, failures) -> str:
    spec = _grid_spec(quick, workload, cluster, policies, failures)
    reject_cluster_sweep(spec, "fig3")  # before any simulation time
    return fig3_from_grid(run_grid(spec, **engine.run_kwargs())).render()


def _fig4(quick, engine, workload, cluster, policies, failures) -> str:
    spec = _grid_spec(quick, workload, cluster, policies, failures)
    reject_cluster_sweep(spec, "fig4")  # before any simulation time
    return fig4_from_grid(run_grid(spec, **engine.run_kwargs())).render()


def _table2(quick, engine, workload, cluster, policies, failures) -> str:
    if quick:
        spec = failures.apply(policies.apply(cluster.apply(workload.apply(GridSpec(
            cores=(5, 20), intensities=(30, 120),
            strategies=("baseline", "FIFO"), seeds=(1, 2),
        )))))
    else:
        spec = _grid_spec(quick, workload, cluster, policies, failures)
    reject_cluster_sweep(spec, "table2")  # before any simulation time
    return table2_from_grid(run_grid(spec, **engine.run_kwargs())).render()


def _table3(quick, engine, workload, cluster, policies, failures) -> str:
    grid = run_grid(
        _grid_spec(quick, workload, cluster, policies, failures),
        **engine.run_kwargs(),
    )
    result = table3_from_grid(grid)
    return result.render() + "\n\n" + result.render_comparison()


def _table4(quick, engine, workload, cluster, policies, failures) -> str:
    if quick:
        spec = failures.apply(policies.apply(cluster.apply(
            workload.apply(GridSpec(cores=(10,), intensities=(30,), seeds=(1, 2, 3)))
        )))
    else:
        spec = _grid_spec(quick, workload, cluster, policies, failures)
    return table3_from_grid(run_grid(spec, **engine.run_kwargs()), per_seed=True).render()


def _fig5(quick, engine, workload, cluster, policies, failures) -> str:
    return run_fig5(seeds=(1,) if quick else (1, 2, 3, 4, 5)).render()


def _fig6(quick, engine, workload, cluster, policies, failures) -> str:
    # fig6 is inherently a cluster sweep (over node counts); it honors the
    # engine's jobs/cache/progress knobs and, of the cluster selection,
    # exactly the balancer flavour.  Everything else (its own node counts,
    # balancer params, autoscaling) is the artifact's protocol — reject
    # rather than silently ignore.
    seeds = (1,) if quick else (1, 2, 3, 4, 5)
    unsupported = []
    if cluster.nodes is not None:
        unsupported.append("--nodes (fig6 sweeps 4/3/2/1 nodes by protocol)")
    if cluster.balancer_params:
        unsupported.append("--balancer-param")
    if cluster.autoscale:
        unsupported.append("--autoscale")
    if unsupported:
        raise ValueError(
            f"fig6 does not honor {', '.join(unsupported)}; of the cluster "
            f"overrides it accepts only a single --balancer"
        )
    balancer = "least-loaded"
    if cluster.balancers is not None:
        if len(cluster.balancers) != 1:
            raise ValueError(
                "fig6 sweeps node counts with a single balancer; give exactly "
                "one --balancer"
            )
        balancer = cluster.balancers[0]
    kwargs = engine.run_kwargs()
    reports = [run_fig6(cores_per_node=18, seeds=seeds, balancer=balancer, **kwargs).render()]
    if not quick:
        reports.append(
            run_fig6(cores_per_node=10, seeds=seeds, balancer=balancer, **kwargs).render()
        )
    return "\n\n".join(reports)


def _ablations(quick, engine, workload, cluster, policies, failures) -> str:
    reports = [
        ablate_estimator_window().render(),
        ablate_busy_limit().render(),
    ]
    if not quick:
        reports.append(ablate_fc_horizon().render())
        reports.append(ablate_cold_start_cost().render())
    return "\n\n".join(reports)


#: Experiment id -> (description, runner).
_Runner = Callable[
    [
        bool,
        EngineOptions,
        WorkloadSelection,
        ClusterSelection,
        PolicySelection,
        FailureSelection,
    ],
    str,
]
EXPERIMENTS: Dict[str, tuple[str, _Runner]] = {
    "table1": ("Table I — idle-system SeBS function benchmark", _table1),
    "fig2": ("Fig. 2 — cold starts vs. memory and intensity", _fig2),
    "fig3": ("Fig. 3 — response-time boxes over the grid", _fig3),
    "fig4": ("Fig. 4 — stretch boxes over the grid", _fig4),
    "table2": ("Table II — FIFO/baseline makespan ratios", _table2),
    "table3": ("Table III — aggregated numeric grid (+ paper comparison)", _table3),
    "table4": ("Table IV — per-seed numeric grid", _table4),
    "fig5": ("Fig. 5 — Fair-Choice fairness (skewed mix)", _fig5),
    "fig6": ("Fig. 6 / Table V — multi-node sweep", _fig6),
    "ablations": ("Extensions — ablation studies", _ablations),
}


#: Artifacts whose runners slice the experiment grid and therefore honor a
#: ``--scenario`` workload override; the rest run fixed protocols
#: (table1's idle benchmark, fig2's memory sweep, fig5/fig6's dedicated
#: workloads, the ablations) and must reject an override rather than
#: silently ignoring it.
GRID_BACKED = frozenset({"fig3", "fig4", "table2", "table3", "table4"})


def experiment_ids() -> List[str]:
    return list(EXPERIMENTS)


def run_registered(
    experiment_id: str,
    quick: bool = True,
    *,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    progress: Optional[ProgressCallback] = None,
    scenario: Optional[str] = None,
    scenario_params: Union[Mapping[str, Any], Tuple[Tuple[str, Any], ...]] = (),
    nodes: Optional[Sequence[int]] = None,
    balancers: Optional[Sequence[str]] = None,
    balancer_params: Union[Mapping[str, Any], Tuple[Tuple[str, Any], ...]] = (),
    autoscale: bool = False,
    policies: Optional[Sequence[str]] = None,
    policy_params: Union[Mapping[str, Any], Tuple[Tuple[str, Any], ...]] = (),
    failure_params: Union[Mapping[str, Any], Tuple[Tuple[str, Any], ...]] = (),
    cell_timeout: Optional[float] = None,
    executor: Optional[str] = None,
    stats: Optional[EngineStats] = None,
) -> str:
    """Run a registered experiment and return its rendered report.

    ``jobs``, ``cache_dir`` and ``progress`` configure the parallel
    execution engine for the engine-run artifacts (fig3/fig4, tables 2–4
    and fig6).  ``scenario``/``scenario_params`` override the grid-backed
    artifacts' workload with any registered scenario (see
    ``faas-sched scenarios``); ``None`` keeps the paper's protocol.
    ``nodes``/``balancers`` (plus ``balancer_params``/``autoscale``)
    sweep the grid-backed artifacts over cluster topologies; fig6 — a
    node-count sweep by construction — honors a single ``balancers``
    entry.  ``policies``/``policy_params`` rerun the grid-backed
    artifacts over a different strategy set (any registered scheduling
    policy plus ``baseline`` — see ``faas-sched policies``), with
    parameters reaching each strategy that declares them.
    ``failure_params`` name :class:`~repro.failures.spec.FailureSpec`
    fields and rerun the grid-backed artifacts under that fault regime
    (docs/FAILURES.md); ``cell_timeout`` bounds each cell's wall clock
    when ``jobs > 1``.  ``executor`` selects the execution backend for
    the engine-run artifacts (``local`` process pool or the distributed
    ``queue`` — see :mod:`repro.experiments.executor`); ``stats``
    supplies a shared :class:`~repro.experiments.parallel.EngineStats`
    that accumulates engine counters across the artifact's sweeps.  The
    remaining artifacts reject the overrides rather than silently
    ignoring them.
    """
    try:
        _, runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {', '.join(EXPERIMENTS)}"
        ) from None
    if scenario is None and scenario_params:
        raise ValueError(
            "scenario_params were given without a scenario; silently "
            "dropping them would run the wrong workload"
        )
    if scenario is not None and experiment_id not in GRID_BACKED:
        raise ValueError(
            f"artifact {experiment_id!r} runs a fixed workload and does not "
            f"honor a scenario override; grid-backed artifacts: "
            f"{', '.join(sorted(GRID_BACKED))}"
        )
    cluster = ClusterSelection(
        nodes=None if nodes is None else tuple(nodes),
        balancers=None if balancers is None else tuple(balancers),
        balancer_params=(
            tuple(balancer_params.items())
            if isinstance(balancer_params, Mapping)
            else tuple(balancer_params)
        ),
        autoscale=autoscale,
    )
    if not cluster.is_default and experiment_id not in GRID_BACKED | {"fig6"}:
        raise ValueError(
            f"artifact {experiment_id!r} runs a fixed topology and does not "
            f"honor a cluster override; cluster-capable artifacts: "
            f"{', '.join(sorted(GRID_BACKED | {'fig6'}))}"
        )
    policy_selection = PolicySelection(
        strategies=None if policies is None else tuple(policies),
        params=(
            tuple(policy_params.items())
            if isinstance(policy_params, Mapping)
            else tuple(policy_params)
        ),
    )
    if not policy_selection.is_default and experiment_id not in GRID_BACKED:
        raise ValueError(
            f"artifact {experiment_id!r} runs a fixed strategy set and does "
            f"not honor a policy override; grid-backed artifacts: "
            f"{', '.join(sorted(GRID_BACKED))}"
        )
    failure_selection = FailureSelection(
        params=(
            tuple(failure_params.items())
            if isinstance(failure_params, Mapping)
            else tuple(failure_params)
        ),
    )
    if not failure_selection.is_default:
        if experiment_id not in GRID_BACKED:
            raise ValueError(
                f"artifact {experiment_id!r} runs failure-free by protocol "
                f"and does not honor a failure override; grid-backed "
                f"artifacts: {', '.join(sorted(GRID_BACKED))}"
            )
        failure_selection.spec()  # a bad field name fails before any run
    engine = EngineOptions(
        jobs=jobs,
        cache_dir=cache_dir,
        progress=progress,
        cell_timeout=cell_timeout,
        executor=executor,
        stats=stats,
    )
    # A mapping is the natural programmatic spelling (ExperimentConfig
    # accepts it too); tuple() on a dict would keep only the keys.
    if isinstance(scenario_params, Mapping):
        params = tuple(scenario_params.items())
    else:
        params = tuple(scenario_params)
    workload = WorkloadSelection(scenario=scenario, params=params)
    return runner(quick, engine, workload, cluster, policy_selection, failure_selection)
