"""Experiment registry: one entry per paper artifact (see DESIGN.md §4).

Each entry maps an experiment id to a callable
``run(quick: bool, engine: EngineOptions, workload: WorkloadSelection) ->
str`` returning a rendered report.  ``quick=True`` runs a scaled-down
version (fewer seeds / smaller sweeps) suitable for CI and the default
benchmark invocation; ``quick=False`` reproduces the paper's full
protocol.  ``engine`` carries the execution knobs (worker count, cache
directory, progress callback) and ``workload`` an optional scenario
override (``--scenario``/``--scenario-param``) for the grid-backed
artifacts; artifacts that do not run the grid ignore both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.experiments.ablations import (
    ablate_busy_limit,
    ablate_cold_start_cost,
    ablate_estimator_window,
    ablate_fc_horizon,
)
from repro.experiments.artifacts import (
    fig3_from_grid,
    fig4_from_grid,
    table2_from_grid,
    table3_from_grid,
)
from repro.experiments.fig2_coldstarts import run_fig2
from repro.experiments.fig5_fairness import run_fig5
from repro.experiments.fig6_multinode import run_fig6
from repro.experiments.grid import GridSpec, run_grid
from repro.experiments.parallel import EngineOptions, ProgressCallback
from repro.experiments.table1 import run_table1

__all__ = [
    "EXPERIMENTS",
    "GRID_BACKED",
    "WorkloadSelection",
    "run_registered",
    "experiment_ids",
]


@dataclass(frozen=True)
class WorkloadSelection:
    """An optional scenario override for grid-backed artifacts.

    ``scenario=None`` keeps each artifact's own workload (the paper's
    protocol); a name (plus params) reruns the artifact's grid under that
    registered scenario instead — e.g. Table III under Poisson arrivals.
    """

    scenario: Optional[str] = None
    params: Tuple[Tuple[str, Any], ...] = ()

    def apply(self, spec: GridSpec) -> GridSpec:
        if self.scenario is None:
            return spec
        from dataclasses import replace

        return replace(spec, scenario=self.scenario, scenario_params=self.params)


#: No override: every artifact runs its published workload.
DEFAULT_WORKLOAD = WorkloadSelection()


def _grid_spec(quick: bool, workload: WorkloadSelection) -> GridSpec:
    if quick:
        spec = GridSpec(
            cores=(10, 20),
            intensities=(30, 60),
            strategies=("baseline", "FIFO", "SEPT", "EECT", "RECT", "FC"),
            seeds=(1,),
        )
    else:
        spec = GridSpec()
    return workload.apply(spec)


def _table1(quick: bool, engine: EngineOptions, workload: WorkloadSelection) -> str:
    return run_table1(calls_per_function=20 if quick else 50).render()


def _fig2(quick: bool, engine: EngineOptions, workload: WorkloadSelection) -> str:
    if quick:
        return run_fig2(
            memories_mb=(4096, 16384, 32768, 131072), intensities=(30, 120)
        ).render()
    return run_fig2().render()


def _fig3(quick: bool, engine: EngineOptions, workload: WorkloadSelection) -> str:
    return fig3_from_grid(
        run_grid(_grid_spec(quick, workload), **engine.run_kwargs())
    ).render()


def _fig4(quick: bool, engine: EngineOptions, workload: WorkloadSelection) -> str:
    return fig4_from_grid(
        run_grid(_grid_spec(quick, workload), **engine.run_kwargs())
    ).render()


def _table2(quick: bool, engine: EngineOptions, workload: WorkloadSelection) -> str:
    if quick:
        spec = workload.apply(GridSpec(
            cores=(5, 20), intensities=(30, 120),
            strategies=("baseline", "FIFO"), seeds=(1, 2),
        ))
    else:
        spec = _grid_spec(quick, workload)
    return table2_from_grid(run_grid(spec, **engine.run_kwargs())).render()


def _table3(quick: bool, engine: EngineOptions, workload: WorkloadSelection) -> str:
    grid = run_grid(_grid_spec(quick, workload), **engine.run_kwargs())
    result = table3_from_grid(grid)
    return result.render() + "\n\n" + result.render_comparison()


def _table4(quick: bool, engine: EngineOptions, workload: WorkloadSelection) -> str:
    if quick:
        spec = workload.apply(GridSpec(cores=(10,), intensities=(30,), seeds=(1, 2, 3)))
    else:
        spec = _grid_spec(quick, workload)
    return table3_from_grid(run_grid(spec, **engine.run_kwargs()), per_seed=True).render()


def _fig5(quick: bool, engine: EngineOptions, workload: WorkloadSelection) -> str:
    return run_fig5(seeds=(1,) if quick else (1, 2, 3, 4, 5)).render()


def _fig6(quick: bool, engine: EngineOptions, workload: WorkloadSelection) -> str:
    seeds = (1,) if quick else (1, 2, 3, 4, 5)
    reports = [run_fig6(cores_per_node=18, seeds=seeds).render()]
    if not quick:
        reports.append(run_fig6(cores_per_node=10, seeds=seeds).render())
    return "\n\n".join(reports)


def _ablations(quick: bool, engine: EngineOptions, workload: WorkloadSelection) -> str:
    reports = [
        ablate_estimator_window().render(),
        ablate_busy_limit().render(),
    ]
    if not quick:
        reports.append(ablate_fc_horizon().render())
        reports.append(ablate_cold_start_cost().render())
    return "\n\n".join(reports)


#: Experiment id -> (description, runner).
EXPERIMENTS: Dict[str, tuple[str, Callable[[bool, EngineOptions, WorkloadSelection], str]]] = {
    "table1": ("Table I — idle-system SeBS function benchmark", _table1),
    "fig2": ("Fig. 2 — cold starts vs. memory and intensity", _fig2),
    "fig3": ("Fig. 3 — response-time boxes over the grid", _fig3),
    "fig4": ("Fig. 4 — stretch boxes over the grid", _fig4),
    "table2": ("Table II — FIFO/baseline makespan ratios", _table2),
    "table3": ("Table III — aggregated numeric grid (+ paper comparison)", _table3),
    "table4": ("Table IV — per-seed numeric grid", _table4),
    "fig5": ("Fig. 5 — Fair-Choice fairness (skewed mix)", _fig5),
    "fig6": ("Fig. 6 / Table V — multi-node sweep", _fig6),
    "ablations": ("Extensions — ablation studies", _ablations),
}


#: Artifacts whose runners slice the experiment grid and therefore honor a
#: ``--scenario`` workload override; the rest run fixed protocols
#: (table1's idle benchmark, fig2's memory sweep, fig5/fig6's dedicated
#: workloads, the ablations) and must reject an override rather than
#: silently ignoring it.
GRID_BACKED = frozenset({"fig3", "fig4", "table2", "table3", "table4"})


def experiment_ids() -> List[str]:
    return list(EXPERIMENTS)


def run_registered(
    experiment_id: str,
    quick: bool = True,
    *,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    progress: Optional[ProgressCallback] = None,
    scenario: Optional[str] = None,
    scenario_params: Union[Mapping[str, Any], Tuple[Tuple[str, Any], ...]] = (),
) -> str:
    """Run a registered experiment and return its rendered report.

    ``jobs``, ``cache_dir`` and ``progress`` configure the parallel
    execution engine for the grid-backed artifacts (fig3/fig4 and
    tables 2–4).  ``scenario``/``scenario_params`` override those
    artifacts' workload with any registered scenario (see
    ``faas-sched scenarios``); ``None`` keeps the paper's protocol.  The
    remaining artifacts ignore both sets of knobs.
    """
    try:
        _, runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {', '.join(EXPERIMENTS)}"
        ) from None
    if scenario is None and scenario_params:
        raise ValueError(
            "scenario_params were given without a scenario; silently "
            "dropping them would run the wrong workload"
        )
    if scenario is not None and experiment_id not in GRID_BACKED:
        raise ValueError(
            f"artifact {experiment_id!r} runs a fixed workload and does not "
            f"honor a scenario override; grid-backed artifacts: "
            f"{', '.join(sorted(GRID_BACKED))}"
        )
    engine = EngineOptions(jobs=jobs, cache_dir=cache_dir, progress=progress)
    # A mapping is the natural programmatic spelling (ExperimentConfig
    # accepts it too); tuple() on a dict would keep only the keys.
    if isinstance(scenario_params, Mapping):
        params = tuple(scenario_params.items())
    else:
        params = tuple(scenario_params)
    workload = WorkloadSelection(scenario=scenario, params=params)
    return runner(quick, engine, workload)
