"""Parallel experiment execution with an on-disk result cache.

The paper's evaluation is a grid of cores × intensity × strategy × 5 seeds
(Tables II–IV, Figs. 3–4 and the appendix figures); every cell is an
independent, fully seeded simulation.  This module exploits that
independence twice:

* **Parallelism** — :func:`run_configs` shards a list of experiment
  configurations across a ``multiprocessing`` pool (``jobs=N``).  Tasks are
  submitted in input order and results are collected with ``imap``, so the
  returned list order — and, because every run is deterministic given its
  config, every byte of every result — is identical to the serial path.

* **Caching** — :class:`ResultCache` persists each
  :class:`~repro.experiments.runner.ExperimentResult` under a
  content-addressed key: a SHA-256 over the canonical JSON form of the
  config, the package version, and the cache schema version
  (:func:`config_fingerprint`).  Re-running a grid, or regenerating a
  different artifact view over the same grid, only computes missing cells.
  A version bump changes every fingerprint, so stale entries are never
  hit — invalidation is structural, not TTL-based.

Determinism contract: workers never share RNG state.  Each cell builds its
own :class:`~repro.sim.rng.RngRegistry` from ``config.seed`` inside the
worker process, exactly as the serial path does, which is why parallel
results are bit-identical to serial ones (enforced by
``tests/experiments/test_parallel.py``).
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import sys
import traceback
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, TextIO, Tuple, Union

import repro
from repro.cluster.spec import ClusterSpec
from repro.experiments.config import ExperimentConfig, MultiNodeConfig
from repro.experiments.runner import (
    ExperimentResult,
    run_experiment,
    run_multi_node_experiment,
)
from repro.metrics.serialize import records_from_dicts, records_to_dicts
from repro.metrics.streaming import SummaryAccumulator

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "EngineOptions",
    "EngineStats",
    "ResultCache",
    "WorkerError",
    "config_fingerprint",
    "config_to_dict",
    "config_from_dict",
    "result_to_payload",
    "result_from_payload",
    "run_configs",
    "progress_printer",
]

AnyConfig = Union[ExperimentConfig, MultiNodeConfig]
Runner = Callable[[AnyConfig], ExperimentResult]
ProgressCallback = Callable[[int, int, str, bool], None]

#: Bump when the cached payload layout changes; old entries then miss.
#: v2: configs carry ``scenario_params`` (scenario registry).
#: v3: configs carry ``cluster`` (ClusterSpec) and results carry
#: ``balancer_stats`` (cluster routing diagnostics).
#: v4: configs carry ``policy_params`` (scheduling-policy registry).
#: v5: configs carry ``retain_records``; results carry ``accumulator``
#: (streaming metrics fold) and ``records`` may be ``null``.
CACHE_SCHEMA_VERSION = 5

_CONFIG_TYPES = {
    "ExperimentConfig": ExperimentConfig,
    "MultiNodeConfig": MultiNodeConfig,
}


# ----------------------------------------------------------------------
# Config / result serialization and fingerprinting
# ----------------------------------------------------------------------
#: Config fields holding ``(name, value)`` pair tuples that JSON would
#: flatten ambiguously; serialized as lists-of-lists and re-tupled on load.
_PAIR_FIELDS = ("node_overrides", "scenario_params", "policy_params")


def config_to_dict(config: AnyConfig) -> Dict[str, Any]:
    """A JSON-compatible, type-tagged dict of a config's fields."""
    data = {f.name: getattr(config, f.name) for f in fields(config)}
    for name in _PAIR_FIELDS:
        if name in data:
            data[name] = [list(pair) for pair in data[name]]
    if isinstance(data.get("cluster"), ClusterSpec):
        data["cluster"] = data["cluster"].to_dict()
    return {"type": type(config).__name__, "fields": data}


def _untuple(value: Any) -> Any:
    """JSON turns tuples into lists; restore tuples recursively so a config
    round-trips equal to the original (override values are tuples or
    scalars in practice)."""
    if isinstance(value, list):
        return tuple(_untuple(item) for item in value)
    return value


def config_from_dict(payload: Dict[str, Any]) -> AnyConfig:
    """Inverse of :func:`config_to_dict`."""
    cls = _CONFIG_TYPES[payload["type"]]
    data = dict(payload["fields"])
    for name in _PAIR_FIELDS:
        if name in data:
            data[name] = tuple((key, _untuple(value)) for key, value in data[name])
    if isinstance(data.get("cluster"), dict):
        data["cluster"] = ClusterSpec.from_dict(data["cluster"])
    return cls(**data)


def config_fingerprint(config: AnyConfig, *, namespace: str = "") -> str:
    """Content-addressed cache key: SHA-256 over the canonical JSON form of
    the config plus the package and cache-schema versions.

    Any field change, package version bump, or schema bump yields a new
    fingerprint, so the cache never serves results produced by different
    code or a different configuration.  ``namespace`` separates results
    produced by different runners (see :class:`ResultCache`).
    """
    material = {
        "schema": CACHE_SCHEMA_VERSION,
        "package_version": repro.__version__,
        "namespace": namespace,
        "config": config_to_dict(config),
    }
    blob = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def result_to_payload(result: ExperimentResult) -> Dict[str, Any]:
    """A JSON-compatible payload for one experiment result.

    Streaming results (``records is None``) serialize a ``null`` record
    list plus the constant-size accumulator — a cached million-invocation
    streaming cell stays a few hundred bytes on disk.
    """
    return {
        "config": config_to_dict(result.config),
        "records": None if result.records is None else records_to_dicts(result.records),
        "node_stats": result.node_stats,
        "balancer_stats": result.balancer_stats,
        "accumulator": (
            None if result.accumulator is None else result.accumulator.to_dict()
        ),
    }


def result_from_payload(payload: Dict[str, Any]) -> ExperimentResult:
    """Inverse of :func:`result_to_payload`."""
    records = payload["records"]
    accumulator = payload.get("accumulator")
    return ExperimentResult(
        config=config_from_dict(payload["config"]),
        records=None if records is None else records_from_dicts(records),
        node_stats=payload["node_stats"],
        balancer_stats=payload.get("balancer_stats"),
        accumulator=(
            None if accumulator is None else SummaryAccumulator.from_dict(accumulator)
        ),
    )


# ----------------------------------------------------------------------
# On-disk cache
# ----------------------------------------------------------------------
class ResultCache:
    """Content-addressed result store under ``root``.

    Entries live at ``root/<fp[:2]>/<fp>.json`` (two-level fan-out keeps
    directories small on full-paper grids).  Writes are atomic
    (temp file + :func:`os.replace`), so concurrent workers or interrupted
    runs never leave a partially written entry; corrupt or unreadable
    entries are treated as misses and recomputed.
    """

    def __init__(self, root: Union[str, Path], namespace: str = "") -> None:
        # expanduser: '~/...' roots arrive unexpanded from Python callers
        # and env vars (REPRO_CACHE_DIR); without this a literal '~'
        # directory appears in the CWD and the cache is never shared with
        # shell-expanded CLI paths.
        self.root = Path(root).expanduser()
        # Fail fast on an unusable root (e.g. an existing file) before any
        # experiment time is spent computing results that cannot be stored.
        self.root.mkdir(parents=True, exist_ok=True)
        #: Mixed into every fingerprint; the engine sets this to the custom
        #: runner's qualified name so results produced by different runners
        #: never collide in a shared cache directory.
        self.namespace = namespace
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def path_for(self, config: AnyConfig) -> Path:
        fingerprint = config_fingerprint(config, namespace=self.namespace)
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    def load(self, config: AnyConfig) -> Optional[ExperimentResult]:
        """The cached result for ``config``, or ``None`` on a miss."""
        path = self.path_for(config)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            result = result_from_payload(payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, config: AnyConfig, result: ExperimentResult) -> Path:
        """Persist ``result`` under ``config``'s fingerprint atomically."""
        path = self.path_for(config)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "fingerprint": path.stem,
            "schema": CACHE_SCHEMA_VERSION,
            "package_version": repro.__version__,
            "result": result_to_payload(result),
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        os.replace(tmp, path)
        self.stores += 1
        return path


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
@dataclass
class EngineStats:
    """What one :func:`run_configs` invocation did."""

    total: int = 0
    computed: int = 0
    cached: int = 0
    jobs: int = 1


@dataclass(frozen=True)
class EngineOptions:
    """Execution knobs threaded through the artifact registry and CLI."""

    jobs: int = 1
    cache_dir: Optional[str] = None
    progress: Optional[ProgressCallback] = None

    def run_kwargs(self) -> Dict[str, Any]:
        return {
            "jobs": self.jobs,
            "cache_dir": self.cache_dir,
            "progress": self.progress,
        }


class WorkerError(RuntimeError):
    """An experiment raised inside a worker process.

    Carries the failing config's label and the remote traceback text, since
    the original exception object cannot always cross the process boundary.
    """

    def __init__(self, label: str, message: str, remote_traceback: str) -> None:
        super().__init__(f"experiment {label!r} failed in worker: {message}")
        self.label = label
        self.remote_traceback = remote_traceback


def progress_printer(stream: Optional[TextIO] = None) -> ProgressCallback:
    """A progress callback writing ``[done/total] run|cache <label>`` lines
    (to stderr by default, keeping stdout clean for rendered reports)."""

    def report(done: int, total: int, label: str, cached: bool) -> None:
        out = stream if stream is not None else sys.stderr
        out.write(f"[{done:>4}/{total}] {'cache' if cached else 'run  '} {label}\n")
        out.flush()

    return report


def _default_runner(config: AnyConfig) -> Runner:
    if isinstance(config, MultiNodeConfig):
        return run_multi_node_experiment
    return run_experiment


def _runner_namespace(runner: Optional[Runner]) -> str:
    """Cache namespace for a custom runner (empty for the defaults).

    Runners without a stable qualified name (lambdas, partials) fall back
    to ``repr`` — nondeterministic across processes, which safely degrades
    such caches to per-invocation scope rather than ever serving another
    runner's results.
    """
    if runner is None:
        return ""
    module = getattr(runner, "__module__", "?")
    qualname = getattr(runner, "__qualname__", None)
    if not qualname or "<lambda>" in qualname:
        return repr(runner)
    return f"{module}.{qualname}"


_OK, _ERR = "ok", "err"


def _execute(task: Tuple[int, AnyConfig, Runner]) -> Tuple[str, int, Any, Any, Any]:
    """Pool worker: run one experiment, shipping failures back as data so
    the parent can raise a :class:`WorkerError` with full context."""
    index, config, runner = task
    try:
        return (_OK, index, runner(config), None, None)
    except Exception as exc:  # noqa: BLE001 - re-raised in the parent
        message = f"{type(exc).__name__}: {exc}"
        return (_ERR, index, config.label(), message, traceback.format_exc())


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork shares the already-imported package with workers (fast startup)
    # but is only safe on Linux — macOS deliberately defaults to spawn
    # (fork is unreliable with threads/the ObjC runtime there) and Windows
    # has no fork.  Elsewhere use the platform default, which works because
    # _execute and the runners are picklable top-level callables.
    if sys.platform == "linux":
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()  # pragma: no cover - non-Linux


def run_configs(
    configs: Iterable[AnyConfig],
    *,
    jobs: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    runner: Optional[Runner] = None,
    progress: Optional[ProgressCallback] = None,
    stats: Optional[EngineStats] = None,
) -> List[ExperimentResult]:
    """Run experiments, optionally in parallel and through a result cache.

    Parameters
    ----------
    configs:
        Experiment configurations; the returned list matches their order.
    jobs:
        Worker processes.  ``1`` (the default) runs inline in this process
        — the exact code path the repo has always had; failures then raise
        the original exception.  ``N > 1`` shards cache misses across a
        ``multiprocessing`` pool; a failure in any worker raises
        :class:`WorkerError` and cancels the remaining work.
    cache_dir:
        Root of an on-disk :class:`ResultCache`.  Hits skip computation
        entirely; misses are computed and stored.  ``None`` disables
        caching.
    runner:
        Override the per-config runner (must be a picklable top-level
        callable when ``jobs > 1``).  Defaults to
        :func:`~repro.experiments.runner.run_experiment` /
        :func:`~repro.experiments.runner.run_multi_node_experiment`
        depending on each config's type.
    progress:
        ``callback(done, total, label, cached)`` invoked once per finished
        config (see :func:`progress_printer`).
    stats:
        An :class:`EngineStats` to fill in place (total/computed/cached).

    Results are bit-identical across ``jobs`` values: each config seeds its
    own RNGs inside whichever process runs it, and result order is fixed by
    input order, not completion order.
    """
    configs = list(configs)
    stats = stats if stats is not None else EngineStats()
    stats.total = len(configs)
    stats.jobs = max(1, int(jobs))
    cache = (
        ResultCache(cache_dir, namespace=_runner_namespace(runner))
        if cache_dir is not None
        else None
    )

    results: List[Optional[ExperimentResult]] = [None] * len(configs)
    done = 0

    def finished(index: int, config: AnyConfig, result: ExperimentResult, cached: bool) -> None:
        nonlocal done
        results[index] = result
        done += 1
        if cached:
            stats.cached += 1
        else:
            stats.computed += 1
            if cache is not None:
                cache.store(config, result)
        if progress is not None:
            progress(done, stats.total, config.label(), cached)

    pending: List[Tuple[int, AnyConfig, Runner]] = []
    for index, config in enumerate(configs):
        hit = cache.load(config) if cache is not None else None
        if hit is not None:
            finished(index, config, hit, cached=True)
        else:
            pending.append((index, config, runner or _default_runner(config)))

    if not pending:
        return results  # type: ignore[return-value]

    if stats.jobs <= 1:
        for index, config, run in pending:
            finished(index, config, run(config), cached=False)
        return results  # type: ignore[return-value]

    if len(pending) == 1:
        # One miss does not warrant a pool, but jobs > 1 promises the
        # WorkerError contract, so route through the same wrapper.
        outcomes = map(_execute, pending)
    else:
        workers = min(stats.jobs, len(pending))
        pool = _pool_context().Pool(processes=workers)
        # imap yields in submission order regardless of which worker ran
        # what — deterministic output for free; chunksize=1 load-balances
        # the heavier high-intensity cells.
        outcomes = pool.imap(_execute, pending, chunksize=1)
    try:
        for (index, config, _), outcome in zip(pending, outcomes):
            status, _idx, payload, message, remote_tb = outcome
            if status == _ERR:
                raise WorkerError(payload, message, remote_tb)
            finished(index, config, payload, cached=False)
    finally:
        if len(pending) > 1:
            pool.terminate()
            pool.join()
    return results  # type: ignore[return-value]
