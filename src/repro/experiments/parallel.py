"""Parallel experiment execution with an on-disk result cache.

The paper's evaluation is a grid of cores × intensity × strategy × 5 seeds
(Tables II–IV, Figs. 3–4 and the appendix figures); every cell is an
independent, fully seeded simulation.  This module exploits that
independence twice:

* **Parallelism** — :func:`run_configs` shards a list of experiment
  configurations across worker processes (``jobs=N``), one process per
  cell.  Results are slotted by input index, so the returned list order —
  and, because every run is deterministic given its config, every byte of
  every result — is identical to the serial path.  The engine is
  crash-hardened: a worker killed by the OS is retried once with backoff
  before surfacing as a :class:`WorkerError`, and a per-cell wall-clock
  timeout (``REPRO_CELL_TIMEOUT`` / ``cell_timeout=``) cancels hung cells
  while the rest of the sweep completes.

* **Caching** — :class:`ResultCache` persists each
  :class:`~repro.experiments.runner.ExperimentResult` under a
  content-addressed key: a SHA-256 over the canonical JSON form of the
  config, the package version, and the cache schema version
  (:func:`config_fingerprint`).  Re-running a grid, or regenerating a
  different artifact view over the same grid, only computes missing cells.
  A version bump changes every fingerprint, so stale entries are never
  hit — invalidation is structural, not TTL-based.

Determinism contract: workers never share RNG state.  Each cell builds its
own :class:`~repro.sim.rng.RngRegistry` from ``config.seed`` inside the
worker process, exactly as the serial path does, which is why parallel
results are bit-identical to serial ones (enforced by
``tests/experiments/test_parallel.py``).
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import queue as queue_module
import sys
import time
import traceback
from collections import deque
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, TextIO, Tuple, Union

import repro
from repro.cluster.spec import ClusterSpec
from repro.experiments.config import ExperimentConfig, MultiNodeConfig
from repro.failures.spec import FailureSpec
from repro.experiments.runner import (
    ExperimentResult,
    run_experiment,
    run_multi_node_experiment,
)
from repro.metrics.serialize import records_from_dicts, records_to_dicts
from repro.metrics.streaming import SummaryAccumulator

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheVerification",
    "EngineOptions",
    "EngineStats",
    "ResultCache",
    "WorkerError",
    "config_fingerprint",
    "config_to_dict",
    "config_from_dict",
    "result_to_payload",
    "result_from_payload",
    "run_configs",
    "progress_printer",
    "verify_cache",
]

AnyConfig = Union[ExperimentConfig, MultiNodeConfig]
Runner = Callable[[AnyConfig], ExperimentResult]
ProgressCallback = Callable[[int, int, str, bool], None]

#: Bump when the cached payload layout changes; old entries then miss.
#: v2: configs carry ``scenario_params`` (scenario registry).
#: v3: configs carry ``cluster`` (ClusterSpec) and results carry
#: ``balancer_stats`` (cluster routing diagnostics).
#: v4: configs carry ``policy_params`` (scheduling-policy registry).
#: v5: configs carry ``retain_records``; results carry ``accumulator``
#: (streaming metrics fold) and ``records`` may be ``null``.
#: v6: configs carry ``failures`` (FailureSpec); records may carry
#: ``attempts``/``outcome`` and summaries the failure counters.
CACHE_SCHEMA_VERSION = 6

_CONFIG_TYPES = {
    "ExperimentConfig": ExperimentConfig,
    "MultiNodeConfig": MultiNodeConfig,
}


# ----------------------------------------------------------------------
# Config / result serialization and fingerprinting
# ----------------------------------------------------------------------
#: Config fields holding ``(name, value)`` pair tuples that JSON would
#: flatten ambiguously; serialized as lists-of-lists and re-tupled on load.
_PAIR_FIELDS = ("node_overrides", "scenario_params", "policy_params")


def config_to_dict(config: AnyConfig) -> Dict[str, Any]:
    """A JSON-compatible, type-tagged dict of a config's fields."""
    data = {f.name: getattr(config, f.name) for f in fields(config)}
    for name in _PAIR_FIELDS:
        if name in data:
            data[name] = [list(pair) for pair in data[name]]
    if isinstance(data.get("cluster"), ClusterSpec):
        data["cluster"] = data["cluster"].to_dict()
    if isinstance(data.get("failures"), FailureSpec):
        data["failures"] = data["failures"].to_dict()
    return {"type": type(config).__name__, "fields": data}


def _untuple(value: Any) -> Any:
    """JSON turns tuples into lists; restore tuples recursively so a config
    round-trips equal to the original (override values are tuples or
    scalars in practice)."""
    if isinstance(value, list):
        return tuple(_untuple(item) for item in value)
    return value


def config_from_dict(payload: Dict[str, Any]) -> AnyConfig:
    """Inverse of :func:`config_to_dict`."""
    cls = _CONFIG_TYPES[payload["type"]]
    data = dict(payload["fields"])
    for name in _PAIR_FIELDS:
        if name in data:
            data[name] = tuple((key, _untuple(value)) for key, value in data[name])
    if isinstance(data.get("cluster"), dict):
        data["cluster"] = ClusterSpec.from_dict(data["cluster"])
    if isinstance(data.get("failures"), dict):
        data["failures"] = FailureSpec.from_dict(data["failures"])
    return cls(**data)


def config_fingerprint(config: AnyConfig, *, namespace: str = "") -> str:
    """Content-addressed cache key: SHA-256 over the canonical JSON form of
    the config plus the package and cache-schema versions.

    Any field change, package version bump, or schema bump yields a new
    fingerprint, so the cache never serves results produced by different
    code or a different configuration.  ``namespace`` separates results
    produced by different runners (see :class:`ResultCache`).
    """
    material = {
        "schema": CACHE_SCHEMA_VERSION,
        "package_version": repro.__version__,
        "namespace": namespace,
        "config": config_to_dict(config),
    }
    blob = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def result_to_payload(result: ExperimentResult) -> Dict[str, Any]:
    """A JSON-compatible payload for one experiment result.

    Streaming results (``records is None``) serialize a ``null`` record
    list plus the constant-size accumulator — a cached million-invocation
    streaming cell stays a few hundred bytes on disk.
    """
    return {
        "config": config_to_dict(result.config),
        "records": None if result.records is None else records_to_dicts(result.records),
        "node_stats": result.node_stats,
        "balancer_stats": result.balancer_stats,
        "accumulator": (
            None if result.accumulator is None else result.accumulator.to_dict()
        ),
    }


def result_from_payload(payload: Dict[str, Any]) -> ExperimentResult:
    """Inverse of :func:`result_to_payload`."""
    records = payload["records"]
    accumulator = payload.get("accumulator")
    return ExperimentResult(
        config=config_from_dict(payload["config"]),
        records=None if records is None else records_from_dicts(records),
        node_stats=payload["node_stats"],
        balancer_stats=payload.get("balancer_stats"),
        accumulator=(
            None if accumulator is None else SummaryAccumulator.from_dict(accumulator)
        ),
    )


# ----------------------------------------------------------------------
# On-disk cache
# ----------------------------------------------------------------------
class ResultCache:
    """Content-addressed result store under ``root``.

    Entries live at ``root/<fp[:2]>/<fp>.json`` (two-level fan-out keeps
    directories small on full-paper grids).  Writes are atomic
    (temp file + :func:`os.replace`), so concurrent workers or interrupted
    runs never leave a partially written entry; corrupt or unreadable
    entries are treated as misses and recomputed.
    """

    def __init__(self, root: Union[str, Path], namespace: str = "") -> None:
        # expanduser: '~/...' roots arrive unexpanded from Python callers
        # and env vars (REPRO_CACHE_DIR); without this a literal '~'
        # directory appears in the CWD and the cache is never shared with
        # shell-expanded CLI paths.
        self.root = Path(root).expanduser()
        # Fail fast on an unusable root (e.g. an existing file) before any
        # experiment time is spent computing results that cannot be stored.
        self.root.mkdir(parents=True, exist_ok=True)
        #: Mixed into every fingerprint; the engine sets this to the custom
        #: runner's qualified name so results produced by different runners
        #: never collide in a shared cache directory.
        self.namespace = namespace
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def path_for(self, config: AnyConfig) -> Path:
        fingerprint = config_fingerprint(config, namespace=self.namespace)
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    def load(self, config: AnyConfig) -> Optional[ExperimentResult]:
        """The cached result for ``config``, or ``None`` on a miss."""
        path = self.path_for(config)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            result = result_from_payload(payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, config: AnyConfig, result: ExperimentResult) -> Path:
        """Persist ``result`` under ``config``'s fingerprint atomically."""
        path = self.path_for(config)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "fingerprint": path.stem,
            "schema": CACHE_SCHEMA_VERSION,
            "package_version": repro.__version__,
            "result": result_to_payload(result),
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        os.replace(tmp, path)
        self.stores += 1
        return path


# ----------------------------------------------------------------------
# Cache verification
# ----------------------------------------------------------------------
#: Sidecar directory for quarantined entries.  Not two hex characters, so
#: the scan (and the cache's own two-level fan-out) never visits it.
QUARANTINE_DIR = "quarantine"


@dataclass
class CacheVerification:
    """What :func:`verify_cache` found under one cache root."""

    scanned: int = 0
    ok: int = 0
    #: Truncated, non-JSON, or payload-invalid entries.
    corrupt: int = 0
    #: Entries written under a different cache schema or package version
    #: (they can never be hits — fingerprints cover both — but they
    #: accumulate as dead weight until quarantined).
    stale: int = 0
    #: Quarantined file names (relative to the quarantine dir).
    quarantined: List[str] = field(default_factory=list)

    @property
    def bad(self) -> int:
        return self.corrupt + self.stale


def _classify_entry(path: Path) -> Optional[str]:
    """``None`` for a healthy entry, else ``"corrupt"`` or ``"stale"``."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(payload, dict):
            raise ValueError("payload is not an object")
        if (
            payload.get("schema") != CACHE_SCHEMA_VERSION
            or payload.get("package_version") != repro.__version__
        ):
            return "stale"
        if payload.get("fingerprint") != path.stem:
            return "corrupt"
        result_from_payload(payload["result"])
    except (OSError, ValueError, KeyError, TypeError):
        return "corrupt"
    return None


def verify_cache(
    root: Union[str, Path], *, quarantine: bool = True
) -> CacheVerification:
    """Scan a cache root and classify every entry.

    Walks the two-level fan-out (``<2 hex>/<fingerprint>.json``), parsing
    and fully deserializing each entry.  Truncated/corrupt JSON (e.g. a
    machine that lost power mid-``os.replace`` on a non-atomic filesystem)
    and schema- or version-stale entries are moved to
    ``<root>/quarantine/`` (when ``quarantine=True``), so the cache holds
    only entries that can actually be served.  ``ResultCache.load`` treats
    bad entries as misses anyway — verification exists to *report* the
    damage and reclaim the namespace, not to make loads safe.
    """
    root = Path(root).expanduser()
    report = CacheVerification()
    if not root.is_dir():
        return report
    quarantine_dir = root / QUARANTINE_DIR
    shards = [
        entry
        for entry in sorted(root.iterdir())
        if entry.is_dir() and len(entry.name) == 2
        and all(c in "0123456789abcdef" for c in entry.name)
    ]
    for shard in shards:
        for path in sorted(shard.glob("*.json")):
            report.scanned += 1
            verdict = _classify_entry(path)
            if verdict is None:
                report.ok += 1
                continue
            if verdict == "stale":
                report.stale += 1
            else:
                report.corrupt += 1
            if quarantine:
                quarantine_dir.mkdir(parents=True, exist_ok=True)
                target = quarantine_dir / f"{shard.name}-{path.name}"
                os.replace(path, target)
                report.quarantined.append(target.name)
    return report


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
@dataclass
class EngineStats:
    """What one :func:`run_configs` invocation did."""

    total: int = 0
    computed: int = 0
    cached: int = 0
    jobs: int = 1
    #: Worker processes that died (e.g. OOM-killed) and were respawned.
    retries: int = 0
    #: Cells cancelled for exceeding the per-cell wall-clock timeout.
    timeouts: int = 0
    #: Which execution backend ran the sweep (see experiments.executor).
    executor: str = "local"
    #: Wall-clock seconds spent inside :func:`run_configs`.
    elapsed: float = 0.0

    def summary_line(self) -> str:
        """The one-line human engine summary printed after every sweep."""
        return (
            f"engine: {self.total} runs "
            f"({self.computed} computed, {self.cached} from cache, "
            f"jobs={self.jobs}, executor={self.executor}) "
            f"retries={self.retries} timeouts={self.timeouts} "
            f"elapsed={self.elapsed:.1f}s"
        )


@dataclass(frozen=True)
class EngineOptions:
    """Execution knobs threaded through the artifact registry and CLI."""

    jobs: int = 1
    cache_dir: Optional[str] = None
    progress: Optional[ProgressCallback] = None
    #: Per-cell wall-clock budget in seconds (``jobs > 1`` only); ``None``
    #: defers to the ``REPRO_CELL_TIMEOUT`` environment variable.
    cell_timeout: Optional[float] = None
    #: Execution backend name (``local``/``queue``); ``None`` defers to
    #: the ``REPRO_EXECUTOR`` environment variable, then ``local``.
    executor: Optional[str] = None
    #: An :class:`EngineStats` filled in place across the artifact's
    #: sweeps, so callers (the CLI) can print the engine summary line.
    stats: Optional[EngineStats] = field(default=None, compare=False)

    def run_kwargs(self) -> Dict[str, Any]:
        return {
            "jobs": self.jobs,
            "cache_dir": self.cache_dir,
            "progress": self.progress,
            "cell_timeout": self.cell_timeout,
            "executor": self.executor,
            "stats": self.stats,
        }


class WorkerError(RuntimeError):
    """An experiment raised inside a worker process.

    Carries the failing config's label and the remote traceback text, since
    the original exception object cannot always cross the process boundary.
    """

    def __init__(self, label: str, message: str, remote_traceback: str) -> None:
        super().__init__(f"experiment {label!r} failed in worker: {message}")
        self.label = label
        self.remote_traceback = remote_traceback


def progress_printer(stream: Optional[TextIO] = None) -> ProgressCallback:
    """A progress callback writing ``[done/total] run|cache <label>`` lines
    (to stderr by default, keeping stdout clean for rendered reports)."""

    def report(done: int, total: int, label: str, cached: bool) -> None:
        out = stream if stream is not None else sys.stderr
        out.write(f"[{done:>4}/{total}] {'cache' if cached else 'run  '} {label}\n")
        out.flush()

    return report


def _default_runner(config: AnyConfig) -> Runner:
    if isinstance(config, MultiNodeConfig):
        return run_multi_node_experiment
    return run_experiment


def _runner_namespace(runner: Optional[Runner]) -> str:
    """Cache namespace for a custom runner (empty for the defaults).

    Runners without a stable qualified name (lambdas, partials) fall back
    to ``repr`` — nondeterministic across processes, which safely degrades
    such caches to per-invocation scope rather than ever serving another
    runner's results.
    """
    if runner is None:
        return ""
    module = getattr(runner, "__module__", "?")
    qualname = getattr(runner, "__qualname__", None)
    if not qualname or "<lambda>" in qualname:
        return repr(runner)
    return f"{module}.{qualname}"


_OK, _ERR = "ok", "err"

#: Environment variable supplying the default per-cell wall-clock budget.
CELL_TIMEOUT_ENV = "REPRO_CELL_TIMEOUT"
#: A crashed (not erroring — killed) worker is respawned this many times
#: total before the cell surfaces as a :class:`WorkerError`.
_CRASH_MAX_ATTEMPTS = 2
#: Backoff before respawning a crashed worker: base * 2**(attempt-1).
_CRASH_BACKOFF_S = 0.25
#: After a worker process exits, its result may still be in flight in the
#: queue pipe; wait this long before declaring the death a crash.
_CRASH_GRACE_S = 1.0
#: Parent poll interval while waiting on worker results.
_POLL_S = 0.05


def _cell_main(index: int, config: AnyConfig, runner: Runner, results) -> None:
    """Worker process entry: run one experiment, shipping failures back as
    data so the parent can raise a :class:`WorkerError` with full context.
    A worker that never reports (killed, hung) is handled by the parent's
    liveness/deadline tracking — the sweep cannot hang on it."""
    try:
        results.put((_OK, index, runner(config), None, None))
    except Exception as exc:  # noqa: BLE001 - re-raised in the parent
        message = f"{type(exc).__name__}: {exc}"
        results.put((_ERR, index, config.label(), message, traceback.format_exc()))


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork shares the already-imported package with workers (fast startup)
    # but is only safe on Linux — macOS deliberately defaults to spawn
    # (fork is unreliable with threads/the ObjC runtime there) and Windows
    # has no fork.  Elsewhere use the platform default, which works because
    # _cell_main and the runners are picklable top-level callables.
    if sys.platform == "linux":
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()  # pragma: no cover - non-Linux


def _resolve_cell_timeout(cell_timeout: Optional[float]) -> Optional[float]:
    """The effective per-cell budget: the explicit value, else the
    ``REPRO_CELL_TIMEOUT`` environment variable; non-positive disables."""
    if cell_timeout is None:
        raw = os.environ.get(CELL_TIMEOUT_ENV, "").strip()
        if not raw:
            return None
        try:
            cell_timeout = float(raw)
        except ValueError:
            raise ValueError(
                f"{CELL_TIMEOUT_ENV}={raw!r} is not a number (seconds)"
            ) from None
    cell_timeout = float(cell_timeout)
    return cell_timeout if cell_timeout > 0 else None


@dataclass
class _Cell:
    """Parent-side state of one in-flight worker process."""

    index: int
    config: AnyConfig
    run: Runner
    process: Any
    started: float
    deadline: Optional[float]
    attempt: int
    died_at: Optional[float] = None


class _ProcessEngine:
    """One process per pending cell, bounded by the worker budget.

    Unlike a ``multiprocessing.Pool`` (whose ``imap`` blocks forever on a
    worker the OS killed), the parent owns every child ``Process`` and
    polls liveness and per-cell deadlines itself:

    * a worker that **errors** ships the traceback back and the sweep
      aborts with :class:`WorkerError` (the historical contract);
    * a worker that **dies** (OOM killer, SIGKILL) is respawned once with
      backoff — the cell is deterministic, so the retry is exact — and
      only a repeat death surfaces as :class:`WorkerError` with the exit
      code;
    * a worker that **hangs** past ``cell_timeout`` is terminated and
      recorded; the rest of the sweep completes before the timeouts are
      raised as one aggregate :class:`WorkerError`.
    """

    def __init__(
        self,
        workers: int,
        cell_timeout: Optional[float],
        stats: EngineStats,
    ) -> None:
        self.workers = workers
        self.cell_timeout = cell_timeout
        self.stats = stats
        self.context = _pool_context()
        self.results = self.context.Queue()
        self.waiting: deque = deque()
        #: Crashed cells awaiting their backoff: (not_before, index, attempt).
        self.delayed: List[Tuple[float, int, AnyConfig, Runner, int]] = []
        self.running: Dict[int, _Cell] = {}
        #: ``(label, elapsed_s)`` of cells cancelled on deadline.
        self.timed_out: List[Tuple[str, float]] = []

    def run(self, pending, finished) -> None:
        for index, config, run in pending:
            self.waiting.append((index, config, run, 1))
        try:
            while self.waiting or self.delayed or self.running:
                self._promote_delayed()
                self._launch()
                if self._drain_one(finished):
                    continue
                self._check_running()
        finally:
            self._shutdown()
        if self.timed_out:
            detail = "; ".join(
                f"{label!r} after {elapsed:.1f}s" for label, elapsed in self.timed_out
            )
            raise WorkerError(
                self.timed_out[0][0],
                f"{len(self.timed_out)} cell(s) exceeded the "
                f"{self.cell_timeout}s cell timeout: {detail}",
                "(cell cancelled on deadline; no worker traceback)",
            )

    # -- scheduling ----------------------------------------------------
    def _promote_delayed(self) -> None:
        now = time.monotonic()
        due = [entry for entry in self.delayed if now >= entry[0]]
        for entry in due:
            self.delayed.remove(entry)
            self.waiting.append(entry[1:])

    def _launch(self) -> None:
        while self.waiting and len(self.running) < self.workers:
            index, config, run, attempt = self.waiting.popleft()
            process = self.context.Process(
                target=_cell_main, args=(index, config, run, self.results)
            )
            process.daemon = True
            process.start()
            now = time.monotonic()
            self.running[index] = _Cell(
                index=index,
                config=config,
                run=run,
                process=process,
                started=now,
                deadline=(
                    now + self.cell_timeout if self.cell_timeout is not None else None
                ),
                attempt=attempt,
            )

    # -- results -------------------------------------------------------
    def _drain_one(self, finished) -> bool:
        """Handle one worker message; True when a message was consumed."""
        try:
            outcome = self.results.get(timeout=_POLL_S)
        except queue_module.Empty:
            return False
        status, index, payload, message, remote_tb = outcome
        cell = self.running.pop(index, None)
        if cell is not None:
            cell.process.join(timeout=5.0)
        elif not any(entry[1] == index for entry in self.delayed):
            # A late result from a cell already cancelled on deadline (or
            # a respawn raced its predecessor's flush): drop it.
            return True
        if status == _ERR:
            raise WorkerError(payload, message, remote_tb)
        if cell is None:
            return True
        finished(index, cell.config, payload, cached=False)
        return True

    # -- liveness / deadlines ------------------------------------------
    def _check_running(self) -> None:
        now = time.monotonic()
        for index, cell in list(self.running.items()):
            if cell.deadline is not None and now >= cell.deadline:
                self._cancel_on_deadline(cell, now)
            elif not cell.process.is_alive():
                if cell.died_at is None:
                    cell.died_at = now
                elif now - cell.died_at >= _CRASH_GRACE_S:
                    self._handle_crash(cell, now)

    def _cancel_on_deadline(self, cell: _Cell, now: float) -> None:
        del self.running[cell.index]
        _terminate(cell.process)
        elapsed = now - cell.started
        self.stats.timeouts += 1
        self.timed_out.append((cell.config.label(), elapsed))

    def _handle_crash(self, cell: _Cell, now: float) -> None:
        """The worker exited without reporting and the grace period passed
        with no queued result: it was killed (or died before flushing)."""
        del self.running[cell.index]
        cell.process.join(timeout=5.0)
        exitcode = cell.process.exitcode
        if cell.attempt < _CRASH_MAX_ATTEMPTS:
            self.stats.retries += 1
            backoff = _CRASH_BACKOFF_S * 2 ** (cell.attempt - 1)
            self.delayed.append(
                (now + backoff, cell.index, cell.config, cell.run, cell.attempt + 1)
            )
            return
        raise WorkerError(
            cell.config.label(),
            f"worker process died (exit code {exitcode}) on attempt "
            f"{cell.attempt}/{_CRASH_MAX_ATTEMPTS}",
            f"(worker killed with exit code {exitcode}; no traceback — "
            f"typically the OOM killer or an external signal)",
        )

    def _shutdown(self) -> None:
        for cell in self.running.values():
            _terminate(cell.process)
        self.running.clear()
        self.results.close()
        # Let the queue's feeder machinery wind down without blocking the
        # raise path on a wedged pipe.
        self.results.cancel_join_thread()


def _terminate(process) -> None:
    if process.is_alive():
        process.terminate()
    process.join(timeout=5.0)
    if process.is_alive():  # pragma: no cover - SIGTERM ignored
        process.kill()
        process.join(timeout=5.0)


def run_configs(
    configs: Iterable[AnyConfig],
    *,
    jobs: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    runner: Optional[Runner] = None,
    progress: Optional[ProgressCallback] = None,
    stats: Optional[EngineStats] = None,
    cell_timeout: Optional[float] = None,
    executor: Optional[str] = None,
) -> List[ExperimentResult]:
    """Run experiments, optionally in parallel and through a result cache.

    Parameters
    ----------
    configs:
        Experiment configurations; the returned list matches their order.
    jobs:
        Worker processes.  ``1`` (the default) runs inline in this process
        — the exact code path the repo has always had; failures then raise
        the original exception.  ``N > 1`` shards cache misses across
        worker processes (one per cell); a failure in any worker raises
        :class:`WorkerError` and cancels the remaining work, a *killed*
        worker is respawned once before doing so (see
        :class:`_ProcessEngine`).
    cache_dir:
        Root of an on-disk :class:`ResultCache`.  Hits skip computation
        entirely; misses are computed and stored.  ``None`` disables
        caching.
    runner:
        Override the per-config runner (must be a picklable top-level
        callable when ``jobs > 1``).  Defaults to
        :func:`~repro.experiments.runner.run_experiment` /
        :func:`~repro.experiments.runner.run_multi_node_experiment`
        depending on each config's type.
    progress:
        ``callback(done, total, label, cached)`` invoked once per finished
        config (see :func:`progress_printer`).
    stats:
        An :class:`EngineStats` to fill in place (total/computed/cached).
    cell_timeout:
        Wall-clock budget per cell in seconds (``jobs > 1`` only — the
        inline path cannot cancel itself).  ``None`` defers to the
        ``REPRO_CELL_TIMEOUT`` environment variable; unset or non-positive
        disables.  A cell over budget is terminated and recorded; the rest
        of the sweep completes before a :class:`WorkerError` aggregating
        the cancelled cells is raised.  Local executor only: the queue
        executor cannot enforce a per-cell deadline (its lease heartbeat
        keeps a claimed cell alive indefinitely) and raises
        :class:`ValueError` rather than silently ignoring one.
    executor:
        Execution backend for the pending (non-cached) cells: ``"local"``
        (the historical in-process engine) or ``"queue"`` (claim cells
        from the shared cache root so detached ``faas-sched worker``
        processes — on any host — can compute them too; see
        :mod:`repro.experiments.queue`).  ``None`` defers to the
        ``REPRO_EXECUTOR`` environment variable, then ``local``.

    Results are bit-identical across ``jobs`` values *and* executors: each
    config seeds its own RNGs inside whichever process runs it, and result
    order is fixed by input order, not completion order.
    """
    from repro.experiments.executor import ExecutionContext, get_executor

    configs = list(configs)
    cell_timeout = _resolve_cell_timeout(cell_timeout)
    backend = get_executor(executor)
    stats = stats if stats is not None else EngineStats()
    stats.total += len(configs)
    stats.jobs = max(1, int(jobs))
    stats.executor = backend.name
    started = time.monotonic()
    cache = (
        ResultCache(cache_dir, namespace=_runner_namespace(runner))
        if cache_dir is not None
        else None
    )

    results: List[Optional[ExperimentResult]] = [None] * len(configs)
    done = 0

    def finished(index: int, config: AnyConfig, result: ExperimentResult, cached: bool) -> None:
        nonlocal done
        results[index] = result
        done += 1
        if cached:
            stats.cached += 1
        else:
            stats.computed += 1
        if progress is not None:
            progress(done, stats.total, config.label(), cached)

    pending: List[Tuple[int, AnyConfig, Runner]] = []
    for index, config in enumerate(configs):
        hit = cache.load(config) if cache is not None else None
        if hit is not None:
            finished(index, config, hit, cached=True)
        else:
            pending.append((index, config, runner or _default_runner(config)))

    try:
        if pending:
            backend.execute(
                pending,
                finished,
                ExecutionContext(
                    jobs=stats.jobs,
                    cache=cache,
                    cell_timeout=cell_timeout,
                    stats=stats,
                ),
            )
    finally:
        stats.elapsed += time.monotonic() - started
    return results  # type: ignore[return-value]
