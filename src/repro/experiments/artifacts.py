"""Grid-derived paper artifacts: Tables II–IV and Figures 3–4 (plus the
per-seed appendix figures 7–36, which are the same views without pooling).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.experiments.config import BASELINE
from repro.experiments.grid import (
    FIGURE_CORES,
    FIGURE_INTENSITIES,
    GridResults,
    GridSpec,
    run_grid,
)
from repro.experiments.paper_data import TABLE2_RATIO_RANGES, TABLE3
from repro.metrics.ascii import render_boxplot
from repro.metrics.report import format_table, render_summary_table
from repro.metrics.stats import BoxStats

__all__ = [
    "Table2Result",
    "table2_from_grid",
    "Table3Result",
    "table3_from_grid",
    "FigureBoxes",
    "fig3_from_grid",
    "fig4_from_grid",
    "reject_cluster_sweep",
]


# ----------------------------------------------------------------------
# Table II — FIFO/baseline makespan ratios
# ----------------------------------------------------------------------
ScenarioParams = Tuple[Tuple[str, object], ...]


def _scenario_tag(scenario: str, params: ScenarioParams = ()) -> str:
    """Title suffix when a report's grid ran under a workload override —
    the override (name *and* parameters) changes what the numbers mean,
    so every view says so."""
    if scenario == "uniform":
        return ""
    detail = " ".join(f"{name}={value}" for name, value in params)
    return f" [scenario={scenario}{' ' + detail if detail else ''}]"


def _cluster_tag(spec: GridSpec) -> str:
    """Title suffix when the whole grid ran on one non-default cluster
    topology.  Sweeps over several topologies tag nothing here — every
    row's label then carries its own ``nodes``/``balancer``."""
    variants = spec.cluster_variants()
    if len(variants) != 1 or variants[0].is_default:
        return ""
    variant = variants[0]
    tag = f" [cluster: nodes={variant.nodes} balancer={variant.balancer}"
    if variant.autoscaler is not None:
        tag += " autoscale"
    return tag + "]"


def reject_cluster_sweep(spec: GridSpec, artifact: str) -> None:
    """Figure 3/4 and Table II views are keyed per (cores, intensity,
    strategy); under a multi-topology sweep they would silently render
    empty.  Refuse instead — one topology per invocation (Table III/IV
    render sweeps natively).  The registry calls this *before* running a
    grid so a doomed sweep fails before any simulation time is spent.
    """
    if spec.has_cluster_sweep:
        raise ValueError(
            f"{artifact} renders one cluster topology at a time; this grid "
            f"sweeps nodes={spec.nodes} x balancers={spec.balancers}. "
            f"Run per topology (single --nodes/--balancer), or view the sweep "
            f"through table3/table4."
        )


@dataclass
class Table2Result:
    """(cores, intensity) -> (lo, hi) FIFO/baseline max-c(i) ratio range."""

    ranges: Dict[Tuple[int, int], Tuple[float, float]]
    scenario: str = "uniform"
    scenario_params: ScenarioParams = ()
    cluster_tag: str = ""

    def render(self) -> str:
        rows = []
        for (cores, intensity), (lo, hi) in sorted(self.ranges.items()):
            paper = TABLE2_RATIO_RANGES.get((cores, intensity))
            paper_cell = f"{paper[0]:.2f}-{paper[1]:.2f}" if paper else "-"
            rows.append([cores, intensity, paper_cell, f"{lo:.2f}-{hi:.2f}"])
        return format_table(
            ["cores", "intensity", "paper FIFO/baseline", "measured FIFO/baseline"],
            rows,
            title="Table II — max completion time, FIFO-to-baseline ratios"
            + _scenario_tag(self.scenario, self.scenario_params)
            + self.cluster_tag,
        )


def table2_from_grid(grid: GridResults) -> Table2Result:
    """Per-seed FIFO/baseline makespan ratios, reported as (min, max).

    The paper pairs seed *k* of FIFO with seed *k* of the baseline (both
    runs replay the same call sequence).
    """
    reject_cluster_sweep(grid.spec, "table2")
    ranges: Dict[Tuple[int, int], Tuple[float, float]] = {}
    for cores in grid.spec.cores:
        for intensity in grid.spec.intensities:
            key = (cores, intensity)
            try:
                fifo = grid.makespans(cores, intensity, "FIFO")
                base = grid.makespans(cores, intensity, BASELINE)
            except KeyError:
                continue
            ratios = [f / b for f, b in zip(fifo, base)]
            ranges[key] = (min(ratios), max(ratios))
    return Table2Result(
        ranges=ranges,
        scenario=grid.spec.scenario,
        scenario_params=grid.spec.scenario_params,
        cluster_tag=_cluster_tag(grid.spec),
    )


# ----------------------------------------------------------------------
# Table III / Table IV — aggregate and per-seed numeric grids
# ----------------------------------------------------------------------
@dataclass
class Table3Result:
    grid: GridResults
    per_seed: bool = False

    def render(self) -> str:
        entries = []
        for key in self.grid.cell_keys():
            label = self.grid.cell_label(key)
            if self.per_seed:
                for seed_idx, result in enumerate(self.grid.results_for(key), 1):
                    entries.append((f"{label} #{seed_idx}", result.summary()))
            else:
                entries.append((label, self.grid.summary_for(key)))
        title = (
            "Table IV — per-experiment numeric results"
            if self.per_seed
            else "Table III — aggregated numeric results"
        )
        title += _scenario_tag(self.grid.spec.scenario, self.grid.spec.scenario_params)
        title += _cluster_tag(self.grid.spec)
        return render_summary_table(entries, title=title)

    def render_comparison(self) -> str:
        """Paper-vs-measured for the cells present in both."""
        # The paper's Table III is single-node; comparing a different
        # topology against it would present apples as oranges.
        tag = _cluster_tag(self.grid.spec)
        if tag or self.grid.spec.has_cluster_sweep:
            return (
                "Table III — paper comparison skipped: the paper's numbers "
                "are single-node, this grid ran on a different cluster "
                "topology."
            )
        rows = []
        for (cores, intensity, strategy), paper in sorted(TABLE3.items()):
            if (cores, intensity, strategy) not in self.grid.cells:
                continue
            stats = self.grid.summary(cores, intensity, strategy)
            rows.append(
                [
                    f"c={cores} v={intensity} {strategy}",
                    paper[0],
                    stats.mean_response_time,
                    paper[1],
                    stats.response_time_percentiles[50],
                    paper[3],
                    stats.mean_stretch,
                    paper[5],
                    stats.max_completion_time,
                ]
            )
        return format_table(
            [
                "config",
                "R.avg paper", "R.avg ours",
                "R.p50 paper", "R.p50 ours",
                "S.avg paper", "S.avg ours",
                "mk paper", "mk ours",
            ],
            rows,
            title="Table III — paper vs. measured",
        )


def table3_from_grid(grid: GridResults, per_seed: bool = False) -> Table3Result:
    return Table3Result(grid=grid, per_seed=per_seed)


# ----------------------------------------------------------------------
# Figures 3 & 4 — box statistics per (cores, intensity, strategy)
# ----------------------------------------------------------------------
@dataclass
class FigureBoxes:
    """Box-plot statistics for one metric over the figure sub-grid."""

    metric: str  # "response_time" | "stretch"
    boxes: Dict[Tuple[int, int, str], BoxStats]
    scenario: str = "uniform"
    scenario_params: ScenarioParams = ()
    cluster_tag: str = ""

    def render(self) -> str:
        rows = []
        for (cores, intensity, strategy), box in sorted(
            self.boxes.items(), key=lambda kv: (kv[0][0], kv[0][1])
        ):
            rows.append(
                [
                    f"c={cores} v={intensity}",
                    strategy,
                    box.q1,
                    box.median,
                    box.q3,
                    box.mean,
                    box.whisker_high,
                    box.n,
                ]
            )
        figure = "Fig. 3 (response time [s])" if self.metric == "response_time" else "Fig. 4 (stretch)"
        table = format_table(
            ["panel", "strategy", "q1", "median", "q3", "mean", "whisker_hi", "n"],
            rows,
            title=f"{figure} — box statistics, pooled over seeds"
            + _scenario_tag(self.scenario, self.scenario_params)
            + self.cluster_tag,
        )
        return table + "\n\n" + self.render_plots()

    def render_plots(self) -> str:
        """ASCII box plots, one panel per (cores, intensity) — the text-mode
        equivalent of the paper's figure grid (stretch panels on log axes,
        as published)."""
        panels = sorted({(c, v) for c, v, _ in self.boxes})
        blocks = []
        for cores, intensity in panels:
            entries = [
                (strategy, self.boxes[(c, v, strategy)])
                for (c, v, strategy) in sorted(
                    self.boxes, key=lambda k: list(self.boxes).index(k)
                )
                if (c, v) == (cores, intensity)
            ]
            blocks.append(
                render_boxplot(
                    entries,
                    title=f"{cores} CPU cores, intensity {intensity}",
                    log_scale=(self.metric == "stretch"),
                    unit="s" if self.metric == "response_time" else "",
                )
            )
        return "\n\n".join(blocks)


def _figure_boxes(grid: GridResults, metric: str) -> FigureBoxes:
    reject_cluster_sweep(grid.spec, "fig3/fig4")
    boxes: Dict[Tuple[int, int, str], BoxStats] = {}
    cores_list = [c for c in FIGURE_CORES if c in grid.spec.cores] or list(grid.spec.cores)
    intensities = [v for v in FIGURE_INTENSITIES if v in grid.spec.intensities] or list(
        grid.spec.intensities
    )
    for cores in cores_list:
        for intensity in intensities:
            for strategy in grid.spec.strategies:
                if (cores, intensity, strategy) not in grid.cells:
                    continue
                if metric == "response_time":
                    boxes[(cores, intensity, strategy)] = grid.response_box(
                        cores, intensity, strategy
                    )
                else:
                    boxes[(cores, intensity, strategy)] = grid.stretch_box(
                        cores, intensity, strategy
                    )
    return FigureBoxes(
        metric=metric,
        boxes=boxes,
        scenario=grid.spec.scenario,
        scenario_params=grid.spec.scenario_params,
        cluster_tag=_cluster_tag(grid.spec),
    )


def fig3_from_grid(grid: GridResults) -> FigureBoxes:
    """Figure 3: response-time boxes on the {10,20} × {30,40,60} sub-grid."""
    return _figure_boxes(grid, "response_time")


def fig4_from_grid(grid: GridResults) -> FigureBoxes:
    """Figure 4: stretch boxes on the same sub-grid."""
    return _figure_boxes(grid, "stretch")
