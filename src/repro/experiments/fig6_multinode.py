"""Figure 6 / Tables V–VI reproduction: multi-node experiments.

Paper Sect. VIII: a fixed request sequence (1320 requests for 10-core
VMs; 2376 for 18-core VMs) is processed by 4, 3, 2 or 1 worker VMs,
comparing the stock baseline against our FC strategy.  Headline claim:
**FC on 3 VMs provides better response-time statistics than the baseline
on 4 VMs** (and FC on 2 VMs still wins on the average and 75th
percentile, losing only the extreme tail).

Since the cluster became a first-class grid dimension, this artifact is
just a sweep of :class:`~repro.experiments.config.ExperimentConfig`\\ s
whose :class:`~repro.cluster.spec.ClusterSpec` varies the node count —
executed through :func:`~repro.experiments.parallel.run_configs`, so it
parallelizes (``jobs``) and caches (``cache_dir``) like every other
experiment.  ``balancer`` selects any registered balancer flavour for
the whole sweep (the paper's protocol is ``least-loaded``).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cluster.spec import ClusterSpec
from repro.experiments.config import BASELINE, ExperimentConfig
from repro.experiments.paper_data import TABLE5
from repro.experiments.parallel import EngineStats, ProgressCallback, run_configs
from repro.metrics.records import CallRecord
from repro.metrics.report import format_table

__all__ = ["run_fig6", "Fig6Result", "REQUESTS_FOR_CORES", "fig6_config"]

#: Total request count per per-node core size (paper: core intensity 30
#: on 4 nodes): 4 * 11 * cores * 3.
REQUESTS_FOR_CORES = {10: 1320, 18: 2376}

#: The paper's Sect. VIII memory pool (40 GiB VMs).
MULTI_NODE_MEMORY_MB = 40960


def fig6_config(
    nodes: int,
    cores_per_node: int,
    total_requests: int,
    policy: str,
    seed: int,
    balancer: str = "least-loaded",
) -> ExperimentConfig:
    """One cell of the Sect. VIII sweep as a first-class grid config."""
    return ExperimentConfig(
        cores=cores_per_node,
        intensity=30,  # unused: the multi-node scenario pins total_requests
        policy=policy,
        seed=seed,
        memory_mb=MULTI_NODE_MEMORY_MB,
        scenario="multi-node",
        scenario_params={"total_requests": total_requests},
        cluster=ClusterSpec(nodes=nodes, balancer=balancer),
    )


@dataclass
class Fig6Result:
    """Pooled response-time statistics per (nodes, strategy)."""

    cores_per_node: int
    total_requests: int
    stats: Dict[Tuple[int, str], Dict[str, float]]

    def stat(self, nodes: int, strategy: str, key: str) -> float:
        return self.stats[(nodes, strategy)][key]

    def render(self) -> str:
        rows = []
        for (nodes, strategy), s in sorted(
            self.stats.items(), key=lambda kv: (-kv[0][0], kv[0][1])
        ):
            paper = TABLE5.get((nodes, self.cores_per_node, strategy))
            rows.append(
                [
                    nodes,
                    strategy,
                    paper[0] if paper else "-",
                    s["avg"],
                    paper[2] if paper else "-",
                    s["p75"],
                    paper[3] if paper else "-",
                    s["p95"],
                    paper[4] if paper else "-",
                    s["p99"],
                ]
            )
        return format_table(
            [
                "VMs", "strategy",
                "avg paper", "avg ours",
                "p75 paper", "p75 ours",
                "p95 paper", "p95 ours",
                "p99 paper", "p99 ours",
            ],
            rows,
            title=(
                f"Fig. 6 / Table V — multi-node response times "
                f"({self.cores_per_node} cores/VM, {self.total_requests} requests)"
            ),
        )


def run_fig6(
    cores_per_node: int = 18,
    node_counts: Sequence[int] = (4, 3, 2, 1),
    strategies: Sequence[str] = (BASELINE, "FC"),
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    balancer: str = "least-loaded",
    *,
    jobs: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    progress: Optional[ProgressCallback] = None,
    cell_timeout: Optional[float] = None,
    executor: Optional[str] = None,
    stats: Optional[EngineStats] = None,
) -> Fig6Result:
    """Run the multi-node sweep, pooling records over seeds.

    ``jobs``/``cache_dir``/``progress`` route the sweep through the
    parallel engine and its on-disk cache (bit-identical to the serial
    path, like every engine-run experiment); ``executor``/``stats``
    select the execution backend and accumulate engine counters (see
    :mod:`repro.experiments.executor`).
    """
    total_requests = REQUESTS_FOR_CORES.get(cores_per_node, 11 * 4 * cores_per_node * 3)
    cells = [(nodes, strategy) for nodes in node_counts for strategy in strategies]
    configs = [
        fig6_config(nodes, cores_per_node, total_requests, strategy, seed, balancer)
        for nodes, strategy in cells
        for seed in seeds
    ]
    flat = run_configs(
        configs,
        jobs=jobs,
        cache_dir=cache_dir,
        progress=progress,
        cell_timeout=cell_timeout,
        executor=executor,
        stats=stats,
    )

    cell_stats: Dict[Tuple[int, str], Dict[str, float]] = {}
    per_cell = len(seeds)
    for i, (nodes, strategy) in enumerate(cells):
        pooled: List[CallRecord] = []
        for result in flat[i * per_cell : (i + 1) * per_cell]:
            pooled.extend(result.records)
        responses = np.array([r.response_time for r in pooled])
        cell_stats[(nodes, strategy)] = {
            "avg": float(responses.mean()),
            "p50": float(np.percentile(responses, 50)),
            "p75": float(np.percentile(responses, 75)),
            "p95": float(np.percentile(responses, 95)),
            "p99": float(np.percentile(responses, 99)),
            "max": float(responses.max()),
            "n": float(len(responses)),
        }
    return Fig6Result(
        cores_per_node=cores_per_node, total_requests=total_requests, stats=cell_stats
    )
