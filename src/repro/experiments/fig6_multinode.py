"""Figure 6 / Tables V–VI reproduction: multi-node experiments.

Paper Sect. VIII: a fixed request sequence (1320 requests for 10-core
VMs; 2376 for 18-core VMs) is processed by 4, 3, 2 or 1 worker VMs,
comparing the stock baseline against our FC strategy.  Headline claim:
**FC on 3 VMs provides better response-time statistics than the baseline
on 4 VMs** (and FC on 2 VMs still wins on the average and 75th
percentile, losing only the extreme tail).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.experiments.config import BASELINE, MultiNodeConfig
from repro.experiments.paper_data import TABLE5
from repro.experiments.runner import run_multi_node_experiment
from repro.metrics.records import CallRecord
from repro.metrics.report import format_table

__all__ = ["run_fig6", "Fig6Result", "REQUESTS_FOR_CORES"]

#: Total request count per per-node core size (paper: core intensity 30
#: on 4 nodes): 4 * 11 * cores * 3.
REQUESTS_FOR_CORES = {10: 1320, 18: 2376}


@dataclass
class Fig6Result:
    """Pooled response-time statistics per (nodes, strategy)."""

    cores_per_node: int
    total_requests: int
    stats: Dict[Tuple[int, str], Dict[str, float]]

    def stat(self, nodes: int, strategy: str, key: str) -> float:
        return self.stats[(nodes, strategy)][key]

    def render(self) -> str:
        rows = []
        for (nodes, strategy), s in sorted(self.stats.items(), key=lambda kv: (-kv[0][0], kv[0][1])):
            paper = TABLE5.get((nodes, self.cores_per_node, strategy))
            rows.append(
                [
                    nodes,
                    strategy,
                    paper[0] if paper else "-",
                    s["avg"],
                    paper[2] if paper else "-",
                    s["p75"],
                    paper[3] if paper else "-",
                    s["p95"],
                    paper[4] if paper else "-",
                    s["p99"],
                ]
            )
        return format_table(
            [
                "VMs", "strategy",
                "avg paper", "avg ours",
                "p75 paper", "p75 ours",
                "p95 paper", "p95 ours",
                "p99 paper", "p99 ours",
            ],
            rows,
            title=(
                f"Fig. 6 / Table V — multi-node response times "
                f"({self.cores_per_node} cores/VM, {self.total_requests} requests)"
            ),
        )


def run_fig6(
    cores_per_node: int = 18,
    node_counts: Sequence[int] = (4, 3, 2, 1),
    strategies: Sequence[str] = (BASELINE, "FC"),
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
) -> Fig6Result:
    """Run the multi-node sweep, pooling records over seeds."""
    total_requests = REQUESTS_FOR_CORES.get(cores_per_node, 11 * 4 * cores_per_node * 3)
    stats: Dict[Tuple[int, str], Dict[str, float]] = {}
    for nodes in node_counts:
        for strategy in strategies:
            pooled: List[CallRecord] = []
            for seed in seeds:
                cfg = MultiNodeConfig(
                    nodes=nodes,
                    cores_per_node=cores_per_node,
                    total_requests=total_requests,
                    policy=strategy,
                    seed=seed,
                )
                pooled.extend(run_multi_node_experiment(cfg).records)
            responses = np.array([r.response_time for r in pooled])
            stats[(nodes, strategy)] = {
                "avg": float(responses.mean()),
                "p50": float(np.percentile(responses, 50)),
                "p75": float(np.percentile(responses, 75)),
                "p95": float(np.percentile(responses, 95)),
                "p99": float(np.percentile(responses, 99)),
                "max": float(responses.max()),
                "n": float(len(responses)),
            }
    return Fig6Result(
        cores_per_node=cores_per_node, total_requests=total_requests, stats=stats
    )
