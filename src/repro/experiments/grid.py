"""The paper's experiment grid (Sects. V–VII), plus the cluster dimension.

The grid spans cores × intensity × strategy × 5 seeds.  Tables II–IV and
Figures 3–4 (and appendix Figures 7–36) are all views over this grid, so
the runner caches results per cell and the artifact modules slice them.

Beyond the paper, a :class:`GridSpec` can also sweep the *cluster*
dimension — node count × balancer flavour (Sect. VIII elevated into the
grid): every cell then runs on each requested topology, cached and
parallelized exactly like the single-node cells.  When only one topology
is requested (the default), cell keys keep their historical
``(cores, intensity, strategy)`` form; a genuine cluster sweep extends
them to ``(cores, intensity, strategy, nodes, balancer)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.cluster.spec import ClusterSpec
from repro.experiments.config import BASELINE, ExperimentConfig
from repro.failures.spec import FAILURE_NONE, FailureSpec
from repro.experiments.parallel import EngineStats, ProgressCallback, run_configs
from repro.experiments.runner import ExperimentResult
from repro.metrics.records import CallRecord
from repro.metrics.stats import BoxStats, SummaryStats, box_stats, summarize
from repro.metrics.streaming import (
    StreamingSummary,
    SummaryAccumulator,
    merge_accumulators,
)

__all__ = [
    "GridSpec",
    "GridResults",
    "run_grid",
    "PAPER_CORES",
    "PAPER_INTENSITIES",
    "PAPER_STRATEGIES",
    "FIGURE_CORES",
    "FIGURE_INTENSITIES",
]

#: The full grid of the paper's Table III.
PAPER_CORES = (5, 10, 20)
PAPER_INTENSITIES = (30, 40, 60, 90, 120)
#: Strategy order used throughout the paper's figures.
PAPER_STRATEGIES = (BASELINE, "FIFO", "SEPT", "EECT", "RECT", "FC")
#: The subsets shown in the main-body Figures 3 and 4.
FIGURE_CORES = (10, 20)
FIGURE_INTENSITIES = (30, 40, 60)

#: A grid cell key: ``(cores, intensity, strategy)`` historically, or
#: ``(cores, intensity, strategy, nodes, balancer)`` under a cluster sweep.
CellKey = Union[Tuple[int, int, str], Tuple[int, int, str, int, str]]


@dataclass(frozen=True)
class GridSpec:
    """Which slice of the grid to run, and under which workload/topology.

    ``scenario``/``scenario_params`` select a registered workload scenario
    (default: the paper's ``uniform`` burst) applied to every cell — so any
    scenario from ``faas-sched scenarios`` can be swept over the full
    cores × intensity × strategy × seed grid, cached and parallelized like
    the paper's own workload.

    ``strategies`` name registered scheduling policies (or ``baseline``);
    ``policy_params`` reach each swept strategy filtered to the
    parameters it declares, so a sweep can mix parameterized and
    parameterless policies (e.g. ``strategies=("FC", "SEPT-EMA")`` with
    ``policy_params=(("window", 5),)``) — a parameter no swept strategy
    declares is a typo and is rejected before any run.

    ``nodes``/``balancers`` (plus ``balancer_params``/``autoscale``) sweep
    the cluster topology the same way: every cell runs once per
    ``nodes × balancers`` combination.  The defaults request exactly the
    classic single-node topology, keeping cell keys and results identical
    to the historical grid.

    ``retain_records=False`` runs every cell in streaming mode: results
    carry only the constant-size accumulator, record-derived grid views
    raise :class:`~repro.experiments.runner.RecordsNotRetainedError`, and
    the ``streaming_summary*`` views take over (exact counts/means/
    makespans, sketched percentiles) — the memory-bounded spelling for
    million-invocation sweeps.
    """

    cores: Tuple[int, ...] = PAPER_CORES
    intensities: Tuple[int, ...] = PAPER_INTENSITIES
    strategies: Tuple[str, ...] = PAPER_STRATEGIES
    seeds: Tuple[int, ...] = (1, 2, 3, 4, 5)
    scenario: str = "uniform"
    scenario_params: Tuple[Tuple[str, Any], ...] = ()
    #: Scheduling-policy parameters, applied to every swept strategy that
    #: declares them (validated per policy at config construction).
    policy_params: Tuple[Tuple[str, Any], ...] = ()
    #: Cluster sweep: node counts × balancer flavours.
    nodes: Tuple[int, ...] = (1,)
    balancers: Tuple[str, ...] = ("least-loaded",)
    #: Balancer constructor kwargs, applied to every swept balancer that
    #: declares them (validated per flavour at config construction).
    balancer_params: Tuple[Tuple[str, Any], ...] = ()
    #: Attach the reactive autoscaler (default config) to every topology.
    autoscale: bool = False
    #: Fault regime applied to every cell (node crashes, container kills,
    #: stragglers, timeout/retry policy — see docs/FAILURES.md).  A mapping
    #: of :class:`~repro.failures.spec.FailureSpec` fields is accepted and
    #: normalised; the default keeps the failure-free historical path.
    failures: FailureSpec = FAILURE_NONE
    #: ``False`` runs every cell in streaming (constant-memory) mode.
    retain_records: bool = True

    def __post_init__(self) -> None:
        # Normalise like ExperimentConfig: one canonical (hashable,
        # fingerprintable) FailureSpec per fault regime.
        if self.failures is None:
            object.__setattr__(self, "failures", FAILURE_NONE)
        elif isinstance(self.failures, Mapping):
            object.__setattr__(self, "failures", FailureSpec(**dict(self.failures)))
        elif not isinstance(self.failures, FailureSpec):
            raise ValueError(
                f"failures must be a FailureSpec or a mapping of its fields, "
                f"got {type(self.failures).__name__}"
            )

    @classmethod
    def quick(cls) -> "GridSpec":
        """A scaled-down slice for smoke tests and default bench runs."""
        return cls(
            cores=(10,),
            intensities=(30, 60),
            strategies=(BASELINE, "FIFO", "SEPT", "FC"),
            seeds=(1,),
        )

    def cells(self) -> Iterable[Tuple[int, int, str]]:
        for cores in self.cores:
            for intensity in self.intensities:
                for strategy in self.strategies:
                    yield cores, intensity, strategy

    def cluster_variants(self) -> Tuple[ClusterSpec, ...]:
        """The swept cluster topologies (``nodes × balancers`` product),
        validated — a bad balancer name/param fails before any run.

        ``balancer_params`` reach each swept flavour filtered to the
        parameters it declares (so ``--balancer least-loaded power-of-d
        --balancer-param d=3`` works), but a parameter no swept flavour
        declares is a typo and is rejected outright.

        Memoized per spec: grid views look topologies up per cell, and
        validation (signature probing + a probe construction per variant)
        is too heavy to repeat O(cells) times on a frozen value.
        """
        cached = getattr(self, "_variants_cache", None)
        if cached is not None:
            return cached
        variants = self._build_cluster_variants()
        # Frozen dataclass: memo via object.__setattr__; not a field, so
        # equality/hash/serialization are unaffected.
        object.__setattr__(self, "_variants_cache", variants)
        return variants

    def _build_cluster_variants(self) -> Tuple[ClusterSpec, ...]:
        from repro.cluster.controller import balancer_param_names

        declared_by = {name: set(balancer_param_names(name)) for name in self.balancers}
        supplied = {name for name, _ in self.balancer_params}
        unknown = sorted(supplied - set().union(*declared_by.values(), set()))
        if unknown:
            raise ValueError(
                f"balancer parameter(s) {unknown} are not declared by any "
                f"swept balancer ({', '.join(self.balancers)})"
            )
        return tuple(
            ClusterSpec(
                nodes=nodes,
                balancer=balancer,
                balancer_params=tuple(
                    (name, value)
                    for name, value in self.balancer_params
                    if name in declared_by[balancer]
                ),
                autoscaler=() if self.autoscale else None,
            )
            for nodes in self.nodes
            for balancer in self.balancers
        )

    def policy_params_by_strategy(self) -> Dict[str, Tuple[Tuple[str, Any], ...]]:
        """``strategy -> policy_params`` for every swept strategy, with
        ``policy_params`` filtered to the parameters each registered
        policy declares (``baseline`` declares none).

        Validates strategy names against the policy registry and rejects
        a supplied parameter no swept strategy declares — both before any
        simulation time is spent.
        """
        from repro.scheduling.registry import policy_param_names

        declared_by = {
            strategy: (
                set()
                if strategy.lower() == BASELINE
                else set(policy_param_names(strategy))
            )
            for strategy in self.strategies
        }
        supplied = {name for name, _ in self.policy_params}
        unknown = sorted(supplied - set().union(*declared_by.values(), set()))
        if unknown:
            raise ValueError(
                f"policy parameter(s) {unknown} are not declared by any "
                f"swept strategy ({', '.join(self.strategies)})"
            )
        return {
            strategy: tuple(
                (name, value)
                for name, value in self.policy_params
                if name in declared
            )
            for strategy, declared in declared_by.items()
        }

    @property
    def has_cluster_sweep(self) -> bool:
        """True when more than one topology is requested — cell keys then
        carry the ``(nodes, balancer)`` suffix."""
        return len(self.nodes) * len(self.balancers) > 1

    def cell_keys(self) -> List[CellKey]:
        """Every cell key of this spec, in run order."""
        variants = self.cluster_variants()  # validated once, not per cell
        keys: List[CellKey] = []
        for cores, intensity, strategy in self.cells():
            for variant in variants:
                if self.has_cluster_sweep:
                    keys.append(
                        (cores, intensity, strategy, variant.nodes, variant.balancer)
                    )
                else:
                    keys.append((cores, intensity, strategy))
        return keys


@dataclass
class GridResults:
    """Results keyed by cell -> one result per seed.

    Keys are ``(cores, intensity, strategy)`` tuples on classic grids and
    ``(cores, intensity, strategy, nodes, balancer)`` tuples when the
    spec sweeps more than one cluster topology (see
    :attr:`GridSpec.has_cluster_sweep`).
    """

    spec: GridSpec
    cells: Dict[CellKey, List[ExperimentResult]]
    #: How the grid was executed (worker count, computed vs. cache hits);
    #: ``None`` for results assembled outside :func:`run_grid`.
    stats: Optional[EngineStats] = None

    # -- key handling ---------------------------------------------------
    def _key(
        self,
        cores: int,
        intensity: int,
        strategy: str,
        nodes: Optional[int],
        balancer: Optional[str],
    ) -> CellKey:
        if not self.spec.has_cluster_sweep:
            # Single topology, 3-tuple keys — but an explicit selector
            # naming a *different* topology must fail loudly rather than
            # silently return another topology's data.
            (variant,) = self.spec.cluster_variants()
            if nodes is not None and nodes != variant.nodes:
                raise KeyError(
                    f"grid ran with nodes={variant.nodes}; no cell has "
                    f"nodes={nodes}"
                )
            if balancer is not None and balancer != variant.balancer:
                raise KeyError(
                    f"grid ran with balancer={variant.balancer!r}; no cell "
                    f"has balancer={balancer!r}"
                )
            return (cores, intensity, strategy)
        if nodes is None:
            if len(self.spec.nodes) != 1:
                raise KeyError(
                    f"grid sweeps nodes={self.spec.nodes}; pass nodes=... to "
                    f"select a cell"
                )
            nodes = self.spec.nodes[0]
        if balancer is None:
            if len(self.spec.balancers) != 1:
                raise KeyError(
                    f"grid sweeps balancers={self.spec.balancers}; pass "
                    f"balancer=... to select a cell"
                )
            balancer = self.spec.balancers[0]
        return (cores, intensity, strategy, nodes, balancer)

    def cell_keys(self) -> List[CellKey]:
        """The stored cell keys, in run order."""
        return list(self.cells)

    @staticmethod
    def cell_label(key: CellKey) -> str:
        """Human-readable label for one cell key."""
        cores, intensity, strategy = key[0], key[1], key[2]
        label = f"c={cores} v={intensity} {strategy}"
        if len(key) == 5:
            label += f" nodes={key[3]} balancer={key[4]}"
        return label

    # -- views ----------------------------------------------------------
    def results(
        self,
        cores: int,
        intensity: int,
        strategy: str,
        nodes: Optional[int] = None,
        balancer: Optional[str] = None,
    ) -> List[ExperimentResult]:
        return self.cells[self._key(cores, intensity, strategy, nodes, balancer)]

    def results_for(self, key: CellKey) -> List[ExperimentResult]:
        """The per-seed results of one stored cell key."""
        return self.cells[key]

    def pooled_records_for(self, key: CellKey) -> List[CallRecord]:
        pooled: List[CallRecord] = []
        for result in self.cells[key]:
            pooled.extend(
                result._require_records(
                    "GridResults.pooled_records_for()",
                    "pooled_accumulator_for() / streaming_summary_for()",
                )
            )
        return pooled

    def summary_for(self, key: CellKey) -> SummaryStats:
        return summarize(self.pooled_records_for(key))

    def pooled_accumulator_for(self, key: CellKey) -> SummaryAccumulator:
        """The cell's per-seed accumulators pooled into one (the streaming
        counterpart of :meth:`pooled_records_for`): exact fields pool
        bit-identically regardless of merge order.  Works on retained
        results too (folding each result's records when no accumulator
        was attached)."""
        accumulators = []
        for result in self.cells[key]:
            if result.accumulator is not None:
                accumulators.append(result.accumulator)
            else:
                acc = SummaryAccumulator()
                for record in result._require_records(
                    "GridResults.pooled_accumulator_for() on a result with "
                    "neither accumulator nor records",
                    "results produced by run_experiment (which always "
                    "attaches an accumulator)",
                ):
                    acc.add(record)
                accumulators.append(acc)
        return merge_accumulators(accumulators)

    def streaming_summary_for(self, key: CellKey) -> StreamingSummary:
        """Table-III style aggregate over pooled seeds from constant-size
        state: counts, means, cold starts and makespan exact; percentiles
        within the sketch's rank bound."""
        return self.pooled_accumulator_for(key).summary()

    def pooled_records(
        self,
        cores: int,
        intensity: int,
        strategy: str,
        nodes: Optional[int] = None,
        balancer: Optional[str] = None,
    ) -> List[CallRecord]:
        """All call records of a cell, pooled over seeds (the paper's boxes
        aggregate "all individual calls from all 5 sequences")."""
        return self.pooled_records_for(
            self._key(cores, intensity, strategy, nodes, balancer)
        )

    def summary(
        self,
        cores: int,
        intensity: int,
        strategy: str,
        nodes: Optional[int] = None,
        balancer: Optional[str] = None,
    ) -> SummaryStats:
        """Table-III style aggregate over pooled seeds."""
        return summarize(
            self.pooled_records(cores, intensity, strategy, nodes, balancer)
        )

    def streaming_summary(
        self,
        cores: int,
        intensity: int,
        strategy: str,
        nodes: Optional[int] = None,
        balancer: Optional[str] = None,
    ) -> StreamingSummary:
        """Selector-flavoured :meth:`streaming_summary_for`."""
        return self.streaming_summary_for(
            self._key(cores, intensity, strategy, nodes, balancer)
        )

    def per_seed_summaries(
        self,
        cores: int,
        intensity: int,
        strategy: str,
        nodes: Optional[int] = None,
        balancer: Optional[str] = None,
    ) -> List[SummaryStats]:
        """Table-IV style per-experiment rows."""
        return [
            r.summary()
            for r in self.results(cores, intensity, strategy, nodes, balancer)
        ]

    def response_box(
        self,
        cores: int,
        intensity: int,
        strategy: str,
        nodes: Optional[int] = None,
        balancer: Optional[str] = None,
    ) -> BoxStats:
        """One box of Figure 3."""
        return box_stats(
            [
                r.response_time
                for r in self.pooled_records(cores, intensity, strategy, nodes, balancer)
            ]
        )

    def stretch_box(
        self,
        cores: int,
        intensity: int,
        strategy: str,
        nodes: Optional[int] = None,
        balancer: Optional[str] = None,
    ) -> BoxStats:
        """One box of Figure 4."""
        return box_stats(
            [
                r.stretch
                for r in self.pooled_records(cores, intensity, strategy, nodes, balancer)
            ]
        )

    def makespans(
        self,
        cores: int,
        intensity: int,
        strategy: str,
        nodes: Optional[int] = None,
        balancer: Optional[str] = None,
    ) -> List[float]:
        """Per-seed ``max c(i)`` values (Table II inputs)."""
        return [
            r.makespan for r in self.results(cores, intensity, strategy, nodes, balancer)
        ]


def run_grid(
    spec: GridSpec | None = None,
    *,
    jobs: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    progress: Optional[ProgressCallback] = None,
    cell_timeout: Optional[float] = None,
    executor: Optional[str] = None,
    stats: Optional[EngineStats] = None,
) -> GridResults:
    """Run (cores × intensity × strategy × topology × seeds) experiments
    under the spec's workload scenario (default: the paper's uniform burst).

    Routed through the :mod:`repro.experiments.parallel` engine: ``jobs=N``
    shards cells across a worker pool and ``cache_dir`` enables the on-disk
    result cache, with results bit-identical to the serial, uncached path
    (``jobs=1``, the default).  ``progress`` receives one callback per
    finished cell (see :func:`~repro.experiments.parallel.progress_printer`).
    ``executor`` selects the execution backend (``local``'s process pool,
    or ``queue`` to distribute cells over the shared cache root — see
    :mod:`repro.experiments.executor`); ``stats`` supplies a shared
    :class:`EngineStats` to accumulate into (one is created otherwise).
    """
    spec = spec if spec is not None else GridSpec()
    variants = spec.cluster_variants()
    policy_params = spec.policy_params_by_strategy()
    configs = [
        ExperimentConfig(
            cores=cores,
            intensity=intensity,
            policy=strategy,
            seed=seed,
            scenario=spec.scenario,
            scenario_params=spec.scenario_params,
            policy_params=policy_params[strategy],
            cluster=variant,
            failures=spec.failures,
            retain_records=spec.retain_records,
        )
        for cores, intensity, strategy in spec.cells()
        for variant in variants
        for seed in spec.seeds
    ]
    stats = stats if stats is not None else EngineStats()
    flat = run_configs(
        configs,
        jobs=jobs,
        cache_dir=cache_dir,
        progress=progress,
        stats=stats,
        cell_timeout=cell_timeout,
        executor=executor,
    )
    cells: Dict[CellKey, List[ExperimentResult]] = {}
    per_cell = len(spec.seeds)
    for i, key in enumerate(spec.cell_keys()):
        cells[key] = flat[i * per_cell : (i + 1) * per_cell]
    return GridResults(spec=spec, cells=cells, stats=stats)
