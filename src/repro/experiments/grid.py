"""The paper's single-node experiment grid (Sects. V–VII).

The grid spans cores × intensity × strategy × 5 seeds.  Tables II–IV and
Figures 3–4 (and appendix Figures 7–36) are all views over this grid, so
the runner caches results per cell and the artifact modules slice them.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.experiments.config import BASELINE, ExperimentConfig
from repro.experiments.parallel import EngineStats, ProgressCallback, run_configs
from repro.experiments.runner import ExperimentResult
from repro.metrics.records import CallRecord
from repro.metrics.stats import BoxStats, SummaryStats, box_stats, summarize

__all__ = [
    "GridSpec",
    "GridResults",
    "run_grid",
    "PAPER_CORES",
    "PAPER_INTENSITIES",
    "PAPER_STRATEGIES",
    "FIGURE_CORES",
    "FIGURE_INTENSITIES",
]

#: The full grid of the paper's Table III.
PAPER_CORES = (5, 10, 20)
PAPER_INTENSITIES = (30, 40, 60, 90, 120)
#: Strategy order used throughout the paper's figures.
PAPER_STRATEGIES = (BASELINE, "FIFO", "SEPT", "EECT", "RECT", "FC")
#: The subsets shown in the main-body Figures 3 and 4.
FIGURE_CORES = (10, 20)
FIGURE_INTENSITIES = (30, 40, 60)


@dataclass(frozen=True)
class GridSpec:
    """Which slice of the grid to run, and under which workload.

    ``scenario``/``scenario_params`` select a registered workload scenario
    (default: the paper's ``uniform`` burst) applied to every cell — so any
    scenario from ``faas-sched scenarios`` can be swept over the full
    cores × intensity × strategy × seed grid, cached and parallelized like
    the paper's own workload.
    """

    cores: Tuple[int, ...] = PAPER_CORES
    intensities: Tuple[int, ...] = PAPER_INTENSITIES
    strategies: Tuple[str, ...] = PAPER_STRATEGIES
    seeds: Tuple[int, ...] = (1, 2, 3, 4, 5)
    scenario: str = "uniform"
    scenario_params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def quick(cls) -> "GridSpec":
        """A scaled-down slice for smoke tests and default bench runs."""
        return cls(
            cores=(10,),
            intensities=(30, 60),
            strategies=(BASELINE, "FIFO", "SEPT", "FC"),
            seeds=(1,),
        )

    def cells(self) -> Iterable[Tuple[int, int, str]]:
        for cores in self.cores:
            for intensity in self.intensities:
                for strategy in self.strategies:
                    yield cores, intensity, strategy


@dataclass
class GridResults:
    """Results keyed by (cores, intensity, strategy) -> one result per seed."""

    spec: GridSpec
    cells: Dict[Tuple[int, int, str], List[ExperimentResult]]
    #: How the grid was executed (worker count, computed vs. cache hits);
    #: ``None`` for results assembled outside :func:`run_grid`.
    stats: Optional[EngineStats] = None

    def results(self, cores: int, intensity: int, strategy: str) -> List[ExperimentResult]:
        return self.cells[(cores, intensity, strategy)]

    def pooled_records(self, cores: int, intensity: int, strategy: str) -> List[CallRecord]:
        """All call records of a cell, pooled over seeds (the paper's boxes
        aggregate "all individual calls from all 5 sequences")."""
        pooled: List[CallRecord] = []
        for result in self.results(cores, intensity, strategy):
            pooled.extend(result.records)
        return pooled

    def summary(self, cores: int, intensity: int, strategy: str) -> SummaryStats:
        """Table-III style aggregate over pooled seeds."""
        return summarize(self.pooled_records(cores, intensity, strategy))

    def per_seed_summaries(
        self, cores: int, intensity: int, strategy: str
    ) -> List[SummaryStats]:
        """Table-IV style per-experiment rows."""
        return [r.summary() for r in self.results(cores, intensity, strategy)]

    def response_box(self, cores: int, intensity: int, strategy: str) -> BoxStats:
        """One box of Figure 3."""
        return box_stats(
            [r.response_time for r in self.pooled_records(cores, intensity, strategy)]
        )

    def stretch_box(self, cores: int, intensity: int, strategy: str) -> BoxStats:
        """One box of Figure 4."""
        return box_stats(
            [r.stretch for r in self.pooled_records(cores, intensity, strategy)]
        )

    def makespans(self, cores: int, intensity: int, strategy: str) -> List[float]:
        """Per-seed ``max c(i)`` values (Table II inputs)."""
        return [r.makespan for r in self.results(cores, intensity, strategy)]


def run_grid(
    spec: GridSpec | None = None,
    *,
    jobs: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    progress: Optional[ProgressCallback] = None,
) -> GridResults:
    """Run (cores × intensity × strategy × seeds) single-node experiments
    under the spec's workload scenario (default: the paper's uniform burst).

    Routed through the :mod:`repro.experiments.parallel` engine: ``jobs=N``
    shards cells across a worker pool and ``cache_dir`` enables the on-disk
    result cache, with results bit-identical to the serial, uncached path
    (``jobs=1``, the default).  ``progress`` receives one callback per
    finished cell (see :func:`~repro.experiments.parallel.progress_printer`).
    """
    spec = spec if spec is not None else GridSpec()
    configs = [
        ExperimentConfig(
            cores=cores,
            intensity=intensity,
            policy=strategy,
            seed=seed,
            scenario=spec.scenario,
            scenario_params=spec.scenario_params,
        )
        for cores, intensity, strategy in spec.cells()
        for seed in spec.seeds
    ]
    stats = EngineStats()
    flat = run_configs(
        configs, jobs=jobs, cache_dir=cache_dir, progress=progress, stats=stats
    )
    cells: Dict[Tuple[int, int, str], List[ExperimentResult]] = {}
    per_cell = len(spec.seeds)
    for i, key in enumerate(spec.cells()):
        cells[key] = flat[i * per_cell : (i + 1) * per_cell]
    return GridResults(spec=spec, cells=cells, stats=stats)
