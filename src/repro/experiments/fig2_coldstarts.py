"""Figure 2 reproduction: cold starts vs. memory and intensity.

The paper measures, on 10 CPU cores, the number of cold starts for
memory pools from 2 to 128 GiB and intensities 30–120, comparing the
original OpenWhisk node management (Fig. 2a) with our FIFO variant
(Fig. 2b).  Expected shapes:

* baseline: cold starts grow strongly with intensity (>80 % of requests
  at intensity 120) and depend only weakly on memory;
* our FIFO: cold starts fall with memory and plateau (≈0) once the warm
  working set fits — 32 GiB on 10 cores — motivating the paper's choice
  of a 32 GiB pool for all other experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.experiments.config import BASELINE, ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.metrics.report import format_table

__all__ = ["run_fig2", "Fig2Result", "MEMORY_SWEEP_MB", "INTENSITY_SWEEP"]

#: The paper's memory axis: 2 GiB .. 128 GiB.
MEMORY_SWEEP_MB = (2048, 4096, 8192, 16384, 32768, 65536, 131072)
INTENSITY_SWEEP = (30, 40, 60, 90, 120)


@dataclass
class Fig2Result:
    """cold_starts[(strategy, memory_mb, intensity)] plus request totals."""

    cold_starts: Dict[Tuple[str, int, int], int]
    totals: Dict[int, int]
    cores: int

    def series(self, strategy: str, intensity: int) -> List[Tuple[int, int]]:
        """(memory_mb, cold_starts) series for one curve of the figure."""
        return sorted(
            (mem, colds)
            for (strat, mem, inten), colds in self.cold_starts.items()
            if strat == strategy and inten == intensity
        )

    def render(self) -> str:
        blocks = []
        strategies = sorted({k[0] for k in self.cold_starts})
        intensities = sorted({k[2] for k in self.cold_starts})
        memories = sorted({k[1] for k in self.cold_starts})
        for strategy in strategies:
            rows = []
            for intensity in intensities:
                row: List[object] = [intensity, self.totals[intensity]]
                for mem in memories:
                    row.append(self.cold_starts.get((strategy, mem, intensity), "-"))
                rows.append(row)
            headers = ["intensity", "requests"] + [f"{m // 1024}GiB" for m in memories]
            label = "original approach" if strategy == BASELINE else f"our approach ({strategy})"
            blocks.append(
                format_table(headers, rows, title=f"Fig. 2 — cold starts, {label}, {self.cores} cores")
            )
        return "\n\n".join(blocks)


def run_fig2(
    memories_mb: Sequence[int] = MEMORY_SWEEP_MB,
    intensities: Sequence[int] = INTENSITY_SWEEP,
    cores: int = 10,
    seed: int = 1,
    strategies: Sequence[str] = (BASELINE, "FIFO"),
) -> Fig2Result:
    """Sweep memory × intensity for the baseline and our FIFO variant."""
    cold_starts: Dict[Tuple[str, int, int], int] = {}
    totals: Dict[int, int] = {}
    for strategy in strategies:
        for memory_mb in memories_mb:
            for intensity in intensities:
                cfg = ExperimentConfig(
                    cores=cores,
                    intensity=intensity,
                    policy=strategy,
                    seed=seed,
                    memory_mb=memory_mb,
                )
                result = run_experiment(cfg)
                cold_starts[(strategy, memory_mb, intensity)] = result.cold_starts
                totals[intensity] = len(result.records)
    return Fig2Result(cold_starts=cold_starts, totals=totals, cores=cores)
