"""Figure 5 reproduction: Fair-Choice fairness under a skewed call mix.

Paper Sect. VII-D: 10 CPU cores, intensity 90, exactly 10 calls of the
long ``dna-visualisation`` function, all other calls drawn uniformly at
random among the remaining functions.  Expected shape: FC cuts the rare
long function's stretch versus SEPT (paper: average 5.3 → 2.1, median
5.2 → 1.6) at a small cost to the short, frequent ``graph-bfs``
(paper: average 22.2 → 25.8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence


from repro.experiments.config import BASELINE, ExperimentConfig
from repro.experiments.paper_data import FIG5_FAIRNESS
from repro.experiments.runner import run_experiment
from repro.metrics.report import format_table
from repro.metrics.stats import BoxStats, box_stats

__all__ = ["run_fig5", "Fig5Result"]

RARE_FUNCTION = "dna-visualisation"
SHORT_FUNCTION = "graph-bfs"


@dataclass
class Fig5Result:
    """Stretch box statistics per strategy for all / rare / short calls."""

    all_calls: Dict[str, BoxStats]
    rare_calls: Dict[str, BoxStats]
    short_calls: Dict[str, BoxStats]

    def render(self) -> str:
        blocks = []
        for title, data in (
            ("(a) all functions", self.all_calls),
            (f"(b) {RARE_FUNCTION} (rare, long)", self.rare_calls),
            (f"(c) {SHORT_FUNCTION} (frequent, short)", self.short_calls),
        ):
            rows = []
            for strategy, box in data.items():
                rows.append([strategy, box.q1, box.median, box.q3, box.mean, box.n])
            blocks.append(
                format_table(
                    ["strategy", "q1", "median", "q3", "mean", "n"],
                    rows,
                    title=f"Fig. 5{title} — stretch",
                )
            )
        paper = format_table(
            ["strategy", "dna avg", "dna median", "graph-bfs avg"],
            [[s, *vals] for s, vals in FIG5_FAIRNESS.items()],
            title="Paper reference (Sect. VII-D)",
        )
        return "\n\n".join(blocks + [paper])


def run_fig5(
    strategies: Sequence[str] = (BASELINE, "FIFO", "SEPT", "EECT", "RECT", "FC"),
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    cores: int = 10,
    intensity: int = 90,
) -> Fig5Result:
    """Run the skewed-mix experiment for each strategy and aggregate
    stretch over all seeds."""
    all_calls: Dict[str, BoxStats] = {}
    rare_calls: Dict[str, BoxStats] = {}
    short_calls: Dict[str, BoxStats] = {}
    for strategy in strategies:
        stretches: List[float] = []
        rare: List[float] = []
        short: List[float] = []
        for seed in seeds:
            cfg = ExperimentConfig(
                cores=cores,
                intensity=intensity,
                policy=strategy,
                seed=seed,
                scenario="skewed",
            )
            result = run_experiment(cfg)
            for record in result.records:
                stretches.append(record.stretch)
                if record.function_name == RARE_FUNCTION:
                    rare.append(record.stretch)
                elif record.function_name == SHORT_FUNCTION:
                    short.append(record.stretch)
        all_calls[strategy] = box_stats(stretches)
        rare_calls[strategy] = box_stats(rare)
        short_calls[strategy] = box_stats(short)
    return Fig5Result(all_calls=all_calls, rare_calls=rare_calls, short_calls=short_calls)
