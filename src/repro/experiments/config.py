"""Experiment configurations."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

from repro.node.config import NodeConfig

__all__ = ["ExperimentConfig", "MultiNodeConfig", "BASELINE"]

#: Pseudo-policy name selecting the stock OpenWhisk invoker.
BASELINE = "baseline"


@dataclass(frozen=True)
class ExperimentConfig:
    """One single-node run (paper Sects. V–VII).

    Attributes
    ----------
    cores:
        CPU cores for action containers.
    intensity:
        The paper's load multiplier ``v``; total requests are
        ``1.1 * cores * intensity``.
    policy:
        ``"baseline"`` for stock OpenWhisk, else a scheduling-policy name
        (``FIFO``/``SEPT``/``EECT``/``RECT``/``FC``).
    seed:
        Root seed; the paper repeats each configuration with 5 request
        sequences — use seeds 1..5.
    memory_mb:
        Action-container memory pool (32 GiB in the main experiments).
    scenario:
        ``uniform`` (Sect. V-B grid), ``skewed`` (Sect. VII-D fairness) or
        ``azure`` (extension).
    warmup:
        Whether containers and runtime estimates are warmed before the
        burst (the paper always warms; disable to study cold behaviour).
    node_overrides:
        Extra :class:`~repro.node.config.NodeConfig` fields (ablations).
    """

    cores: int
    intensity: int
    policy: str = "FIFO"
    seed: int = 1
    memory_mb: int = 32768
    scenario: str = "uniform"
    warmup: bool = True
    window_s: float = 60.0
    node_overrides: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.scenario not in ("uniform", "skewed", "azure"):
            raise ValueError(f"unknown scenario {self.scenario!r}")

    @property
    def is_baseline(self) -> bool:
        return self.policy.lower() == BASELINE

    def node_config(self) -> NodeConfig:
        """Materialise the node configuration for this experiment."""
        overrides = dict(self.node_overrides)
        return NodeConfig(cores=self.cores, memory_mb=self.memory_mb, **overrides)

    def with_(self, **changes) -> "ExperimentConfig":
        """A copy with fields replaced (ergonomic sweep helper)."""
        return replace(self, **changes)

    def label(self) -> str:
        return f"{self.policy} c={self.cores} v={self.intensity} seed={self.seed}"


@dataclass(frozen=True)
class MultiNodeConfig:
    """One multi-node run (paper Sect. VIII).

    The paper sends a *fixed* request count (1320 on 10-core VMs, 2376 on
    18-core VMs) while varying the number of worker VMs from 4 down to 1.
    """

    nodes: int
    cores_per_node: int
    total_requests: int
    policy: str = "FC"
    seed: int = 1
    memory_mb: int = 40960
    balancer: str = "least-loaded"
    window_s: float = 60.0
    node_overrides: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes!r}")

    @property
    def is_baseline(self) -> bool:
        return self.policy.lower() == BASELINE

    def node_config(self) -> NodeConfig:
        overrides = dict(self.node_overrides)
        return NodeConfig(
            cores=self.cores_per_node, memory_mb=self.memory_mb, **overrides
        )

    def with_(self, **changes) -> "MultiNodeConfig":
        return replace(self, **changes)

    def label(self) -> str:
        return (
            f"{self.policy} nodes={self.nodes} c={self.cores_per_node} "
            f"n={self.total_requests} seed={self.seed}"
        )
