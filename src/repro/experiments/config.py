"""Experiment configurations.

``ExperimentConfig.scenario`` names a workload from the scenario registry
(:mod:`repro.workload.registry`; enumerate with ``faas-sched scenarios``),
and ``scenario_params`` carries the builder's keyword parameters as a
tuple of ``(name, value)`` pairs — tuples, not a dict, so configs stay
hashable and their canonical JSON form (the cache fingerprint) is stable.
``policy`` names a scheduling policy from the policy registry
(:mod:`repro.scheduling.registry`; enumerate with ``faas-sched
policies``) — or ``"baseline"`` for the stock invoker — with
``policy_params`` carried in the same canonical pair-tuple form.  All are
validated against their registries at construction time, so a typo fails
before any simulation time is spent.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Mapping, Tuple, Union

from repro.cluster.spec import DEFAULT_CLUSTER, ClusterSpec
from repro.failures.spec import FAILURE_NONE, FailureSpec
from repro.node.config import NodeConfig
from repro.scheduling.registry import get_policy
from repro.workload.registry import get_scenario

__all__ = ["ExperimentConfig", "MultiNodeConfig", "BASELINE"]

#: Pseudo-policy name selecting the stock OpenWhisk invoker.
BASELINE = "baseline"

#: Scenario parameters as stored on a config: sorted ``(name, value)`` pairs.
ScenarioParams = Tuple[Tuple[str, Any], ...]


def _freeze(name: str, value: Any) -> Any:
    """Recursively turn lists into tuples so parameter values are hashable
    and JSON round-trips (which turn tuples into lists) stay canonical;
    reject value types (mappings, arbitrary objects) that would defeat
    hashability or surface as confusing errors inside workers."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(name, item) for item in value)
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise ValueError(
        f"scenario parameter {name!r} has unsupported value type "
        f"{type(value).__name__}; use JSON scalars or lists"
    )


def _freeze_params(params: Union[Mapping[str, Any], ScenarioParams, None]) -> ScenarioParams:
    """Normalise scenario params (mapping or pair sequence) to name-sorted,
    hashable ``(name, value)`` tuples — one canonical form per content.
    Duplicate names resolve last-wins (like repeated CLI flags) before
    sorting, and sorting compares names only, never values."""
    if not params:
        return ()
    items = params.items() if isinstance(params, Mapping) else params
    deduped = {str(name): _freeze(str(name), value) for name, value in items}
    return tuple(sorted(deduped.items()))


@dataclass(frozen=True)
class ExperimentConfig:
    """One single-node run (paper Sects. V–VII).

    Attributes
    ----------
    cores:
        CPU cores for action containers.
    intensity:
        The paper's load multiplier ``v``; total requests are
        ``1.1 * cores * intensity``.
    policy:
        ``"baseline"`` for stock OpenWhisk, else the name of a registered
        scheduling policy (``FIFO``/``SEPT``/``EECT``/``RECT``/``FC``,
        plus the registered extensions — see ``faas-sched policies`` or
        docs/POLICIES.md).  Validated case-insensitively against the
        policy registry; the stored spelling is preserved.
    policy_params:
        Declared parameters of the scheduling policy as ``(name, value)``
        pairs (a mapping is accepted and normalised); validated against
        the policy's registry entry and stored merged over its declared
        defaults.  Part of the cache fingerprint, so changing a parameter
        never hits a stale cached result.  Must be empty for
        ``"baseline"``.
    seed:
        Root seed; the paper repeats each configuration with 5 request
        sequences — use seeds 1..5.
    memory_mb:
        Action-container memory pool (32 GiB in the main experiments).
    scenario:
        Name of a registered workload scenario (``uniform``, ``skewed``,
        ``azure``, ``poisson``, ``diurnal``, ``trace``, ``replay``, ... —
        see ``faas-sched scenarios`` or docs/SCENARIOS.md).
    scenario_params:
        Scenario builder parameters as ``(name, value)`` pairs (a mapping
        is accepted and normalised); validated against the scenario's
        declared parameters.  Part of the cache fingerprint, so changing a
        parameter never hits a stale cached result.
    warmup:
        Whether containers and runtime estimates are warmed before the
        burst (the paper always warms; disable to study cold behaviour).
    node_overrides:
        Extra :class:`~repro.node.config.NodeConfig` fields (ablations),
        applied to every node of the fleet.
    cluster:
        The fleet topology (:class:`~repro.cluster.spec.ClusterSpec`):
        node count, per-node overrides, balancer flavour + kwargs,
        optional autoscaler.  A mapping of ``ClusterSpec`` fields is
        accepted and normalised.  The default is the classic single-node
        experiment; anything else routes the run through the cluster
        path (Sect. VIII) and is part of the cache fingerprint.
    failures:
        The fault regime (:class:`~repro.failures.spec.FailureSpec`):
        node crash/recovery, container kills, stragglers, and the
        per-invocation timeout/retry policy (see docs/FAILURES.md).  A
        mapping of ``FailureSpec`` fields is accepted and normalised.
        The default is the failure-free historical path; anything else
        routes calls through the retrying client and is part of the
        cache fingerprint.
    retain_records:
        ``True`` (the default, and what every golden-fingerprint run
        uses) keeps the full O(invocations) ``CallRecord`` list on the
        result.  ``False`` selects the streaming pipeline: the workload
        feeds the platform lazily and each completed call folds into a
        constant-size :class:`~repro.metrics.streaming.SummaryAccumulator`
        — exact counts/means/cold-starts/makespan, sketched percentiles
        (see docs/STREAMING.md).  Part of the cache fingerprint because
        the cached payload shape differs.
    """

    cores: int
    intensity: int
    policy: str = "FIFO"
    seed: int = 1
    memory_mb: int = 32768
    scenario: str = "uniform"
    scenario_params: ScenarioParams = ()
    policy_params: ScenarioParams = ()
    warmup: bool = True
    window_s: float = 60.0
    node_overrides: Tuple[Tuple[str, Any], ...] = ()
    cluster: ClusterSpec = DEFAULT_CLUSTER
    failures: FailureSpec = FAILURE_NONE
    retain_records: bool = True

    def __post_init__(self) -> None:
        # validate_params raises ValueError on an unknown scenario name
        # (listing what is registered) or an unknown/missing parameter.
        # Store the *merged* result — declared defaults included — so a
        # config spelling a default explicitly equals one relying on it,
        # and so the cache fingerprint covers the defaults: editing a
        # builder's default in code changes every affected fingerprint
        # instead of silently serving results computed under the old one.
        supplied = _freeze_params(self.scenario_params)
        merged = get_scenario(self.scenario).validate_params(dict(supplied))
        object.__setattr__(self, "scenario_params", _freeze_params(merged))
        # The scheduling policy validates the same way against the policy
        # registry (an unknown name lists what is registered); "baseline"
        # is the stock invoker and declares no parameters.
        supplied_policy = _freeze_params(self.policy_params)
        if self.is_baseline:
            if supplied_policy:
                raise ValueError(
                    f"policy {self.policy!r} is the stock invoker and takes "
                    f"no policy parameters, got {dict(supplied_policy)}"
                )
            # Store the canonical empty tuple even when the caller passed a
            # (falsy but mutable) empty mapping — the config must stay
            # hashable and one-form-per-content.
            object.__setattr__(self, "policy_params", supplied_policy)
        else:
            merged_policy = get_policy(self.policy).validate_params(
                dict(supplied_policy)
            )
            object.__setattr__(self, "policy_params", _freeze_params(merged_policy))
        # The cluster topology normalises the same way: a mapping (or
        # None) becomes a validated ClusterSpec, so every equal topology
        # has exactly one stored — and fingerprinted — form.
        if self.cluster is None:
            object.__setattr__(self, "cluster", DEFAULT_CLUSTER)
        elif isinstance(self.cluster, Mapping):
            object.__setattr__(self, "cluster", ClusterSpec(**self.cluster))
        elif not isinstance(self.cluster, ClusterSpec):
            raise ValueError(
                f"cluster must be a ClusterSpec or a mapping of its fields, "
                f"got {type(self.cluster).__name__}"
            )
        # The failure regime normalises identically.
        if self.failures is None:
            object.__setattr__(self, "failures", FAILURE_NONE)
        elif isinstance(self.failures, Mapping):
            object.__setattr__(self, "failures", FailureSpec(**self.failures))
        elif not isinstance(self.failures, FailureSpec):
            raise ValueError(
                f"failures must be a FailureSpec or a mapping of its fields, "
                f"got {type(self.failures).__name__}"
            )

    def scenario_kwargs(self) -> Dict[str, Any]:
        """The scenario parameters as a plain dict (builder kwargs)."""
        return dict(self.scenario_params)

    def policy_kwargs(self) -> Dict[str, Any]:
        """The policy parameters as a plain dict (builder kwargs)."""
        return dict(self.policy_params)

    @property
    def is_baseline(self) -> bool:
        return self.policy.lower() == BASELINE

    def node_config(self) -> NodeConfig:
        """Materialise the node configuration for this experiment."""
        overrides = dict(self.node_overrides)
        return NodeConfig(cores=self.cores, memory_mb=self.memory_mb, **overrides)

    def with_(self, **changes) -> "ExperimentConfig":
        """A copy with fields replaced (ergonomic sweep helper)."""
        return replace(self, **changes)

    def label(self) -> str:
        base = f"{self.policy} c={self.cores} v={self.intensity} seed={self.seed}"
        if self.scenario != "uniform":
            base += f" scenario={self.scenario}"
        return base + self.cluster.label_suffix() + self.failures.label_suffix()


@dataclass(frozen=True)
class MultiNodeConfig:
    """One multi-node run (paper Sect. VIII) — legacy spelling.

    The paper sends a *fixed* request count (1320 on 10-core VMs, 2376 on
    18-core VMs) while varying the number of worker VMs from 4 down to 1.

    New code should prefer an :class:`ExperimentConfig` with the
    ``multi-node`` scenario and a :class:`~repro.cluster.spec.ClusterSpec`
    — that spelling sweeps, caches, and parallelizes like every other
    experiment.  This class is kept for existing callers and cached
    results; :func:`~repro.experiments.runner.run_multi_node_experiment`
    still consumes it.
    """

    nodes: int
    cores_per_node: int
    total_requests: int
    policy: str = "FC"
    seed: int = 1
    memory_mb: int = 40960
    balancer: str = "least-loaded"
    window_s: float = 60.0
    node_overrides: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes!r}")

    @property
    def is_baseline(self) -> bool:
        return self.policy.lower() == BASELINE

    def node_config(self) -> NodeConfig:
        overrides = dict(self.node_overrides)
        return NodeConfig(
            cores=self.cores_per_node, memory_mb=self.memory_mb, **overrides
        )

    def with_(self, **changes) -> "MultiNodeConfig":
        return replace(self, **changes)

    def label(self) -> str:
        return (
            f"{self.policy} nodes={self.nodes} c={self.cores_per_node} "
            f"n={self.total_requests} seed={self.seed}"
        )
