"""Lifecycle tooling for the content-addressed result cache.

A long-lived shared cache root (the distributed executor's coordination
medium — see :mod:`repro.experiments.queue`) accumulates three kinds of
weight: entries from old schema/package versions that can never be hits
again (fingerprints cover both versions), entries nobody has read in
months, and sheer volume.  This module provides the three verbs the CLI
exposes under ``faas-sched cache``:

``stats``
    Inventory: entry counts by health, byte totals, entry-age range, a
    per-shard breakdown, plus the sidecar state (queue depth, active
    claims, quarantined files).

``gc``
    Eviction, in strictly this order: corrupt and version-stale entries
    first (they are dead weight by construction), then entries older
    than ``--max-age``, then oldest-first until the root fits
    ``--size-budget``.  Healthy, in-budget entries are never touched;
    ``--dry-run`` reports what would go.

``merge SRC DST``
    Fingerprint-keyed union of two cache roots: entries missing from
    ``DST`` are copied atomically; entries present in both must be
    byte-identical (content addressing guarantees this for honest
    caches — a mismatch means corruption or a fingerprint collision and
    aborts the merge with :class:`CacheMergeError` before any copy).

All three verbs walk only the two-level hex fan-out and therefore never
touch the ``queue/``, ``claims/``, or ``quarantine/`` sidecars except to
*report* them.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.experiments.parallel import QUARANTINE_DIR, _classify_entry
from repro.experiments.queue import CLAIMS_DIR, QUEUE_DIR

__all__ = [
    "CacheEntry",
    "CacheMergeError",
    "CacheStatsReport",
    "GcReport",
    "MergeReport",
    "cache_stats",
    "gc_cache",
    "merge_caches",
]


def _human_bytes(count: int) -> str:
    size = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024.0 or unit == "GiB":
            return f"{size:.1f} {unit}" if unit != "B" else f"{int(size)} B"
        size /= 1024.0
    return f"{int(count)} B"  # pragma: no cover - unreachable


@dataclass(frozen=True)
class CacheEntry:
    """One scanned cache entry."""

    fingerprint: str
    path: Path
    bytes: int
    mtime: float
    #: ``"current"``, ``"stale"`` (other schema/package version), or
    #: ``"corrupt"`` (unreadable / payload-invalid).
    status: str


def _scan_entries(root: Path) -> List[CacheEntry]:
    """Every entry of the two-level fan-out, classified, sorted by
    fingerprint (stable output across runs)."""
    entries: List[CacheEntry] = []
    if not root.is_dir():
        return entries
    shards = [
        shard
        for shard in sorted(root.iterdir())
        if shard.is_dir() and len(shard.name) == 2
        and all(c in "0123456789abcdef" for c in shard.name)
    ]
    for shard in shards:
        for path in sorted(shard.glob("*.json")):
            try:
                stat = path.stat()
            except OSError:  # raced with a concurrent gc
                continue
            verdict = _classify_entry(path)
            entries.append(
                CacheEntry(
                    fingerprint=path.stem,
                    path=path,
                    bytes=stat.st_size,
                    mtime=stat.st_mtime,
                    status=verdict if verdict is not None else "current",
                )
            )
    return entries


def _sidecar_counts(root: Path) -> Tuple[int, int, int]:
    """(queue depth, active claims, quarantined files) under ``root``."""

    def count(directory: Path, pattern: str) -> int:
        return sum(1 for _ in directory.glob(pattern)) if directory.is_dir() else 0

    return (
        count(root / QUEUE_DIR, "*.json"),
        count(root / CLAIMS_DIR, "*.lease"),
        count(root / QUARANTINE_DIR, "*"),
    )


# ----------------------------------------------------------------------
# stats
# ----------------------------------------------------------------------
@dataclass
class CacheStatsReport:
    """Inventory of one cache root (``faas-sched cache stats``)."""

    root: Path
    entries: int = 0
    total_bytes: int = 0
    current: int = 0
    stale: int = 0
    corrupt: int = 0
    #: Seconds since the oldest / newest entry was written.
    oldest_age: Optional[float] = None
    newest_age: Optional[float] = None
    #: shard name -> (entry count, bytes).
    shards: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    queue_depth: int = 0
    active_claims: int = 0
    quarantined: int = 0

    def render(self) -> str:
        lines = [
            f"cache: {self.entries} entries, {_human_bytes(self.total_bytes)} "
            f"under {self.root}",
            f"  health: {self.current} current, {self.stale} stale, "
            f"{self.corrupt} corrupt",
        ]
        if self.oldest_age is not None and self.newest_age is not None:
            lines.append(
                f"  ages: oldest {self.oldest_age:.0f}s, "
                f"newest {self.newest_age:.0f}s"
            )
        lines.append(
            f"  sidecars: {self.queue_depth} queued, {self.active_claims} "
            f"claimed, {self.quarantined} quarantined"
        )
        for shard in sorted(self.shards):
            count, size = self.shards[shard]
            lines.append(f"  shard {shard}: {count} entries, {_human_bytes(size)}")
        return "\n".join(lines)


def cache_stats(root: Union[str, Path]) -> CacheStatsReport:
    """Scan ``root`` and report what the cache holds (read-only)."""
    root = Path(root).expanduser()
    report = CacheStatsReport(root=root)
    now = time.time()
    for entry in _scan_entries(root):
        report.entries += 1
        report.total_bytes += entry.bytes
        if entry.status == "current":
            report.current += 1
        elif entry.status == "stale":
            report.stale += 1
        else:
            report.corrupt += 1
        age = max(0.0, now - entry.mtime)
        if report.oldest_age is None or age > report.oldest_age:
            report.oldest_age = age
        if report.newest_age is None or age < report.newest_age:
            report.newest_age = age
        shard = entry.fingerprint[:2]
        count, size = report.shards.get(shard, (0, 0))
        report.shards[shard] = (count + 1, size + entry.bytes)
    report.queue_depth, report.active_claims, report.quarantined = _sidecar_counts(root)
    return report


# ----------------------------------------------------------------------
# gc
# ----------------------------------------------------------------------
@dataclass
class GcReport:
    """What one ``faas-sched cache gc`` pass did (or would do)."""

    root: Path
    examined: int = 0
    kept: int = 0
    evicted: int = 0
    freed_bytes: int = 0
    dry_run: bool = False
    #: ``fingerprint -> reason`` (``"stale"``, ``"corrupt"``, ``"age"``,
    #: ``"budget"``), in eviction order.
    reasons: Dict[str, str] = field(default_factory=dict)

    def render(self) -> str:
        verb = "would evict" if self.dry_run else "evicted"
        line = (
            f"gc: {verb} {self.evicted} of {self.examined} entries "
            f"(freed {_human_bytes(self.freed_bytes)}), {self.kept} kept"
        )
        by_reason: Dict[str, int] = {}
        for reason in self.reasons.values():
            by_reason[reason] = by_reason.get(reason, 0) + 1
        if by_reason:
            detail = ", ".join(
                f"{count} {reason}" for reason, count in sorted(by_reason.items())
            )
            line += f" [{detail}]"
        return line


def gc_cache(
    root: Union[str, Path],
    *,
    max_age: Optional[float] = None,
    size_budget: Optional[int] = None,
    dry_run: bool = False,
) -> GcReport:
    """Evict cache entries by health, age, and size budget.

    Eviction order: corrupt and version-stale entries always go first
    (the schema version is part of every fingerprint, so they can never
    be served again); then entries whose mtime is older than ``max_age``
    seconds; then — while the surviving total still exceeds
    ``size_budget`` bytes — the oldest remaining entries.  With neither
    limit given, only the dead weight is collected.  ``dry_run`` reports
    without deleting.
    """
    if max_age is not None and max_age < 0:
        raise ValueError(f"max_age must be non-negative, got {max_age}")
    if size_budget is not None and size_budget < 0:
        raise ValueError(f"size_budget must be non-negative, got {size_budget}")
    root = Path(root).expanduser()
    entries = _scan_entries(root)
    now = time.time()
    report = GcReport(root=root, examined=len(entries), dry_run=dry_run)
    doomed: List[Tuple[CacheEntry, str]] = []
    survivors: List[CacheEntry] = []
    for entry in entries:
        if entry.status != "current":
            doomed.append((entry, entry.status))
        elif max_age is not None and now - entry.mtime > max_age:
            doomed.append((entry, "age"))
        else:
            survivors.append(entry)
    if size_budget is not None:
        remaining = sum(entry.bytes for entry in survivors)
        survivors.sort(key=lambda entry: entry.mtime)  # oldest first
        while survivors and remaining > size_budget:
            entry = survivors.pop(0)
            remaining -= entry.bytes
            doomed.append((entry, "budget"))
    for entry, reason in doomed:
        report.evicted += 1
        report.freed_bytes += entry.bytes
        report.reasons[entry.fingerprint] = reason
        if not dry_run:
            try:
                os.unlink(entry.path)
            except OSError:  # raced with concurrent gc
                pass
    report.kept = report.examined - report.evicted
    return report


# ----------------------------------------------------------------------
# merge
# ----------------------------------------------------------------------
class CacheMergeError(RuntimeError):
    """Two caches disagree about a fingerprint's bytes.

    Content addressing makes honest caches agree byte-for-byte, so a
    colliding entry with different bytes means corruption (or a SHA-256
    collision); the merge aborts before copying anything.
    """

    def __init__(self, fingerprint: str, src: Path, dst: Path) -> None:
        super().__init__(
            f"cache merge conflict: entry {fingerprint} exists in both "
            f"{src} and {dst} with different bytes — verify both caches "
            f"(faas-sched cache verify) and retry"
        )
        self.fingerprint = fingerprint


@dataclass
class MergeReport:
    """What ``faas-sched cache merge SRC DST`` did."""

    src: Path
    dst: Path
    copied: int = 0
    #: Present in both roots, byte-identical (content addressing at work).
    identical: int = 0
    copied_bytes: int = 0

    def render(self) -> str:
        return (
            f"merge: {self.copied} copied "
            f"({_human_bytes(self.copied_bytes)}), "
            f"{self.identical} already present (byte-identical) "
            f"from {self.src} into {self.dst}"
        )


def merge_caches(src: Union[str, Path], dst: Union[str, Path]) -> MergeReport:
    """Union ``src`` into ``dst`` by fingerprint, verifying collisions.

    Scans ``src`` first: every fingerprint present in both roots is
    byte-compared *before* any copy, so a conflicted merge changes
    nothing.  Missing entries are then copied atomically (tmp +
    ``os.replace``) into ``dst``'s fan-out — safe to run against a live
    cache that workers are writing to.  Sidecars (queue, claims,
    quarantine) are not merged: they are per-root coordination state.
    """
    src = Path(src).expanduser()
    dst = Path(dst).expanduser()
    if not src.is_dir():
        raise FileNotFoundError(f"merge source {src} is not a directory")
    same = src.resolve() == dst.resolve() if dst.exists() else src == dst
    if same:
        raise ValueError(f"merge source and destination are the same root: {src}")
    report = MergeReport(src=src, dst=dst)
    to_copy: List[CacheEntry] = []
    for entry in _scan_entries(src):
        target = dst / entry.fingerprint[:2] / entry.path.name
        if target.exists():
            if entry.path.read_bytes() != target.read_bytes():
                raise CacheMergeError(entry.fingerprint, src, dst)
            report.identical += 1
        else:
            to_copy.append(entry)
    for entry in to_copy:
        target = dst / entry.fingerprint[:2] / entry.path.name
        target.parent.mkdir(parents=True, exist_ok=True)
        data = entry.path.read_bytes()
        tmp = target.with_name(f"{target.name}.tmp-merge-{os.getpid()}")
        tmp.write_bytes(data)
        os.replace(tmp, target)
        report.copied += 1
        report.copied_bytes += len(data)
    return report
