"""Pluggable grid-execution backends behind one ``Executor`` interface.

The parallel engine historically had exactly one execution strategy: a
local process-per-cell pool owned by the submitting process.  A full
scenario × policy × cluster × seed × failure sweep outgrows one
machine, so :func:`~repro.experiments.parallel.run_configs` now
delegates the *"run these pending cells"* step to an executor selected
by name:

``local`` (default)
    The historical engine, byte-for-byte: ``jobs=1`` runs cells inline
    in the submitting process (failures raise the original exception),
    ``jobs>1`` shards them across the crash-hardened
    :class:`~repro.experiments.parallel._ProcessEngine`.

``queue``
    The distributed mode (:mod:`repro.experiments.queue`): pending
    cells are enqueued as fingerprint-keyed claim files under the
    shared cache root, and any number of ``faas-sched worker``
    processes — on this host or any host sharing the cache directory —
    claim, compute, and store them.  The submitting process
    participates as a worker itself, so a queue sweep with no external
    workers still completes; with them it scales out.  The cache entry
    is the done-marker, which makes every sweep resumable by
    construction.

Executors never see cache *hits*: :func:`run_configs` serves those
before delegating, so a backend only ever receives genuinely pending
cells.  Storing computed results into the cache is each backend's
responsibility (the queue protocol must store *before* releasing a
cell's lease; the local path stores as cells finish).

Selection: the ``executor=`` argument (threaded through
``run_grid``/``EngineOptions``/the CLI's ``--executor`` flag), else the
``REPRO_EXECUTOR`` environment variable, else ``local``.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.experiments.parallel import (
    AnyConfig,
    EngineStats,
    ResultCache,
    Runner,
)
from repro.experiments.runner import ExperimentResult

__all__ = [
    "EXECUTOR_ENV",
    "ExecutionContext",
    "Executor",
    "FinishedCallback",
    "LocalExecutor",
    "executor_names",
    "get_executor",
    "register_executor",
]

#: Environment variable supplying the default executor name.
EXECUTOR_ENV = "REPRO_EXECUTOR"

#: ``callback(index, config, result, cached)`` — invoked exactly once per
#: pending cell, in completion order (results are slotted by ``index``).
FinishedCallback = Callable[[int, AnyConfig, ExperimentResult, bool], None]


@dataclass
class ExecutionContext:
    """Everything a backend needs to run one batch of pending cells."""

    #: Requested worker parallelism (meaning is backend-specific: local
    #: process count, or local helper-worker count for the queue).
    jobs: int = 1
    #: The sweep's result cache, or ``None`` when caching is disabled.
    #: Backends that compute a cell must store it here themselves.
    cache: Optional[ResultCache] = None
    #: Per-cell wall-clock budget in seconds (``None``: unbounded).
    cell_timeout: Optional[float] = None
    #: Live counters to fill in place (retries, timeouts, ...).
    stats: EngineStats = field(default_factory=EngineStats)


class Executor(ABC):
    """One grid-execution strategy.

    Implementations must call ``finished`` exactly once per pending cell
    and must be deterministic in *content*: whatever process computes a
    cell, the stored/returned result is bit-identical to the serial path
    (each cell seeds its own RNGs from its config — see
    :mod:`repro.experiments.parallel`).
    """

    #: Registry name (``--executor`` spelling).
    name: str = "?"

    @abstractmethod
    def execute(
        self,
        pending: List[Tuple[int, AnyConfig, Runner]],
        finished: FinishedCallback,
        context: ExecutionContext,
    ) -> None:
        """Run every pending ``(index, config, runner)`` cell."""


class LocalExecutor(Executor):
    """The historical in-process engine, unchanged in behaviour.

    ``jobs=1`` runs cells inline (exceptions propagate untouched, the
    exact code path the repo has always had); ``jobs>1`` uses the
    crash-hardened process-per-cell engine (killed workers respawned
    with backoff, hung cells cancelled on the per-cell deadline).
    """

    name = "local"

    def execute(
        self,
        pending: List[Tuple[int, AnyConfig, Runner]],
        finished: FinishedCallback,
        context: ExecutionContext,
    ) -> None:
        cache = context.cache

        def done(
            index: int, config: AnyConfig, result: ExperimentResult, cached: bool
        ) -> None:
            if cache is not None:
                cache.store(config, result)
            finished(index, config, result, cached)

        if context.jobs <= 1:
            for index, config, run in pending:
                done(index, config, run(config), cached=False)
            return
        from repro.experiments.parallel import _ProcessEngine

        engine = _ProcessEngine(
            workers=min(context.jobs, len(pending)),
            cell_timeout=context.cell_timeout,
            stats=context.stats,
        )
        engine.run(pending, done)


def _local_factory() -> Executor:
    return LocalExecutor()


def _queue_factory() -> Executor:
    # Imported lazily: queue.py subclasses Executor from this module.
    from repro.experiments.queue import QueueExecutor

    return QueueExecutor()


_EXECUTORS: Dict[str, Callable[[], Executor]] = {
    "local": _local_factory,
    "queue": _queue_factory,
}


def executor_names() -> List[str]:
    """Registered executor names, sorted (CLI ``--executor`` choices)."""
    return sorted(_EXECUTORS)


def register_executor(name: str, factory: Callable[[], Executor]) -> None:
    """Register a custom execution backend under ``name``.

    Duplicate names are rejected: silently replacing ``local`` or
    ``queue`` would change the meaning of every existing sweep.
    """
    if name in _EXECUTORS:
        raise ValueError(f"executor {name!r} is already registered")
    _EXECUTORS[name] = factory


def get_executor(name: Optional[str] = None) -> Executor:
    """The executor for ``name`` (``None``: ``$REPRO_EXECUTOR`` or local)."""
    if name is None:
        name = os.environ.get(EXECUTOR_ENV, "").strip() or "local"
    try:
        factory = _EXECUTORS[name]
    except KeyError:
        raise ValueError(
            f"unknown executor {name!r}; available: {', '.join(executor_names())}"
        ) from None
    return factory()
