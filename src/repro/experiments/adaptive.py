"""Adaptive seed allocation: spend repetitions only where they decide.

The paper's protocol runs a fixed 5 seeds per cell.  With the significance
machinery of :mod:`repro.metrics.compare`, a fixed count is both wasteful
and under-powered: a pair of policies that separates cleanly after 5 seeds
needs no more, while a close pair may need 20+ before its corrected CIs
stop overlapping.  This module runs repetitions in batches and stops a
pair as soon as every decision metric is significant after Holm
correction *and* its bootstrap CI excludes zero
(:meth:`~repro.metrics.compare.ComparisonResult.all_separated`), up to a
hard ``max_seeds`` budget.

Two entry points:

* :func:`allocate_seeds` — one config pair (the adaptive counterpart of
  :func:`~repro.experiments.runner.run_repetitions` run twice);
* :func:`run_adaptive_grid` — a :class:`~repro.experiments.grid.GridSpec`
  whose strategies are compared pairwise per (cores, intensity) cell,
  sharing each strategy's runs across the pairs that reference it.

Both route every simulation through
:func:`~repro.experiments.parallel.run_configs`, so ``jobs``/``cache_dir``
give the usual worker pool and on-disk cache, and results are bit-identical
to the fixed-seed path for the seeds actually run.  Nothing here touches
the cache schema: adaptive allocation only *chooses which configs to run*;
each run is cached under its ordinary config fingerprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.experiments.config import ExperimentConfig
from repro.experiments.grid import GridSpec
from repro.experiments.parallel import run_configs
from repro.experiments.runner import ExperimentResult
from repro.metrics.compare import ComparisonResult, compare_results

__all__ = [
    "AdaptiveAllocation",
    "AdaptiveGridResult",
    "DEFAULT_DECISION_METRICS",
    "allocate_seeds",
    "run_adaptive_grid",
]

#: Metrics that must separate before a pair stops early.  Deliberately a
#: single headline metric — every added metric enlarges the Holm family
#: and therefore the seed budget needed to converge — and deliberately
#: stretch, the paper's ranking metric (Table IV): per-seed mean stretch
#: separates policies far earlier than the outlier-prone mean response
#: time.
DEFAULT_DECISION_METRICS = ("mean_stretch",)


class _RunStore:
    """Lazily extended per-seed results for one seedless config.

    Seeds are taken from ``seed_sequence`` in order; ``take(n)`` runs only
    the missing prefix, so pairs sharing a strategy share its runs."""

    def __init__(
        self,
        base: ExperimentConfig,
        seed_sequence: Tuple[int, ...],
        *,
        jobs: int = 1,
        cache_dir: Optional[Union[str, Path]] = None,
        executor: Optional[str] = None,
    ) -> None:
        self.base = base
        self.seed_sequence = seed_sequence
        self.jobs = jobs
        self.cache_dir = cache_dir
        self.executor = executor
        self.results: List[ExperimentResult] = []
        #: Simulations actually launched through this store (cache hits
        #: included: they still occupy budget in the fixed-seed protocol).
        self.runs = 0

    def take(self, n: int) -> List[ExperimentResult]:
        if n > len(self.seed_sequence):
            raise ValueError(
                f"requested {n} seeds but the sequence holds only "
                f"{len(self.seed_sequence)}"
            )
        missing = self.seed_sequence[len(self.results) : n]
        if missing:
            self.results.extend(
                run_configs(
                    [self.base.with_(seed=seed) for seed in missing],
                    jobs=self.jobs,
                    cache_dir=self.cache_dir,
                    executor=self.executor,
                )
            )
            self.runs += len(missing)
        return self.results[:n]


@dataclass(frozen=True)
class AdaptiveAllocation:
    """Outcome of one adaptively seeded pair comparison."""

    #: The final comparison over every seed that was run.
    comparison: ComparisonResult
    #: Per-seed results actually run, in seed order.
    results_a: Tuple[ExperimentResult, ...]
    results_b: Tuple[ExperimentResult, ...]
    #: The seeds used (a prefix of the requested sequence).
    seeds: Tuple[int, ...]
    #: Whether the pair separated before exhausting ``max_seeds``.
    converged: bool
    #: ``(n_seeds, separated)`` per comparison round, for diagnostics.
    rounds: Tuple[Tuple[int, bool], ...]
    #: Simulations launched (both sides) vs. the fixed-``max_seeds`` cost.
    total_runs: int = 0
    fixed_equivalent_runs: int = 0

    @property
    def runs_saved(self) -> int:
        """How many simulations the early stop avoided."""
        return self.fixed_equivalent_runs - self.total_runs

    def describe(self) -> str:
        state = "converged" if self.converged else "budget exhausted"
        return (
            f"{self.comparison.label_a} vs {self.comparison.label_b}: "
            f"{state} after {len(self.seeds)} seeds "
            f"({self.total_runs}/{self.fixed_equivalent_runs} runs, "
            f"{self.runs_saved} saved)"
        )


def _validate_budget(initial_seeds: int, max_seeds: int, batch: int) -> None:
    if initial_seeds < 2:
        raise ValueError(
            f"initial_seeds must be >= 2 (got {initial_seeds}): a one-seed "
            f"sample has no distribution to test"
        )
    if batch < 1:
        raise ValueError(f"batch must be >= 1 (got {batch})")
    if max_seeds < initial_seeds:
        raise ValueError(
            f"max_seeds ({max_seeds}) must be >= initial_seeds "
            f"({initial_seeds})"
        )


def _resolve_seed_sequence(
    seeds: Optional[Sequence[int]], max_seeds: int
) -> Tuple[int, ...]:
    if seeds is None:
        return tuple(range(1, max_seeds + 1))
    sequence = tuple(seeds)
    if len(set(sequence)) != len(sequence):
        raise ValueError(f"seed sequence contains duplicates: {sequence}")
    if len(sequence) < max_seeds:
        # Extend past the explicit seeds with fresh integers so the budget
        # stays reachable while the given prefix (and its cache entries)
        # is reused verbatim.
        extra = []
        candidate = max(sequence) + 1
        while len(sequence) + len(extra) < max_seeds:
            if candidate not in sequence:
                extra.append(candidate)
            candidate += 1
        sequence = sequence + tuple(extra)
    return sequence


def _adaptive_pair(
    store_a: _RunStore,
    store_b: _RunStore,
    *,
    decision_metrics: Sequence[str],
    initial_seeds: int,
    max_seeds: int,
    batch: int,
    alpha: float,
    confidence: float,
    resamples: int,
    ci_method: str,
) -> AdaptiveAllocation:
    runs_before = store_a.runs + store_b.runs
    n = initial_seeds
    rounds: List[Tuple[int, bool]] = []
    while True:
        results_a = store_a.take(n)
        results_b = store_b.take(n)
        comparison = compare_results(
            results_a,
            results_b,
            metrics=decision_metrics,
            alpha=alpha,
            confidence=confidence,
            resamples=resamples,
            ci_method=ci_method,
        )
        separated = comparison.all_separated()
        rounds.append((n, separated))
        if separated or n >= max_seeds:
            return AdaptiveAllocation(
                comparison=comparison,
                results_a=tuple(results_a),
                results_b=tuple(results_b),
                seeds=store_a.seed_sequence[:n],
                converged=separated,
                rounds=tuple(rounds),
                total_runs=(store_a.runs + store_b.runs) - runs_before,
                fixed_equivalent_runs=2 * max_seeds,
            )
        n = min(n + batch, max_seeds)


def allocate_seeds(
    config_a: ExperimentConfig,
    config_b: ExperimentConfig,
    *,
    decision_metrics: Sequence[str] = DEFAULT_DECISION_METRICS,
    seeds: Optional[Sequence[int]] = None,
    initial_seeds: int = 5,
    max_seeds: int = 20,
    batch: int = 5,
    alpha: float = 0.05,
    confidence: float = 0.95,
    resamples: int = 1000,
    ci_method: str = "bca",
    jobs: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    executor: Optional[str] = None,
) -> AdaptiveAllocation:
    """Run repetitions of two configs in batches until they separate.

    Starts with ``initial_seeds`` repetitions of each config (the paper's
    fixed protocol), then adds ``batch`` more at a time while the
    Holm-corrected comparison on ``decision_metrics`` still fails
    :meth:`~repro.metrics.compare.ComparisonResult.all_separated`, up to
    ``max_seeds`` per side.  ``seeds`` overrides the seed sequence
    (default ``1..max_seeds``); an explicit sequence shorter than
    ``max_seeds`` is extended with fresh integers.

    The returned allocation's :attr:`~AdaptiveAllocation.total_runs` vs.
    :attr:`~AdaptiveAllocation.fixed_equivalent_runs` quantifies what the
    early stop saved over always running ``max_seeds`` seeds per side.
    """
    _validate_budget(initial_seeds, max_seeds, batch)
    sequence = _resolve_seed_sequence(seeds, max_seeds)
    store_a = _RunStore(config_a, sequence, jobs=jobs, cache_dir=cache_dir, executor=executor)
    store_b = _RunStore(config_b, sequence, jobs=jobs, cache_dir=cache_dir, executor=executor)
    return _adaptive_pair(
        store_a,
        store_b,
        decision_metrics=decision_metrics,
        initial_seeds=initial_seeds,
        max_seeds=max_seeds,
        batch=batch,
        alpha=alpha,
        confidence=confidence,
        resamples=resamples,
        ci_method=ci_method,
    )


@dataclass
class AdaptiveGridResult:
    """Pairwise adaptive comparisons over a grid.

    Keys are ``(cores, intensity, strategy_a, strategy_b)``.
    """

    spec: GridSpec
    allocations: Dict[Tuple[int, int, str, str], AdaptiveAllocation]
    #: Simulations launched across the whole grid (shared runs counted
    #: once) vs. running every involved strategy at ``max_seeds`` seeds.
    total_runs: int = 0
    fixed_equivalent_runs: int = 0
    max_seeds: int = 0

    @property
    def runs_saved(self) -> int:
        return self.fixed_equivalent_runs - self.total_runs

    def converged(self) -> List[Tuple[int, int, str, str]]:
        """The pairs that separated within budget."""
        return [k for k, a in self.allocations.items() if a.converged]

    def render(self) -> str:
        lines = [
            f"adaptive grid: {self.total_runs}/{self.fixed_equivalent_runs} "
            f"runs ({self.runs_saved} saved vs. fixed "
            f"{self.max_seeds}-seed protocol)"
        ]
        for (cores, intensity, _a, _b), allocation in self.allocations.items():
            lines.append(f"  c={cores} v={intensity} {allocation.describe()}")
        return "\n".join(lines)


def _strategy_pairs(
    strategies: Sequence[str], pairs: Optional[Sequence[Tuple[str, str]]]
) -> List[Tuple[str, str]]:
    if pairs is None:
        if len(strategies) < 2:
            raise ValueError(
                f"adaptive grid needs at least two strategies to compare "
                f"(got {tuple(strategies)})"
            )
        # Reference-vs-rest: the first strategy is the baseline of every
        # pair, mirroring the paper's "policy X vs the field" reading.
        return [(strategies[0], other) for other in strategies[1:]]
    resolved = [tuple(pair) for pair in pairs]
    known = set(strategies)
    for pair in resolved:
        if len(pair) != 2 or pair[0] == pair[1]:
            raise ValueError(f"not a comparable strategy pair: {pair!r}")
        missing = [s for s in pair if s not in known]
        if missing:
            raise ValueError(
                f"pair {pair!r} names strategies {missing} absent from the "
                f"spec's strategies {tuple(strategies)}"
            )
    return resolved


def run_adaptive_grid(
    spec: GridSpec,
    *,
    pairs: Optional[Sequence[Tuple[str, str]]] = None,
    decision_metrics: Sequence[str] = DEFAULT_DECISION_METRICS,
    max_seeds: int = 20,
    batch: int = 5,
    alpha: float = 0.05,
    confidence: float = 0.95,
    resamples: int = 1000,
    ci_method: str = "bca",
    jobs: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    executor: Optional[str] = None,
) -> AdaptiveGridResult:
    """Adaptively seed every strategy pair of a grid.

    For each ``(cores, intensity)`` cell and each strategy pair (default:
    ``spec.strategies[0]`` vs. each of the rest; override with ``pairs``),
    runs :func:`allocate_seeds` starting from the spec's own seed tuple
    and extending by ``batch`` up to ``max_seeds``.  A strategy appearing
    in several pairs shares its runs — the budget accounting counts each
    simulation once.

    Only classic single-topology grids are supported: a cluster sweep
    multiplies every pair by its topologies, which deserves explicit
    per-topology comparisons instead.
    """
    if spec.has_cluster_sweep:
        raise ValueError(
            "run_adaptive_grid needs a single-topology GridSpec; compare "
            "cluster variants with compare_grid over an ordinary run_grid"
        )
    _validate_budget(len(spec.seeds), max_seeds, batch)
    strategy_pairs = _strategy_pairs(spec.strategies, pairs)
    sequence = _resolve_seed_sequence(spec.seeds, max_seeds)
    policy_params = spec.policy_params_by_strategy()
    (variant,) = spec.cluster_variants()

    stores: Dict[Tuple[int, int, str], _RunStore] = {}

    def store_for(cores: int, intensity: int, strategy: str) -> _RunStore:
        key = (cores, intensity, strategy)
        if key not in stores:
            stores[key] = _RunStore(
                ExperimentConfig(
                    cores=cores,
                    intensity=intensity,
                    policy=strategy,
                    scenario=spec.scenario,
                    scenario_params=spec.scenario_params,
                    policy_params=policy_params[strategy],
                    cluster=variant,
                    retain_records=spec.retain_records,
                ),
                sequence,
                jobs=jobs,
                cache_dir=cache_dir,
                executor=executor,
            )
        return stores[key]

    allocations: Dict[Tuple[int, int, str, str], AdaptiveAllocation] = {}
    for cores in spec.cores:
        for intensity in spec.intensities:
            for strategy_a, strategy_b in strategy_pairs:
                allocations[(cores, intensity, strategy_a, strategy_b)] = (
                    _adaptive_pair(
                        store_for(cores, intensity, strategy_a),
                        store_for(cores, intensity, strategy_b),
                        decision_metrics=decision_metrics,
                        initial_seeds=len(spec.seeds),
                        max_seeds=max_seeds,
                        batch=batch,
                        alpha=alpha,
                        confidence=confidence,
                        resamples=resamples,
                        ci_method=ci_method,
                    )
                )
    return AdaptiveGridResult(
        spec=spec,
        allocations=allocations,
        total_runs=sum(store.runs for store in stores.values()),
        fixed_equivalent_runs=len(stores) * max_seeds,
        max_seeds=max_seeds,
    )
