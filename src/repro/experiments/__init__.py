"""Experiment harness: configuration, runner, parallel execution engine,
and one module per paper artifact (tables and figures).  See DESIGN.md §4
for the full index.
"""

from repro.experiments.adaptive import (
    AdaptiveAllocation,
    AdaptiveGridResult,
    allocate_seeds,
    run_adaptive_grid,
)
from repro.experiments.config import ExperimentConfig, MultiNodeConfig
from repro.experiments.parallel import (
    CacheVerification,
    EngineOptions,
    EngineStats,
    ResultCache,
    WorkerError,
    config_fingerprint,
    progress_printer,
    run_configs,
    verify_cache,
)
from repro.experiments.runner import (
    ExperimentResult,
    run_experiment,
    run_multi_node_experiment,
    run_repetitions,
)

__all__ = [
    "AdaptiveAllocation",
    "AdaptiveGridResult",
    "allocate_seeds",
    "run_adaptive_grid",
    "CacheVerification",
    "EngineOptions",
    "EngineStats",
    "ExperimentConfig",
    "ExperimentResult",
    "MultiNodeConfig",
    "ResultCache",
    "WorkerError",
    "config_fingerprint",
    "progress_printer",
    "run_configs",
    "run_experiment",
    "run_multi_node_experiment",
    "run_repetitions",
    "verify_cache",
]
