"""Experiment harness: configuration, runner, and one module per paper
artifact (tables and figures).  See DESIGN.md §4 for the full index.
"""

from repro.experiments.config import ExperimentConfig, MultiNodeConfig
from repro.experiments.runner import (
    ExperimentResult,
    run_experiment,
    run_multi_node_experiment,
    run_repetitions,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "MultiNodeConfig",
    "run_experiment",
    "run_multi_node_experiment",
    "run_repetitions",
]
