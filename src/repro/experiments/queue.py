"""Distributed, resumable grid execution over a shared cache root.

The ``queue`` executor turns the content-addressed result cache into a
work queue: the submitting process writes one *queue entry* per pending
cell (fingerprint-keyed, under ``<root>/queue/``), and any number of
worker processes — ``faas-sched worker`` on this host or any host that
shares the cache directory (NFS, a synced volume, a CI workspace) —
claim entries, compute them, and store the result in the cache.  The
cache entry *is* the done-marker, so:

* any worker's cache write is every worker's cache hit;
* an interrupted sweep resumes for free — re-running the grid only
  enqueues (and computes) cells whose done-marker is missing;
* concurrent sweeps over overlapping grids deduplicate naturally.

Claim protocol (crash-safe by construction):

1. **Claim** — a worker claims fingerprint ``fp`` by creating
   ``<root>/claims/<fp>.lease`` with ``O_CREAT | O_EXCL`` (atomic on
   POSIX and NFSv3+): exactly one concurrent claimant wins.  The lease
   records owner id, host, pid, TTL, and a heartbeat timestamp.
2. **Heartbeat** — while computing, the owner refreshes the lease every
   ``ttl/4`` seconds (atomic rewrite).  A lease whose heartbeat is
   older than its TTL — or whose owning pid is dead, when observed from
   the same host — is *stale*.
3. **Steal** — a stale lease is taken over by renaming it away; the
   rename succeeds for exactly one stealer (the losers' rename raises),
   after which the winner re-claims via step 1.  A SIGKILLed worker's
   cell is therefore recomputed exactly once, by whoever steals it.
4. **Done** — the owner stores the result (atomic ``os.replace`` into
   the cache fan-out), removes the queue entry, then releases the
   lease.  Ordering matters: the done-marker lands before the claim
   disappears, so no window exists in which a cell looks both unclaimed
   and uncomputed.

Workers only ever *add* byte-identical entries (every cell is a fully
seeded, deterministic simulation), so racing computations of the same
cell are wasteful but harmless — the last atomic store wins with the
same bytes.  See docs/DISTRIBUTED.md for the operational guide.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import socket
import sys
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Set, Tuple, Union

from repro.experiments.executor import ExecutionContext, Executor, FinishedCallback
from repro.experiments.parallel import (
    QUARANTINE_DIR,
    AnyConfig,
    ResultCache,
    Runner,
    _default_runner,
    config_fingerprint,
    config_from_dict,
    config_to_dict,
)
from repro.experiments.runner import (
    run_experiment,
    run_multi_node_experiment,
)

__all__ = [
    "CLAIMS_DIR",
    "DEFAULT_LEASE_TTL",
    "LEASE_TTL_ENV",
    "Lease",
    "QUEUE_DIR",
    "QueueExecutor",
    "WorkerSummary",
    "enqueue_config",
    "pending_fingerprints",
    "read_lease",
    "release_lease",
    "run_worker",
    "try_claim",
]

#: Sidecar directories under the cache root.  Neither name is two hex
#: characters, so the cache's own shard scan (and ``verify_cache``)
#: never visits them.
QUEUE_DIR = "queue"
CLAIMS_DIR = "claims"

#: Environment variable supplying the default lease TTL (seconds).
LEASE_TTL_ENV = "REPRO_LEASE_TTL"
#: A lease not refreshed for this long is stale and stealable.  Cells
#: typically run seconds-to-minutes; the heartbeat fires every ttl/4,
#: so 60 s tolerates heavy scheduler jitter without delaying recovery
#: from a dead worker by more than a minute.
DEFAULT_LEASE_TTL = 60.0
#: Heartbeats per TTL window.
_HEARTBEAT_FRACTION = 4.0
#: Poll interval while waiting on cells claimed by other workers.
DEFAULT_POLL_S = 0.2

#: ``callback(fingerprint, label)`` invoked when a worker starts a cell.
WorkerProgress = Callable[[str, str], None]


def _resolve_ttl(ttl: Optional[float]) -> float:
    """The effective lease TTL: explicit value, else ``$REPRO_LEASE_TTL``,
    else :data:`DEFAULT_LEASE_TTL`; must be positive."""
    if ttl is None:
        raw = os.environ.get(LEASE_TTL_ENV, "").strip()
        if not raw:
            return DEFAULT_LEASE_TTL
        try:
            ttl = float(raw)
        except ValueError:
            raise ValueError(
                f"{LEASE_TTL_ENV}={raw!r} is not a number (seconds)"
            ) from None
    ttl = float(ttl)
    if ttl <= 0:
        raise ValueError(f"lease TTL must be positive, got {ttl}")
    return ttl


def new_owner_id() -> str:
    """A worker identity unique across hosts, processes, and restarts."""
    return f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:8]}"


# ----------------------------------------------------------------------
# Paths
# ----------------------------------------------------------------------
def _queue_path(root: Path, fingerprint: str) -> Path:
    return root / QUEUE_DIR / f"{fingerprint}.json"


def _lease_path(root: Path, fingerprint: str) -> Path:
    return root / CLAIMS_DIR / f"{fingerprint}.lease"


def _done_path(root: Path, fingerprint: str) -> Path:
    """The cache entry for ``fingerprint`` — its existence is the
    done-marker (same layout as :class:`ResultCache.path_for`)."""
    return root / fingerprint[:2] / f"{fingerprint}.json"


def _atomic_write(path: Path, text: str) -> None:
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}-{uuid.uuid4().hex[:6]}")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


# ----------------------------------------------------------------------
# Leases
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Lease:
    """One worker's claim on one cell."""

    fingerprint: str
    owner: str
    host: str
    pid: int
    #: Unix timestamps (`time.time()`): wall clock is the only clock
    #: shared across hosts.  TTLs are minutes, so ordinary clock skew
    #: is harmless; heavily skewed clocks only cause extra (idempotent)
    #: recomputation, never corruption.
    acquired_at: float
    heartbeat_at: float
    ttl: float

    def to_json(self) -> str:
        return json.dumps(
            {
                "fingerprint": self.fingerprint,
                "owner": self.owner,
                "host": self.host,
                "pid": self.pid,
                "acquired_at": self.acquired_at,
                "heartbeat_at": self.heartbeat_at,
                "ttl": self.ttl,
            }
        )


def read_lease(path: Union[str, Path]) -> Optional[Lease]:
    """Parse a lease file; ``None`` when missing or unreadable (a corrupt
    lease is treated as stale — it cannot prove liveness)."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        return Lease(
            fingerprint=str(payload["fingerprint"]),
            owner=str(payload["owner"]),
            host=str(payload["host"]),
            pid=int(payload["pid"]),
            acquired_at=float(payload["acquired_at"]),
            heartbeat_at=float(payload["heartbeat_at"]),
            ttl=float(payload["ttl"]),
        )
    except (OSError, ValueError, KeyError, TypeError):
        return None


def lease_is_stale(lease: Lease, now: Optional[float] = None) -> bool:
    """TTL-expired, or owned by a dead pid on *this* host (cross-host
    liveness can only be judged by the heartbeat)."""
    now = time.time() if now is None else now
    if now - lease.heartbeat_at > lease.ttl:
        return True
    if lease.host == socket.gethostname():
        try:
            os.kill(lease.pid, 0)
        except ProcessLookupError:
            return True
        except (PermissionError, OSError):  # exists, different user
            pass
    return False


def steal_lease(path: Path) -> bool:
    """Take a stale lease out of play; exactly one of N concurrent
    stealers succeeds (the single winning ``os.rename``).  A stealer
    that crashes between the rename and the unlink leaks its tombstone;
    :func:`_sweep_stale_tombstones` reclaims those."""
    tomb = path.with_name(f"{path.name}.stale-{uuid.uuid4().hex[:8]}")
    try:
        os.rename(path, tomb)
    except OSError:
        return False
    try:
        os.unlink(tomb)
    except OSError:  # pragma: no cover - tombstone already reaped
        pass
    return True


def _sweep_stale_tombstones(root: Path, ttl: float) -> int:
    """Unlink steal tombstones leaked by crashed stealers.

    Nothing else ever visits ``*.stale-*`` files in the claims sidecar,
    so without this sweep they accumulate forever on long-lived shared
    roots.  Only tombstones older than the lease TTL go — a live steal
    completes its rename-then-unlink in microseconds, so anything that
    old is certainly abandoned.  Returns the number removed.
    """
    claims = root / CLAIMS_DIR
    if not claims.is_dir():
        return 0
    cutoff = time.time() - ttl
    removed = 0
    for path in claims.glob("*.stale-*"):
        try:
            if path.stat().st_mtime <= cutoff:
                os.unlink(path)
                removed += 1
        except OSError:  # raced with another sweeper
            continue
    return removed


def try_claim(
    root: Union[str, Path],
    fingerprint: str,
    *,
    owner: str,
    ttl: Optional[float] = None,
) -> bool:
    """Attempt to claim ``fingerprint``; True when this owner now holds
    the lease.  A fresh lease held by someone else fails the claim; a
    stale one is stolen (exactly once across all racers) and re-claimed.
    """
    root = Path(root).expanduser()
    ttl = _resolve_ttl(ttl)
    path = _lease_path(root, fingerprint)
    path.parent.mkdir(parents=True, exist_ok=True)
    for _ in range(2):  # second round after a successful steal
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            lease = read_lease(path)
            if lease is not None and not lease_is_stale(lease):
                return False
            if not path.exists():
                continue  # released between the open and the read; retry
            if not steal_lease(path):
                return False  # another worker stole (and will re-claim) it
            continue
        now = time.time()
        lease = Lease(
            fingerprint=fingerprint,
            owner=owner,
            host=socket.gethostname(),
            pid=os.getpid(),
            acquired_at=now,
            heartbeat_at=now,
            ttl=ttl,
        )
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(lease.to_json())
        return True
    return False


def refresh_lease(
    root: Union[str, Path], fingerprint: str, *, owner: str, ttl: float
) -> bool:
    """Re-assert liveness: rewrite the lease with a fresh heartbeat.

    Refuses — returning ``False`` — when the on-disk lease is missing or
    names a different owner: a stalled owner whose lease was stolen and
    re-claimed must not clobber the new claimant's lease.  The
    read-then-write pair is not atomic, so a steal landing exactly in
    between can still be overwritten once; the next heartbeat observes
    the mismatch and stops.  Results stay correct either way (stores are
    idempotent and byte-identical) — this check keeps lease ownership
    truthful and avoids silently computing expensive cells twice.
    """
    root = Path(root).expanduser()
    path = _lease_path(root, fingerprint)
    current = read_lease(path)
    if current is None or current.owner != owner:
        return False
    now = time.time()
    lease = Lease(
        fingerprint=fingerprint,
        owner=owner,
        host=socket.gethostname(),
        pid=os.getpid(),
        acquired_at=now,  # refreshed leases restart their window
        heartbeat_at=now,
        ttl=ttl,
    )
    _atomic_write(path, lease.to_json())
    return True


def release_lease(
    root: Union[str, Path], fingerprint: str, *, owner: Optional[str] = None
) -> None:
    """Drop a claim (best-effort: a raced steal already removed it).
    With ``owner`` given, only a lease still naming that owner is
    removed — a stolen-and-re-claimed cell keeps its new lease."""
    path = _lease_path(Path(root).expanduser(), fingerprint)
    if owner is not None:
        lease = read_lease(path)
        if lease is None or lease.owner != owner:
            return
    try:
        os.unlink(path)
    except OSError:
        pass


class _LeaseHeartbeat(threading.Thread):
    """Background refresher keeping a lease fresh while its cell runs."""

    def __init__(self, root: Path, fingerprint: str, owner: str, ttl: float) -> None:
        super().__init__(daemon=True, name=f"lease-heartbeat-{fingerprint[:8]}")
        self.root = root
        self.fingerprint = fingerprint
        self.owner = owner
        self.ttl = ttl
        self.interval = max(ttl / _HEARTBEAT_FRACTION, 0.05)
        self._stop_event = threading.Event()

    def run(self) -> None:
        while not self._stop_event.wait(self.interval):
            try:
                if not refresh_lease(
                    self.root, self.fingerprint, owner=self.owner, ttl=self.ttl
                ):
                    return  # lease stolen or released: stop asserting it
            except OSError:  # pragma: no cover - cache root vanished
                return

    def stop(self) -> None:
        self._stop_event.set()
        self.join(timeout=5.0)


# ----------------------------------------------------------------------
# Queue entries
# ----------------------------------------------------------------------
def enqueue_config(
    root: Union[str, Path], config: AnyConfig, *, namespace: str = ""
) -> str:
    """Publish one pending cell; returns its fingerprint.  Idempotent:
    an existing queue entry or done-marker short-circuits."""
    root = Path(root).expanduser()
    fingerprint = config_fingerprint(config, namespace=namespace)
    path = _queue_path(root, fingerprint)
    if path.exists() or _done_path(root, fingerprint).exists():
        return fingerprint
    path.parent.mkdir(parents=True, exist_ok=True)
    _atomic_write(
        path,
        json.dumps(
            {
                "fingerprint": fingerprint,
                "namespace": namespace,
                "config": config_to_dict(config),
            }
        ),
    )
    return fingerprint


def pending_fingerprints(root: Union[str, Path]) -> List[str]:
    """Fingerprints with a queue entry, sorted (stable scan order)."""
    queue_dir = Path(root).expanduser() / QUEUE_DIR
    if not queue_dir.is_dir():
        return []
    return sorted(path.stem for path in queue_dir.glob("*.json"))


def _remove_queue_entry(root: Path, fingerprint: str) -> None:
    try:
        os.unlink(_queue_path(root, fingerprint))
    except OSError:
        pass


def _reap(root: Path, fingerprint: str) -> None:
    """A done cell needs neither queue entry nor (stale) lease."""
    _remove_queue_entry(root, fingerprint)
    lease_path = _lease_path(root, fingerprint)
    lease = read_lease(lease_path)
    if lease is not None and lease_is_stale(lease):
        steal_lease(lease_path)


def _quarantine_done_marker(root: Path, fingerprint: str) -> None:
    """Move a corrupt done-marker into the quarantine sidecar (the same
    treatment :func:`~repro.experiments.parallel.verify_cache` applies).

    The marker must leave the fan-out before the cell can be re-run:
    while it exists, :func:`enqueue_config` short-circuits and every
    done-check keeps reporting the cell finished, so merely re-enqueueing
    would livelock the sweep.  Falls back to unlinking when the rename
    fails (quarantine on a read-only or full filesystem).
    """
    path = _done_path(root, fingerprint)
    quarantine = root / QUARANTINE_DIR
    try:
        quarantine.mkdir(parents=True, exist_ok=True)
        os.replace(path, quarantine / f"{fingerprint[:2]}-{path.name}")
    except OSError:
        try:
            os.unlink(path)
        except OSError:  # pragma: no cover - marker already gone
            pass


def _read_entry(path: Path) -> Optional[Dict[str, Any]]:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(payload, dict):
            raise ValueError("queue entry is not an object")
        return payload
    except (OSError, ValueError):
        return None


# ----------------------------------------------------------------------
# Worker loop
# ----------------------------------------------------------------------
@dataclass
class WorkerSummary:
    """What one :func:`run_worker` invocation did."""

    #: Cells this worker claimed, computed, and stored.
    computed: int = 0
    #: Queue entries removed because their done-marker already existed
    #: (another worker computed them, or a previous sweep did).
    reaped: int = 0
    #: Queue entries dropped as unreadable or fingerprint-inconsistent
    #: (e.g. written by a different schema/package version).
    invalid: int = 0
    #: Wall-clock seconds spent in the loop.
    elapsed: float = 0.0
    #: Labels of the computed cells, in completion order.
    labels: List[str] = field(default_factory=list)

    def summary_line(self) -> str:
        return (
            f"worker: {self.computed} computed, {self.reaped} reaped, "
            f"{self.invalid} invalid, elapsed={self.elapsed:.1f}s"
        )


def _entry_config(path: Path, fingerprint: str) -> Optional[Tuple[AnyConfig, str]]:
    """Deserialize one queue entry and verify its fingerprint really is
    the content address of its config under the *current* schema and
    package version — an entry written by different code can never
    produce a valid done-marker for this filename, so it is dropped
    rather than computed."""
    payload = _read_entry(path)
    if payload is None:
        return None
    try:
        namespace = str(payload.get("namespace", ""))
        config = config_from_dict(payload["config"])
    except (KeyError, TypeError, ValueError):
        return None
    if config_fingerprint(config, namespace=namespace) != fingerprint:
        return None
    return config, namespace


def run_worker(
    cache_dir: Union[str, Path],
    *,
    poll: float = DEFAULT_POLL_S,
    idle_timeout: Optional[float] = None,
    lease_ttl: Optional[float] = None,
    max_cells: Optional[int] = None,
    only: Optional[Set[str]] = None,
    progress: Optional[WorkerProgress] = None,
) -> WorkerSummary:
    """Claim-and-compute loop over a shared cache root's work queue.

    Scans ``<cache_dir>/queue/`` for pending cells, claims them one at a
    time (lease + heartbeat), computes each with the default runner for
    its config type, stores the result, and removes the queue entry.
    Exits when no claimable work has been visible for ``idle_timeout``
    seconds (``None``/``0``: drain once and exit as soon as the queue
    looks empty), or after ``max_cells`` computations.

    ``only`` restricts the worker to a fingerprint subset (the queue
    executor's local helpers use this to drain exactly their own sweep).
    An exception inside a cell releases the lease and leaves the queue
    entry in place, then propagates — the cell stays computable by
    another worker (which will hit the same deterministic error and
    surface it too).
    """
    root = Path(cache_dir).expanduser()
    (root / QUEUE_DIR).mkdir(parents=True, exist_ok=True)
    (root / CLAIMS_DIR).mkdir(parents=True, exist_ok=True)
    ttl = _resolve_ttl(lease_ttl)
    if poll <= 0:
        raise ValueError(f"poll interval must be positive, got {poll}")
    _sweep_stale_tombstones(root, ttl)
    owner = new_owner_id()
    summary = WorkerSummary()
    started = time.monotonic()
    idle_since: Optional[float] = None
    try:
        while True:
            if max_cells is not None and summary.computed >= max_cells:
                break
            if _scan_once(root, owner, ttl, summary, only, progress, max_cells):
                idle_since = None
                continue
            if not idle_timeout:
                break
            now = time.monotonic()
            if idle_since is None:
                idle_since = now
            elif now - idle_since >= idle_timeout:
                break
            time.sleep(poll)
    finally:
        summary.elapsed = time.monotonic() - started
    return summary


def _scan_once(
    root: Path,
    owner: str,
    ttl: float,
    summary: WorkerSummary,
    only: Optional[Set[str]],
    progress: Optional[WorkerProgress],
    max_cells: Optional[int],
) -> bool:
    """One pass over the queue; True when any progress was made."""
    progressed = False
    for fingerprint in pending_fingerprints(root):
        if only is not None and fingerprint not in only:
            continue
        if max_cells is not None and summary.computed >= max_cells:
            break
        if _done_path(root, fingerprint).exists():
            _reap(root, fingerprint)
            summary.reaped += 1
            progressed = True
            continue
        entry = _entry_config(_queue_path(root, fingerprint), fingerprint)
        if entry is None:
            if _queue_path(root, fingerprint).exists():
                _remove_queue_entry(root, fingerprint)
                summary.invalid += 1
                progressed = True
            continue
        config, namespace = entry
        if not try_claim(root, fingerprint, owner=owner, ttl=ttl):
            continue
        # Claimed after the done-check raced a finishing worker?  The
        # store is idempotent, so recomputing is merely wasteful — but
        # one cheap re-check avoids it in the common case.
        if _done_path(root, fingerprint).exists():
            release_lease(root, fingerprint, owner=owner)
            _reap(root, fingerprint)
            summary.reaped += 1
            progressed = True
            continue
        if progress is not None:
            progress(fingerprint, config.label())
        heartbeat = _LeaseHeartbeat(root, fingerprint, owner, ttl)
        heartbeat.start()
        try:
            result = _default_runner(config)(config)
            ResultCache(root, namespace=namespace).store(config, result)
        finally:
            heartbeat.stop()
            release_lease(root, fingerprint, owner=owner)
        _remove_queue_entry(root, fingerprint)
        summary.computed += 1
        summary.labels.append(config.label())
        progressed = True
    return progressed


# ----------------------------------------------------------------------
# The queue executor
# ----------------------------------------------------------------------
def _helper_main(
    root: str, only: List[str], ttl: float, poll: float, idle_timeout: float
) -> None:
    """Entry point of a local helper worker (one subprocess per job)."""
    run_worker(
        root,
        only=set(only),
        lease_ttl=ttl,
        poll=poll,
        idle_timeout=idle_timeout,
    )


class QueueExecutor(Executor):
    """Claim-file distribution over the shared cache root.

    The submitting process enqueues every pending cell, then acts as a
    worker itself: it claims and computes cells inline, polling for
    done-markers produced by other workers in between.  ``jobs > 1``
    additionally spawns ``jobs - 1`` local helper workers restricted to
    this sweep's fingerprints, giving the queue executor the same
    single-host parallelism as the local engine while staying open to
    any number of external ``faas-sched worker`` processes.

    Requires a cache directory (the cache root *is* the coordination
    medium) and the default runners (a custom runner callable cannot be
    reconstructed by a detached worker process).  Rejects
    ``cell_timeout``: the lease heartbeat keeps a claimed cell alive for
    as long as it runs, so a per-cell deadline cannot be enforced here
    and is refused rather than silently ignored.
    """

    name = "queue"

    #: Local helpers idle-exit this long after the sweep stops offering
    #: them claimable work; the submitting process finishes the rest.
    HELPER_IDLE_TIMEOUT = 2.0

    def __init__(
        self, poll: float = DEFAULT_POLL_S, lease_ttl: Optional[float] = None
    ) -> None:
        self.poll = poll
        self.lease_ttl = lease_ttl

    def execute(
        self,
        pending: List[Tuple[int, AnyConfig, Runner]],
        finished: FinishedCallback,
        context: ExecutionContext,
    ) -> None:
        cache = context.cache
        if cache is None:
            raise ValueError(
                "the queue executor requires a cache directory "
                "(--cache-dir / cache_dir=...): the shared cache root is "
                "the work queue and the done-marker store"
            )
        if context.cell_timeout is not None:
            raise ValueError(
                "the queue executor does not enforce --cell-timeout: a "
                "claimed cell's lease heartbeat keeps it alive however "
                "long it runs, so the per-cell deadline would be silently "
                "ignored — drop the flag (or unset REPRO_CELL_TIMEOUT), "
                "or use executor='local'"
            )
        for _, _, run in pending:
            if run not in (run_experiment, run_multi_node_experiment):
                raise ValueError(
                    "the queue executor supports only the default "
                    "experiment runners; a custom runner callable cannot "
                    "be reconstructed by detached workers — use "
                    "executor='local'"
                )
        root = cache.root
        namespace = cache.namespace
        ttl = _resolve_ttl(self.lease_ttl)
        _sweep_stale_tombstones(root, ttl)
        owner = new_owner_id()
        remaining: Dict[str, Tuple[int, AnyConfig]] = {}
        for index, config, _ in pending:
            fingerprint = enqueue_config(root, config, namespace=namespace)
            remaining[fingerprint] = (index, config)
        helpers = self._spawn_helpers(context.jobs, root, list(remaining), ttl)
        computed_here: Set[str] = set()
        try:
            while remaining:
                progressed = False
                for fingerprint in list(remaining):
                    index, config = remaining[fingerprint]
                    if _done_path(root, fingerprint).exists():
                        result = cache.load(config)
                        if result is None:
                            # Corrupt done-marker (e.g. torn disk write):
                            # quarantine it first — while it exists,
                            # enqueue_config short-circuits and this
                            # branch re-enters forever — then put the
                            # cell back in play.
                            _quarantine_done_marker(root, fingerprint)
                            enqueue_config(root, config, namespace=namespace)
                            progressed = True
                            continue
                        _reap(root, fingerprint)
                        finished(
                            index,
                            config,
                            result,
                            fingerprint not in computed_here,
                        )
                        del remaining[fingerprint]
                        progressed = True
                        continue
                    if not try_claim(root, fingerprint, owner=owner, ttl=ttl):
                        continue
                    heartbeat = _LeaseHeartbeat(root, fingerprint, owner, ttl)
                    heartbeat.start()
                    try:
                        result = _default_runner(config)(config)
                        cache.store(config, result)
                    finally:
                        heartbeat.stop()
                        release_lease(root, fingerprint, owner=owner)
                    _remove_queue_entry(root, fingerprint)
                    computed_here.add(fingerprint)
                    finished(index, config, result, False)
                    del remaining[fingerprint]
                    progressed = True
                if remaining and not progressed:
                    time.sleep(self.poll)
        finally:
            for helper in helpers:
                helper.join(timeout=self.HELPER_IDLE_TIMEOUT + 5.0)
                if helper.is_alive():  # pragma: no cover - wedged helper
                    helper.terminate()
                    helper.join(timeout=5.0)

    def _spawn_helpers(
        self, jobs: int, root: Path, fingerprints: List[str], ttl: float
    ) -> List[Any]:
        count = min(max(0, jobs - 1), len(fingerprints))
        if count == 0:
            return []
        context = multiprocessing.get_context(
            "fork" if sys.platform.startswith("linux") else None
        )
        helpers = []
        for _ in range(count):
            process = context.Process(
                target=_helper_main,
                args=(str(root), fingerprints, ttl, self.poll, self.HELPER_IDLE_TIMEOUT),
            )
            process.daemon = True
            process.start()
            helpers.append(process)
        return helpers
