"""Experiment execution: warm-up → 60-second burst → drain (Sect. V-A).

Single-node runs (the paper's Sects. V–VII protocol) and cluster runs
(Sect. VIII and beyond) share one entry point: :func:`run_experiment`
inspects ``config.cluster`` and either takes the exact historical
single-node path or builds a fleet — per-node configurations, a load
balancer, optionally a reactive autoscaler — and drives the same
scenario through it.  Both paths are fully deterministic given the
config, which is what lets the parallel engine cache and shard them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.cluster.autoscaler import ReactiveAutoscaler
from repro.cluster.controller import make_balancer
from repro.cluster.platform import FaaSPlatform
from repro.experiments.config import ExperimentConfig, MultiNodeConfig
from repro.failures.injector import FailureInjector
from repro.failures.rng import FailureRng
from repro.failures.spec import FailureSpec
from repro.metrics.records import CallRecord
from repro.metrics.stats import SummaryStats, summarize
from repro.metrics.streaming import StreamingSummary, SummaryAccumulator
from repro.node.baseline import BaselineInvoker
from repro.node.config import NodeConfig
from repro.node.invoker import Invoker
from repro.sim.core import Environment
from repro.sim.rng import RngRegistry
from repro.workload.functions import sebs_catalog
from repro.workload.generator import BurstScenario
from repro.workload.registry import build_scenario, build_scenario_stream
from repro.workload.scenarios import multi_node_burst

__all__ = [
    "ExperimentResult",
    "RecordsNotRetainedError",
    "run_experiment",
    "run_multi_node_experiment",
    "run_repetitions",
]

AnyConfig = Union[ExperimentConfig, MultiNodeConfig]


class RecordsNotRetainedError(RuntimeError):
    """A record-derived view was requested from a streaming result.

    Raised *before* any iteration starts, with the accessor's name and the
    streaming alternative, instead of letting ``None`` crash mid-pipeline
    deep inside a metrics aggregation.
    """

    def __init__(self, what: str, alternative: str) -> None:
        super().__init__(
            f"{what} requires retained call records, but this result was "
            f"produced with retain_records=False (streaming mode); use "
            f"{alternative}, or rerun with retain_records=True"
        )
        self.what = what
        self.alternative = alternative


@dataclass
class ExperimentResult:
    """Everything one run produced.

    ``records`` holds the full per-call list on retained runs (the
    default) and ``None`` on streaming runs (``retain_records=False``),
    where only the constant-size ``accumulator`` exists.  Record-derived
    accessors raise :class:`RecordsNotRetainedError` on streaming results;
    :meth:`streaming_summary` and :attr:`cold_starts` work on both.
    """

    config: AnyConfig
    records: Optional[List[CallRecord]]
    #: Per-invoker diagnostics.
    node_stats: List[Dict[str, float]]
    #: Cluster routing diagnostics (balancer name, picks, spills, spill
    #: rate, autoscaler scale events); ``None`` on the classic
    #: single-node path, where no routing decisions exist.
    balancer_stats: Optional[Dict[str, Any]] = None
    #: Constant-size streaming fold of every completed call (populated by
    #: the runner in both modes; ``None`` only on legacy pre-streaming
    #: results and hand-built instances, where :meth:`streaming_summary`
    #: falls back to folding the retained records).
    accumulator: Optional[SummaryAccumulator] = None

    @property
    def retained(self) -> bool:
        """Whether the full call-record list was kept."""
        return self.records is not None

    def _require_records(self, what: str, alternative: str) -> List[CallRecord]:
        if self.records is None:
            raise RecordsNotRetainedError(what, alternative)
        return self.records

    def summary(self) -> SummaryStats:
        """Exact summary statistics from the retained records; streaming
        results raise — use :meth:`streaming_summary` there (exact counts
        and means, sketched percentiles)."""
        return summarize(
            self._require_records("ExperimentResult.summary()", "streaming_summary()")
        )

    def streaming_summary(self) -> StreamingSummary:
        """Summary from the constant-size accumulator: ``n_calls``,
        means, ``cold_starts`` and ``max_completion_time`` are exact
        (bit-identical to a retained run); percentiles are t-digest
        estimates within :meth:`~repro.metrics.streaming.TDigest
        .rank_error_bound`.  Works on retained results too (folding the
        records on the fly when no accumulator was attached)."""
        if self.accumulator is not None:
            return self.accumulator.summary()
        acc = SummaryAccumulator()
        for record in self._require_records(
            "ExperimentResult.streaming_summary()", "a result with an accumulator"
        ):
            acc.add(record)
        return acc.summary()

    def records_for(self, function_name: str) -> List[CallRecord]:
        records = self._require_records(
            "ExperimentResult.records_for()", "streaming_summary()"
        )
        return [r for r in records if r.function_name == function_name]

    @property
    def response_times(self) -> List[float]:
        records = self._require_records(
            "ExperimentResult.response_times",
            "streaming_summary().mean_response_time / .response_time_percentiles",
        )
        return [r.response_time for r in records]

    @property
    def stretches(self) -> List[float]:
        records = self._require_records(
            "ExperimentResult.stretches",
            "streaming_summary().mean_stretch / .stretch_percentiles",
        )
        return [r.stretch for r in records]

    @property
    def makespan(self) -> float:
        """``max c(i)`` — the moment the last response reached its client."""
        records = self._require_records(
            "ExperimentResult.makespan",
            "streaming_summary().max_completion_time (the identical value)",
        )
        return max(r.completed_at for r in records)

    @property
    def cold_starts(self) -> int:
        """Cold-started calls — exact in both modes (the accumulator
        tallies cold starts at completion time)."""
        if self.records is not None:
            return sum(1 for r in self.records if r.cold_start)
        return self.accumulator.cold_starts  # type: ignore[union-attr]

    def cluster_summary(self):
        """Per-node breakdown (utilization, imbalance, spill rate); see
        :func:`repro.metrics.cluster.cluster_breakdown`."""
        from repro.metrics.cluster import cluster_breakdown

        self._require_records(
            "ExperimentResult.cluster_summary()",
            "node_stats (per-invoker diagnostics survive streaming runs)",
        )
        return cluster_breakdown(self)


def _node_stats(
    invoker: Union[Invoker, BaselineInvoker], include_failures: bool = False
) -> Dict[str, float]:
    stats = {
        "name": invoker.name,
        "is_baseline": invoker.is_baseline,
        "cold_starts": invoker.pool.cold_starts,
        "prewarm_starts": invoker.pool.prewarm_starts,
        "warm_hits": invoker.pool.warm_hits,
        "hot_hits": invoker.pool.hot_hits,
        "evictions": invoker.pool.evictions,
        "peak_memory_mb": invoker.memory.peak_used_mb,
        "cpu_utilization": invoker.cpu.utilization(),
        "daemon_utilization": invoker.daemon.utilization(),
        "daemon_ops": dict(invoker.daemon.op_counts),
        "completed": invoker.completed_count,
    }
    if include_failures:
        # Gated so failure-free results — and the golden fingerprints
        # computed over them — keep their historical shape.
        stats["node_crashes"] = invoker.node_crashes
        stats["container_kills"] = invoker.container_kills
        stats["crash_dropped"] = invoker.crash_dropped
    return stats


def _failure_setup(
    config: AnyConfig,
) -> "tuple[Optional[FailureSpec], Optional[FailureRng]]":
    """The config's failure regime as platform kwargs (``(None, None)``
    on the failure-free path, legacy configs included)."""
    failures: FailureSpec = getattr(config, "failures", None) or FailureSpec.none()
    if failures.is_none:
        return None, None
    return failures, FailureRng(config.seed)


def _build_invoker(
    env: Environment,
    config: AnyConfig,
    name: str,
    node_config: Optional[NodeConfig] = None,
) -> Union[Invoker, BaselineInvoker]:
    node_config = node_config if node_config is not None else config.node_config()
    if config.is_baseline:
        return BaselineInvoker(env, node_config, name=name)
    # MultiNodeConfig (legacy) has no policy_params field; the registry
    # treats the absent value as "all declared defaults".
    params = dict(getattr(config, "policy_params", ()))
    return Invoker(env, node_config, policy=config.policy, name=name, policy_params=params)


def _require_requests(config: ExperimentConfig, scenario: BurstScenario) -> None:
    if len(scenario) == 0:
        # Stochastic scenarios (poisson/diurnal/trace with tiny rates, or a
        # replay of an all-zero trace) can legitimately draw zero arrivals;
        # fail here with the offending config rather than deep inside the
        # metrics aggregation.
        raise ValueError(
            f"scenario {config.scenario!r} produced no requests for "
            f"{config.label()} (params {dict(config.scenario_params)}); "
            f"increase the rate/counts or the window"
        )


def _retains_records(config: AnyConfig) -> bool:
    """Whether this run keeps full records (legacy configs always do)."""
    return bool(getattr(config, "retain_records", True))


def _build_workload(config: ExperimentConfig, rngs: RngRegistry):
    """The config's workload through the scenario registry: materialised
    (retained mode, the exact historical path) or a lazy
    :class:`~repro.workload.generator.RequestStream` (streaming mode).

    Any scenario registered via
    :func:`repro.workload.registry.register_scenario` is runnable here —
    and therefore through the grid, the parallel engine, the cache, and
    the CLI — without touching this module.
    """
    builder = build_scenario if _retains_records(config) else build_scenario_stream
    return builder(
        config.scenario,
        config.cores,
        config.intensity,
        rngs.get("scenario"),
        window=config.window_s,
        params=config.scenario_kwargs(),
    )


def _drive_platform(
    config: AnyConfig, platform: FaaSPlatform, workload
) -> "tuple[Optional[List[CallRecord]], SummaryAccumulator]":
    """Run *workload* through *platform*, folding every completed call
    into a fresh accumulator; returns ``(records-or-None, accumulator)``.

    The accumulator folds in **both** modes, at the same (completion-
    order) moments, so streaming and retained runs produce bit-identical
    accumulator state by construction.
    """
    retain = _retains_records(config)
    accumulator = SummaryAccumulator()
    if not retain:
        for invoker in platform.invokers:
            invoker.retain_completed = False
    records = platform.run_scenario(
        workload, retain_records=retain, collector=accumulator
    )
    if not retain and accumulator.n_calls == 0:
        # The streaming counterpart of _require_requests: a stream's
        # emptiness is only observable after draining it.
        raise ValueError(
            f"scenario {config.scenario!r} produced no requests for "
            f"{config.label()} (params {dict(config.scenario_params)}); "
            f"increase the rate/counts or the window"
        )
    return (records if retain else None), accumulator


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Run one experiment end to end.

    The default (single-node) cluster topology takes the exact historical
    code path; any other :class:`~repro.cluster.spec.ClusterSpec` routes
    through :func:`_run_cluster_experiment`.
    """
    if not config.cluster.is_default:
        return _run_cluster_experiment(config)
    env = Environment()
    rngs = RngRegistry(config.seed)
    catalog = sebs_catalog()

    invoker = _build_invoker(env, config, name=f"{config.policy}-node")
    if config.warmup:
        invoker.warm_up(catalog)

    workload = _build_workload(config, rngs)
    if _retains_records(config):
        _require_requests(config, workload)
    failures, failure_rng = _failure_setup(config)
    platform = FaaSPlatform(
        env, [invoker], failures=failures, failure_rng=failure_rng
    )
    # No FailureInjector: with one node there is no crash to inject (the
    # last live node never crashes); kills/stragglers/timeouts still apply.
    records, accumulator = _drive_platform(config, platform, workload)
    return ExperimentResult(
        config=config,
        records=records,
        node_stats=[_node_stats(invoker, include_failures=failures is not None)],
        accumulator=accumulator,
    )


def _run_cluster_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Run one experiment on a multi-node (or otherwise non-default)
    cluster topology: heterogeneous fleet, named balancer, optional
    reactive autoscaler.

    Determinism contract: the scenario draws from the same ``"scenario"``
    RNG stream as the single-node path, balancer sampling PRNGs are
    seeded from ``config.seed``, and the autoscaler is threshold-driven —
    so results are bit-identical across the serial and parallel engines
    for every cluster configuration.
    """
    env = Environment()
    rngs = RngRegistry(config.seed)
    catalog = sebs_catalog()
    cluster = config.cluster

    base_node = config.node_config()
    invokers = [
        _build_invoker(
            env, config, name=f"{config.policy}-node-{i}", node_config=node_config
        )
        for i, node_config in enumerate(cluster.node_configs(base_node))
    ]
    if config.warmup:
        for invoker in invokers:
            invoker.warm_up(catalog)

    workload = _build_workload(config, rngs)
    if _retains_records(config):
        _require_requests(config, workload)

    balancer_kwargs = cluster.balancer_kwargs()
    balancer = make_balancer(
        cluster.balancer,
        invokers,
        # An explicit `seed` balancer param pins the sampling PRNG; the
        # experiment's root seed drives it otherwise.
        seed=balancer_kwargs.pop("seed", config.seed),
        **balancer_kwargs,
    )
    autoscaler_config = cluster.autoscaler_config()
    autoscaler: Optional[ReactiveAutoscaler] = None
    if autoscaler_config is not None:
        # The autoscaler appends to the same (live) list the balancer and
        # platform hold, so scaled-out nodes become routable immediately.
        # Scaled-out nodes rebuild the policy from the experiment config —
        # name, policy_params, and the node's estimator settings — rather
        # than the autoscaler's generic default factory, which knows none
        # of them.
        autoscaler = ReactiveAutoscaler(
            env,
            invokers,
            base_node,
            config=autoscaler_config,
            factory=lambda index: _build_invoker(
                env, config, name=f"scaled-{index}", node_config=base_node
            ),
        )

    failures, failure_rng = _failure_setup(config)
    platform = FaaSPlatform(
        env, invokers, balancer=balancer, failures=failures, failure_rng=failure_rng
    )
    injector: Optional[FailureInjector] = None
    roster = list(invokers)
    if failures is not None and failures.has_node_crashes:
        # Crash schedules run against the same live list the balancer and
        # autoscaler hold; roster nodes drop out and rejoin in place.
        injector = FailureInjector(env, failures, invokers, failure_rng)
    records, accumulator = _drive_platform(config, platform, workload)
    if autoscaler is not None:
        autoscaler.stop()
    if injector is not None:
        injector.stop()

    balancer_stats: Dict[str, Any] = {
        "balancer": cluster.balancer,
        **balancer.stats.as_dict(),
    }
    if autoscaler is not None:
        balancer_stats["scale_events"] = [
            [time, size] for time, size in autoscaler.scale_events
        ]
    if injector is not None:
        balancer_stats["node_crashes"] = injector.crashes
        balancer_stats["skipped_crashes"] = injector.skipped_crashes
    # Stats cover every node that ever served: the roster (a node still
    # down when the run ends has left the live list) plus autoscaled
    # additions, in roster-then-live order (the historical order when no
    # crash is outstanding).
    fleet = list(dict.fromkeys([*roster, *invokers]))
    return ExperimentResult(
        config=config,
        records=records,
        node_stats=[
            _node_stats(invoker, include_failures=failures is not None)
            for invoker in fleet
        ],
        balancer_stats=balancer_stats,
        accumulator=accumulator,
    )


def run_multi_node_experiment(config: MultiNodeConfig) -> ExperimentResult:
    """Run one multi-node experiment (paper Sect. VIII)."""
    env = Environment()
    rngs = RngRegistry(config.seed)
    catalog = sebs_catalog()

    invokers = [
        _build_invoker(env, config, name=f"{config.policy}-node-{i}")
        for i in range(config.nodes)
    ]
    for invoker in invokers:
        invoker.warm_up(catalog)

    scenario = multi_node_burst(config.total_requests, rngs.get("scenario"), window=config.window_s)
    balancer = make_balancer(config.balancer, invokers)
    platform = FaaSPlatform(env, invokers, balancer=balancer)
    records, accumulator = _drive_platform(config, platform, scenario)
    return ExperimentResult(
        config=config,
        records=records,
        node_stats=[_node_stats(inv) for inv in invokers],
        accumulator=accumulator,
    )


def run_repetitions(
    config: ExperimentConfig,
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    *,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> List[ExperimentResult]:
    """The paper's 5-repetition protocol: same configuration, different
    random call sequences.

    ``jobs``/``cache_dir`` route the repetitions through the
    :mod:`repro.experiments.parallel` engine (worker pool + on-disk result
    cache); ``jobs=1`` without a cache is the plain serial path.
    """
    # Local import: parallel imports run_experiment from this module.
    from repro.experiments.parallel import run_configs

    return run_configs(
        [config.with_(seed=seed) for seed in seeds], jobs=jobs, cache_dir=cache_dir
    )
