"""Experiment execution: warm-up → 60-second burst → drain (Sect. V-A).

Single-node runs (the paper's Sects. V–VII protocol) and cluster runs
(Sect. VIII and beyond) share one entry point: :func:`run_experiment`
inspects ``config.cluster`` and either takes the exact historical
single-node path or builds a fleet — per-node configurations, a load
balancer, optionally a reactive autoscaler — and drives the same
scenario through it.  Both paths are fully deterministic given the
config, which is what lets the parallel engine cache and shard them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.cluster.autoscaler import ReactiveAutoscaler
from repro.cluster.controller import make_balancer
from repro.cluster.platform import FaaSPlatform
from repro.experiments.config import ExperimentConfig, MultiNodeConfig
from repro.metrics.records import CallRecord
from repro.metrics.stats import SummaryStats, summarize
from repro.node.baseline import BaselineInvoker
from repro.node.config import NodeConfig
from repro.node.invoker import Invoker
from repro.sim.core import Environment
from repro.sim.rng import RngRegistry
from repro.workload.functions import sebs_catalog
from repro.workload.generator import BurstScenario
from repro.workload.registry import build_scenario
from repro.workload.scenarios import multi_node_burst

__all__ = [
    "ExperimentResult",
    "run_experiment",
    "run_multi_node_experiment",
    "run_repetitions",
]

AnyConfig = Union[ExperimentConfig, MultiNodeConfig]


@dataclass
class ExperimentResult:
    """Everything one run produced."""

    config: AnyConfig
    records: List[CallRecord]
    #: Per-invoker diagnostics.
    node_stats: List[Dict[str, float]]
    #: Cluster routing diagnostics (balancer name, picks, spills, spill
    #: rate, autoscaler scale events); ``None`` on the classic
    #: single-node path, where no routing decisions exist.
    balancer_stats: Optional[Dict[str, Any]] = None

    def summary(self) -> SummaryStats:
        return summarize(self.records)

    def records_for(self, function_name: str) -> List[CallRecord]:
        return [r for r in self.records if r.function_name == function_name]

    @property
    def response_times(self) -> List[float]:
        return [r.response_time for r in self.records]

    @property
    def stretches(self) -> List[float]:
        return [r.stretch for r in self.records]

    @property
    def makespan(self) -> float:
        """``max c(i)`` — the moment the last response reached its client."""
        return max(r.completed_at for r in self.records)

    @property
    def cold_starts(self) -> int:
        return sum(1 for r in self.records if r.cold_start)

    def cluster_summary(self):
        """Per-node breakdown (utilization, imbalance, spill rate); see
        :func:`repro.metrics.cluster.cluster_breakdown`."""
        from repro.metrics.cluster import cluster_breakdown

        return cluster_breakdown(self)


def _node_stats(invoker: Union[Invoker, BaselineInvoker]) -> Dict[str, float]:
    return {
        "name": invoker.name,
        "is_baseline": invoker.is_baseline,
        "cold_starts": invoker.pool.cold_starts,
        "prewarm_starts": invoker.pool.prewarm_starts,
        "warm_hits": invoker.pool.warm_hits,
        "hot_hits": invoker.pool.hot_hits,
        "evictions": invoker.pool.evictions,
        "peak_memory_mb": invoker.memory.peak_used_mb,
        "cpu_utilization": invoker.cpu.utilization(),
        "daemon_utilization": invoker.daemon.utilization(),
        "daemon_ops": dict(invoker.daemon.op_counts),
        "completed": len(invoker.completed),
    }


def _build_invoker(
    env: Environment,
    config: AnyConfig,
    name: str,
    node_config: Optional[NodeConfig] = None,
) -> Union[Invoker, BaselineInvoker]:
    node_config = node_config if node_config is not None else config.node_config()
    if config.is_baseline:
        return BaselineInvoker(env, node_config, name=name)
    # MultiNodeConfig (legacy) has no policy_params field; the registry
    # treats the absent value as "all declared defaults".
    params = dict(getattr(config, "policy_params", ()))
    return Invoker(env, node_config, policy=config.policy, name=name, policy_params=params)


def _build_scenario(config: ExperimentConfig, rngs: RngRegistry) -> BurstScenario:
    """Build the config's workload through the scenario registry.

    Any scenario registered via
    :func:`repro.workload.registry.register_scenario` is runnable here —
    and therefore through the grid, the parallel engine, the cache, and
    the CLI — without touching this module.
    """
    return build_scenario(
        config.scenario,
        config.cores,
        config.intensity,
        rngs.get("scenario"),
        window=config.window_s,
        params=config.scenario_kwargs(),
    )


def _require_requests(config: ExperimentConfig, scenario: BurstScenario) -> None:
    if len(scenario) == 0:
        # Stochastic scenarios (poisson/diurnal/trace with tiny rates, or a
        # replay of an all-zero trace) can legitimately draw zero arrivals;
        # fail here with the offending config rather than deep inside the
        # metrics aggregation.
        raise ValueError(
            f"scenario {config.scenario!r} produced no requests for "
            f"{config.label()} (params {dict(config.scenario_params)}); "
            f"increase the rate/counts or the window"
        )


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Run one experiment end to end.

    The default (single-node) cluster topology takes the exact historical
    code path; any other :class:`~repro.cluster.spec.ClusterSpec` routes
    through :func:`_run_cluster_experiment`.
    """
    if not config.cluster.is_default:
        return _run_cluster_experiment(config)
    env = Environment()
    rngs = RngRegistry(config.seed)
    catalog = sebs_catalog()

    invoker = _build_invoker(env, config, name=f"{config.policy}-node")
    if config.warmup:
        invoker.warm_up(catalog)

    scenario = _build_scenario(config, rngs)
    _require_requests(config, scenario)
    platform = FaaSPlatform(env, [invoker])
    records = platform.run_scenario(scenario)
    return ExperimentResult(config=config, records=records, node_stats=[_node_stats(invoker)])


def _run_cluster_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Run one experiment on a multi-node (or otherwise non-default)
    cluster topology: heterogeneous fleet, named balancer, optional
    reactive autoscaler.

    Determinism contract: the scenario draws from the same ``"scenario"``
    RNG stream as the single-node path, balancer sampling PRNGs are
    seeded from ``config.seed``, and the autoscaler is threshold-driven —
    so results are bit-identical across the serial and parallel engines
    for every cluster configuration.
    """
    env = Environment()
    rngs = RngRegistry(config.seed)
    catalog = sebs_catalog()
    cluster = config.cluster

    base_node = config.node_config()
    invokers = [
        _build_invoker(
            env, config, name=f"{config.policy}-node-{i}", node_config=node_config
        )
        for i, node_config in enumerate(cluster.node_configs(base_node))
    ]
    if config.warmup:
        for invoker in invokers:
            invoker.warm_up(catalog)

    scenario = _build_scenario(config, rngs)
    _require_requests(config, scenario)

    balancer_kwargs = cluster.balancer_kwargs()
    balancer = make_balancer(
        cluster.balancer,
        invokers,
        # An explicit `seed` balancer param pins the sampling PRNG; the
        # experiment's root seed drives it otherwise.
        seed=balancer_kwargs.pop("seed", config.seed),
        **balancer_kwargs,
    )
    autoscaler_config = cluster.autoscaler_config()
    autoscaler: Optional[ReactiveAutoscaler] = None
    if autoscaler_config is not None:
        # The autoscaler appends to the same (live) list the balancer and
        # platform hold, so scaled-out nodes become routable immediately.
        # Scaled-out nodes rebuild the policy from the experiment config —
        # name, policy_params, and the node's estimator settings — rather
        # than the autoscaler's generic default factory, which knows none
        # of them.
        autoscaler = ReactiveAutoscaler(
            env,
            invokers,
            base_node,
            config=autoscaler_config,
            factory=lambda index: _build_invoker(
                env, config, name=f"scaled-{index}", node_config=base_node
            ),
        )

    platform = FaaSPlatform(env, invokers, balancer=balancer)
    records = platform.run_scenario(scenario)
    if autoscaler is not None:
        autoscaler.stop()

    balancer_stats: Dict[str, Any] = {
        "balancer": cluster.balancer,
        **balancer.stats.as_dict(),
    }
    if autoscaler is not None:
        balancer_stats["scale_events"] = [
            [time, size] for time, size in autoscaler.scale_events
        ]
    return ExperimentResult(
        config=config,
        records=records,
        node_stats=[_node_stats(invoker) for invoker in invokers],
        balancer_stats=balancer_stats,
    )


def run_multi_node_experiment(config: MultiNodeConfig) -> ExperimentResult:
    """Run one multi-node experiment (paper Sect. VIII)."""
    env = Environment()
    rngs = RngRegistry(config.seed)
    catalog = sebs_catalog()

    invokers = [
        _build_invoker(env, config, name=f"{config.policy}-node-{i}")
        for i in range(config.nodes)
    ]
    for invoker in invokers:
        invoker.warm_up(catalog)

    scenario = multi_node_burst(config.total_requests, rngs.get("scenario"), window=config.window_s)
    balancer = make_balancer(config.balancer, invokers)
    platform = FaaSPlatform(env, invokers, balancer=balancer)
    records = platform.run_scenario(scenario)
    return ExperimentResult(
        config=config,
        records=records,
        node_stats=[_node_stats(inv) for inv in invokers],
    )


def run_repetitions(
    config: ExperimentConfig,
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    *,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> List[ExperimentResult]:
    """The paper's 5-repetition protocol: same configuration, different
    random call sequences.

    ``jobs``/``cache_dir`` route the repetitions through the
    :mod:`repro.experiments.parallel` engine (worker pool + on-disk result
    cache); ``jobs=1`` without a cache is the plain serial path.
    """
    # Local import: parallel imports run_experiment from this module.
    from repro.experiments.parallel import run_configs

    return run_configs(
        [config.with_(seed=seed) for seed in seeds], jobs=jobs, cache_dir=cache_dir
    )
