"""Ablation studies for the design choices DESIGN.md calls out.

These go beyond the paper's artifacts; each isolates one mechanism:

* estimator window size (the paper fixes 10, citing [18]);
* Fair-Choice frequency horizon ``T`` (the paper suggests 60 s);
* busy-limit over-provisioning (re-introducing CPU oversubscription,
  i.e. undoing Sect. IV-A);
* cold-start cost sensitivity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.metrics.report import format_table

__all__ = [
    "ablate_estimator_window",
    "ablate_fc_horizon",
    "ablate_busy_limit",
    "ablate_cold_start_cost",
    "AblationResult",
]


@dataclass
class AblationResult:
    """Rows of (parameter value, mean response time, mean stretch, p95)."""

    name: str
    parameter: str
    rows: List[Tuple[object, float, float, float]]

    def render(self) -> str:
        return format_table(
            [self.parameter, "R.avg [s]", "S.avg", "R.p95 [s]"],
            self.rows,
            title=f"Ablation — {self.name}",
        )


def _measure(cfg: ExperimentConfig) -> Tuple[float, float, float]:
    stats = run_experiment(cfg).summary()
    return (
        stats.mean_response_time,
        stats.mean_stretch,
        stats.response_time_percentiles[95],
    )


def ablate_estimator_window(
    windows: Sequence[int] = (1, 3, 10, 50),
    cores: int = 10,
    intensity: int = 60,
    policy: str = "SEPT",
    seed: int = 1,
) -> AblationResult:
    """How much history does SEPT need?  The paper (after [18]) uses 10."""
    rows = []
    for window in windows:
        cfg = ExperimentConfig(
            cores=cores,
            intensity=intensity,
            policy=policy,
            seed=seed,
            node_overrides=(("estimator_window", window),),
        )
        rows.append((window, *_measure(cfg)))
    return AblationResult("estimator window (SEPT)", "window", rows)


def ablate_fc_horizon(
    horizons: Sequence[float] = (5.0, 15.0, 60.0, 300.0),
    cores: int = 10,
    intensity: int = 90,
    seed: int = 1,
) -> AblationResult:
    """Fair-Choice's T: short horizons forget consumption too quickly."""
    rows = []
    for horizon in horizons:
        cfg = ExperimentConfig(
            cores=cores,
            intensity=intensity,
            policy="FC",
            seed=seed,
            scenario="skewed",
            node_overrides=(("fc_horizon_s", horizon),),
        )
        rows.append((horizon, *_measure(cfg)))
    return AblationResult("Fair-Choice horizon T (skewed mix)", "T [s]", rows)


def ablate_busy_limit(
    factors: Sequence[float] = (1.0, 1.5, 2.0, 4.0),
    cores: int = 10,
    intensity: int = 60,
    policy: str = "SEPT",
    seed: int = 1,
) -> AblationResult:
    """Undo Sect. IV-A: allow ``factor * cores`` busy containers, which
    re-introduces OS-level preemption on the CPU bank."""
    rows = []
    for factor in factors:
        cfg = ExperimentConfig(
            cores=cores,
            intensity=intensity,
            policy=policy,
            seed=seed,
            node_overrides=(("busy_limit", int(round(cores * factor))),),
        )
        rows.append((factor, *_measure(cfg)))
    return AblationResult("busy-limit factor (oversubscription)", "x cores", rows)


def ablate_cold_start_cost(
    create_ops: Sequence[float] = (0.1, 0.25, 0.5, 1.0),
    cores: int = 10,
    intensity: int = 60,
    policy: str = "baseline",
    seed: int = 1,
) -> AblationResult:
    """Baseline sensitivity to the serialized container-creation cost."""
    rows = []
    for create_op in create_ops:
        cfg = ExperimentConfig(
            cores=cores,
            intensity=intensity,
            policy=policy,
            seed=seed,
            node_overrides=(("create_op_s", create_op),),
        )
        rows.append((create_op, *_measure(cfg)))
    return AblationResult("baseline create-op cost", "create_op [s]", rows)
