"""Table I reproduction: idle-system function benchmark.

The paper benchmarks each SeBS function 50 times on a warm, otherwise
idle node and reports client-side 5th/50th/95th response-time
percentiles.  We run exactly that protocol against the simulated
platform; the output validates the workload model end to end (fitted
service distributions + network overhead + warm dispatch path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.cluster.network import NetworkModel
from repro.experiments.paper_data import TABLE1_MEDIANS_MS
from repro.metrics.report import format_table
from repro.node.config import NodeConfig
from repro.node.invoker import Invoker
from repro.sim.core import Environment
from repro.sim.rng import RngRegistry
from repro.workload.functions import sebs_catalog
from repro.workload.generator import Request

__all__ = ["run_table1", "Table1Result"]


@dataclass
class Table1Result:
    """Measured idle percentiles per function (seconds)."""

    percentiles: Dict[str, Tuple[float, float, float]]

    def render(self) -> str:
        rows = []
        for name, (p5, p50, p95) in sorted(
            self.percentiles.items(), key=lambda kv: -kv[1][1]
        ):
            paper = TABLE1_MEDIANS_MS[name]
            rows.append(
                [
                    name,
                    f"{paper[0]}/{paper[1]}/{paper[2]}",
                    f"{p5 * 1e3:.0f}/{p50 * 1e3:.0f}/{p95 * 1e3:.0f}",
                ]
            )
        return format_table(
            ["function", "paper p5/p50/p95 [ms]", "measured p5/p50/p95 [ms]"],
            rows,
            title="Table I — idle-system response times (client side)",
        )


def run_table1(calls_per_function: int = 50, seed: int = 1, cores: int = 10) -> Table1Result:
    """Call every catalog function *calls_per_function* times back-to-back
    (the paper's protocol: next call issued when the previous returns) on
    an idle warm node and measure client-side response percentiles."""
    env = Environment()
    rngs = RngRegistry(seed)
    catalog = sebs_catalog()
    network = NetworkModel()
    invoker = Invoker(env, NodeConfig(cores=cores), policy="FIFO", name="idle-bench")
    invoker.warm_up(catalog)

    rng = rngs.get("table1")
    responses: Dict[str, List[float]] = {spec.name: [] for spec in catalog}

    def sequential_client():
        rid = 0
        for spec in catalog:
            services = spec.service_distribution.sample(rng, size=calls_per_function)
            for service in services:
                sent_at = env.now
                yield env.timeout(network.request_delay())
                request = Request(rid, spec, sent_at, float(service))
                rid += 1
                yield invoker.submit(request)
                yield env.timeout(network.response_delay())
                responses[spec.name].append(env.now - sent_at)

    env.process(sequential_client())
    env.run()

    percentiles: Dict[str, Tuple[float, float, float]] = {}
    for spec in catalog:
        values = np.array(responses[spec.name])
        percentiles[spec.name] = (
            float(np.percentile(values, 5)),
            float(np.percentile(values, 50)),
            float(np.percentile(values, 95)),
        )
    return Table1Result(percentiles=percentiles)
