"""Benchmark configuration.

Each benchmark regenerates one of the paper's tables or figures and
prints a paper-vs-measured report.  By default the scaled-down (quick)
protocol runs — one seed, reduced sweeps — so the whole suite finishes in
a few minutes.  Set ``REPRO_FULL=1`` to run the paper's full protocol
(5 seeds, full grids); expect a much longer run.

The grid-backed benches route through the parallel execution engine:

* ``REPRO_JOBS=N`` shards grid cells across N worker processes
  (results are bit-identical to the serial run).
* ``REPRO_CACHE_DIR=path`` reuses cached cells across benches and runs —
  e.g. fig3, fig4, table3 and table4 all slice the same grid, so with a
  cache the later benches only compute cells the earlier ones missed.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import os
from pathlib import Path

import pytest

#: Where each bench's rendered paper-vs-measured report lands (pytest
#: captures stdout, so the tables would otherwise be invisible in a
#: non-verbose run).
REPORTS_DIR = Path(__file__).parent / "reports"


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when == "call" and getattr(report, "capstdout", ""):
        REPORTS_DIR.mkdir(exist_ok=True)
        (REPORTS_DIR / f"{item.name}.txt").write_text(report.capstdout)


@pytest.fixture(scope="session")
def full_protocol() -> bool:
    """True when the full paper protocol was requested."""
    return os.environ.get("REPRO_FULL", "0") not in ("", "0", "false")


@pytest.fixture(scope="session")
def engine_opts() -> dict:
    """Parallel-engine keyword arguments for ``run_grid`` in the grid
    benches, taken from ``REPRO_JOBS`` / ``REPRO_CACHE_DIR``."""
    jobs = int(os.environ.get("REPRO_JOBS", "1") or "1")
    cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
    return {"jobs": jobs, "cache_dir": cache_dir}


@pytest.fixture
def run_once(benchmark):
    """Run a long-running experiment exactly once under pytest-benchmark."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
