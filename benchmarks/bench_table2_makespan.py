"""Bench: regenerate Table II (FIFO-to-baseline makespan ratios).

Expected shape: ratio > 1 at 5 cores / low intensity (the baseline's I/O
overlap wins — the paper's crossover) and well below 1 at 20 cores
(container-management overheads crush the baseline).
"""

from repro.experiments.artifacts import table2_from_grid
from repro.experiments.grid import GridSpec, run_grid


def test_table2_makespan_ratios(run_once, full_protocol, engine_opts):
    spec = GridSpec(
        cores=(5, 10, 20),
        intensities=(30, 40, 60, 90, 120) if full_protocol else (30, 120),
        strategies=("baseline", "FIFO"),
        seeds=(1, 2, 3, 4, 5) if full_protocol else (1, 2),
    )
    grid = run_once(run_grid, spec, **engine_opts)
    table = table2_from_grid(grid)
    print()
    print(table.render())

    lo_5_30, _ = table.ranges[(5, 30)]
    assert lo_5_30 > 0.95  # baseline competitive (paper: 1.14-1.20)
    _, hi_20_120 = table.ranges[(20, 120)]
    assert hi_20_120 < 0.8  # our FIFO clearly faster (paper: 0.55-0.58)
