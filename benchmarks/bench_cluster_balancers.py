"""Bench: balancer flavours head to head on a fixed multi-node fleet.

Extension beyond the paper (which uses the stock assignment): the same
burst on a 3-node fleet under every registered balancer, reported as a
Table-III-style comparison plus per-flavour routing quality (imbalance,
spill rate).  Locality and power-of-d are expected to spread load at
least as evenly as least-loaded probing allows while spilling rarely.
"""

from repro.cluster.controller import balancer_names
from repro.experiments.artifacts import table3_from_grid
from repro.experiments.grid import GridSpec, run_grid
from repro.metrics.cluster import cluster_breakdown


def test_cluster_balancer_sweep(run_once, full_protocol, engine_opts):
    spec = GridSpec(
        cores=(10,),
        intensities=(30, 60) if full_protocol else (30,),
        strategies=("FC",),
        seeds=(1, 2, 3, 4, 5) if full_protocol else (1,),
        nodes=(3,),
        balancers=tuple(balancer_names()),
    )
    grid = run_once(run_grid, spec, **engine_opts)
    print()
    print(table3_from_grid(grid).render())
    print()
    for key in grid.cell_keys():
        first = grid.results_for(key)[0]
        breakdown = cluster_breakdown(first)
        print(
            f"{grid.cell_label(key)}: imbalance x{breakdown.imbalance:.2f}, "
            f"spill rate {breakdown.spill_rate:.1%}"
        )
        assert breakdown.imbalance >= 1.0

    # Every flavour routed every call somewhere, and the sweep produced
    # one cell per balancer.
    assert len(grid.cells) == len(balancer_names()) * len(spec.cores) * len(
        spec.intensities
    ) * len(spec.strategies)
