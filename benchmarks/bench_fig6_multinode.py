"""Bench: regenerate Fig. 6 / Tables V-VI (multi-node experiments).

Expected shape (the paper's capacity-reduction headline): FC on 3 VMs
beats the baseline on 4 VMs on the average and the 75th percentile; FC
on 2 VMs still wins the average but loses the extreme tail.
"""

from repro.experiments.fig6_multinode import run_fig6


def test_fig6_multinode_sweep(run_once, full_protocol, engine_opts):
    # fig6 rides the parallel engine like the grid benches: REPRO_JOBS
    # shards its (nodes x strategy x seed) cells, REPRO_CACHE_DIR reuses
    # them across runs.
    seeds = (1, 2, 3, 4, 5) if full_protocol else (1,)
    result = run_once(run_fig6, cores_per_node=18, seeds=seeds, **engine_opts)
    print()
    print(result.render())

    base4_avg = result.stat(4, "baseline", "avg")
    base4_p75 = result.stat(4, "baseline", "p75")
    # FC on 3 VMs beats baseline on 4 VMs (paper: -71% avg, -97% p75).
    assert result.stat(3, "FC", "avg") < base4_avg
    assert result.stat(3, "FC", "p75") < base4_p75
    # FC on 2 VMs still wins the average (paper: -58%).
    assert result.stat(2, "FC", "avg") < base4_avg
    # Fewer FC nodes -> monotonically slower FC.
    assert (
        result.stat(4, "FC", "avg")
        <= result.stat(3, "FC", "avg")
        <= result.stat(2, "FC", "avg")
        <= result.stat(1, "FC", "avg")
    )
