"""Bench: regenerate Table III (the aggregated numeric grid) and print a
paper-vs-measured comparison for every cell run.

Expected shape: per-cell strategy ordering matches the paper — in loaded
configurations FC/SEPT < EECT/RECT < FIFO < baseline on mean response
time (baseline only competitive at 5-10 cores and low intensity).
"""

from repro.experiments.artifacts import table3_from_grid
from repro.experiments.grid import GridSpec, run_grid


def test_table3_numeric_grid(run_once, full_protocol, engine_opts):
    spec = GridSpec(
        cores=(5, 10, 20) if full_protocol else (10, 20),
        intensities=(30, 40, 60, 90, 120) if full_protocol else (30, 60, 120),
        strategies=("baseline", "FIFO", "SEPT", "EECT", "RECT", "FC"),
        seeds=(1, 2, 3, 4, 5) if full_protocol else (1,),
    )
    grid = run_once(run_grid, spec, **engine_opts)
    table = table3_from_grid(grid)
    print()
    print(table.render())
    print()
    print(table.render_comparison())

    # Ordering checks on the heavily loaded cells.
    for cores in spec.cores:
        for intensity in spec.intensities:
            if cores * intensity < 1200:
                continue  # lightly loaded: orderings may tie
            base = grid.summary(cores, intensity, "baseline").mean_response_time
            fifo = grid.summary(cores, intensity, "FIFO").mean_response_time
            sept = grid.summary(cores, intensity, "SEPT").mean_response_time
            fc = grid.summary(cores, intensity, "FC").mean_response_time
            assert sept < fifo and fc < fifo, (cores, intensity)
            if cores >= 20:
                assert base > fifo, (cores, intensity)
