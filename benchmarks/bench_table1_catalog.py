"""Bench: regenerate Table I (idle-system SeBS function benchmark).

Expected: measured 5th/50th/95th client percentiles match the paper's
Table I within a few milliseconds (the workload model is fitted to it).
"""

import pytest

from repro.experiments.paper_data import TABLE1_MEDIANS_MS
from repro.experiments.table1 import run_table1


def test_table1_idle_benchmark(run_once, full_protocol):
    calls = 50 if full_protocol else 25
    result = run_once(run_table1, calls_per_function=calls)
    print()
    print(result.render())
    # The measured median must stay within 10% + 5 ms of Table I.
    for name, (_, paper_p50_ms, _) in TABLE1_MEDIANS_MS.items():
        measured_ms = result.percentiles[name][1] * 1e3
        assert measured_ms == pytest.approx(paper_p50_ms, rel=0.10, abs=5.0), name
