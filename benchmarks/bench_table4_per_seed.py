"""Bench: regenerate Table IV (per-seed rows) and, by extension, the
appendix Figures 7-36 (per-seed distributions of response time/stretch).

Expected shape: the paper notes "the variance between repetitions is
small" — per-seed means of a cell stay within a small factor of each
other.
"""


from repro.experiments.artifacts import table3_from_grid
from repro.experiments.grid import GridSpec, run_grid


def test_table4_per_seed_rows(run_once, full_protocol, engine_opts):
    spec = GridSpec(
        cores=(10,),
        intensities=(30, 60) if not full_protocol else (30, 40, 60, 90, 120),
        strategies=("baseline", "FIFO", "SEPT", "FC"),
        seeds=(1, 2, 3, 4, 5),
    )
    grid = run_once(run_grid, spec, **engine_opts)
    table = table3_from_grid(grid, per_seed=True)
    print()
    print(table.render())

    # Low cross-seed variance for our policies (paper Sect. VII intro).
    for intensity in spec.intensities:
        for strategy in ("FIFO", "SEPT", "FC"):
            means = [
                s.mean_response_time
                for s in grid.per_seed_summaries(10, intensity, strategy)
            ]
            assert max(means) < 3.0 * min(means), (intensity, strategy, means)
