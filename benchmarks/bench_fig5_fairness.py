"""Bench: regenerate Fig. 5 (Fair-Choice fairness under a skewed mix).

Expected shape: FC's stretch for the rare, long dna-visualisation is
lower than SEPT's (paper: avg 5.3 -> 2.1, median 5.2 -> 1.6), while the
frequent, short graph-bfs pays a little (paper: avg 22.2 -> 25.8).
"""

from repro.experiments.fig5_fairness import run_fig5


def test_fig5_fairness(run_once, full_protocol):
    seeds = (1, 2, 3, 4, 5) if full_protocol else (1, 2, 3)
    result = run_once(run_fig5, seeds=seeds)
    print()
    print(result.render())

    # FC treats the rare long function better than SEPT does (the paper's
    # fairness claim; note FIFO's dna *stretch* is naturally low because a
    # long wait divided by an 8.5 s reference is small — the paper makes no
    # FIFO claim here).
    assert result.rare_calls["FC"].mean < result.rare_calls["SEPT"].mean
    assert result.rare_calls["FC"].median < result.rare_calls["SEPT"].median
    # The gain is not free: graph-bfs does not improve under FC vs SEPT.
    assert result.short_calls["FC"].mean >= 0.8 * result.short_calls["SEPT"].mean
