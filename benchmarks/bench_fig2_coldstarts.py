"""Bench: regenerate Fig. 2 (cold starts vs. memory and intensity).

Expected shapes: baseline cold starts grow with intensity and barely
depend on memory; our FIFO's cold starts vanish from 32 GiB.
"""

from repro.experiments.fig2_coldstarts import run_fig2


def test_fig2_cold_start_sweep(run_once, full_protocol):
    if full_protocol:
        result = run_once(run_fig2)
    else:
        result = run_once(
            run_fig2,
            memories_mb=(4096, 16384, 32768, 131072),
            intensities=(30, 120),
        )
    print()
    print(result.render())

    # Baseline at intensity 120: high cold-start share at every memory size.
    for memory, colds in result.series("baseline", 120):
        assert colds > 0.5 * result.totals[120], (memory, colds)
    # Our FIFO at >= 32 GiB: no cold starts at any intensity.
    for intensity in result.totals:
        for memory, colds in result.series("FIFO", intensity):
            if memory >= 32768:
                assert colds == 0, (memory, intensity, colds)
    # Our FIFO at small memory: evictions resurface as cold starts.
    assert result.series("FIFO", 120)[0][1] > 0
