"""Bench: ablation studies for the design choices (extensions; DESIGN.md §7).

* estimator window — SEPT is robust to the window size once > 1;
* busy-limit — re-introducing oversubscription does not help;
* FC horizon and cold-start cost sensitivity (full protocol only).
"""

from repro.experiments.ablations import (
    ablate_busy_limit,
    ablate_cold_start_cost,
    ablate_estimator_window,
    ablate_fc_horizon,
)


def test_ablation_estimator_window(run_once):
    result = run_once(ablate_estimator_window)
    print()
    print(result.render())
    means = {row[0]: row[1] for row in result.rows}
    # Window 10 (the paper's choice) should not be much worse than any
    # other setting — the estimator saturates quickly, as [18] reports.
    assert means[10] < 2.0 * min(means.values())


def test_ablation_busy_limit(run_once):
    result = run_once(ablate_busy_limit)
    print()
    print(result.render())
    means = {row[0]: row[1] for row in result.rows}
    # The paper's choice (busy = cores, factor 1.0) is at least competitive
    # with oversubscribed settings.
    assert means[1.0] < 1.5 * min(means.values())


def test_ablation_fc_horizon(run_once, full_protocol):
    result = run_once(
        ablate_fc_horizon,
        horizons=(15.0, 60.0) if not full_protocol else (5.0, 15.0, 60.0, 300.0),
    )
    print()
    print(result.render())
    assert len(result.rows) >= 2


def test_ablation_cold_start_cost(run_once, full_protocol):
    result = run_once(
        ablate_cold_start_cost,
        create_ops=(0.1, 0.5) if not full_protocol else (0.1, 0.25, 0.5, 1.0),
    )
    print()
    print(result.render())
    means = [row[1] for row in result.rows]
    # Costlier creations hurt the baseline monotonically.
    assert means == sorted(means)
