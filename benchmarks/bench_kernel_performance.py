"""Micro-benchmarks of the simulation substrate itself.

Not a paper artifact: these track the DES kernel's raw performance so
that regressions in the hot paths (event calendar, processor-sharing
rebalance, priority queue) show up before they slow every experiment.
"""

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.scheduling.queue import StablePriorityQueue
from repro.sim import Environment, SharedCPU


def test_kernel_event_throughput(benchmark):
    """Chained timeout events: the kernel's minimal event cycle."""

    def run_chain():
        env = Environment()

        def proc(env):
            for _ in range(20_000):
                yield env.timeout(0.001)

        env.process(proc(env))
        env.run()
        return env.now

    result = benchmark(run_chain)
    assert result > 0


def test_processor_sharing_rebalance(benchmark):
    """Churn on a shared CPU bank: arrivals/departures force rebalances."""

    def run_bank():
        env = Environment()
        cpu = SharedCPU(env, cores=8)

        def submit(env, start, work):
            yield env.timeout(start)
            task = cpu.execute(work)
            yield task.event

        rng = np.random.default_rng(0)
        for start, work in zip(rng.uniform(0, 50, 2000), rng.uniform(0.01, 2.0, 2000)):
            env.process(submit(env, float(start), float(work)))
        env.run()
        return cpu.delivered_work

    delivered = benchmark(run_bank)
    assert delivered > 0


def test_processor_sharing_oversubscription(benchmark):
    """Sustained heavy oversubscription: hundreds of mixed-weight tasks
    water-filling one bank with an efficiency penalty (the OpenWhisk
    baseline regime, paper Sect. IV-A)."""

    from repro.sim import linear_overhead_efficiency

    def run_bank():
        env = Environment()
        cpu = SharedCPU(env, cores=8, efficiency=linear_overhead_efficiency(0.5))

        def submit(env, start, work, weight):
            yield env.timeout(start)
            task = cpu.execute(work, weight=weight, max_rate=1.0)
            yield task.event

        rng = np.random.default_rng(2)
        weights = (0.5, 1.0, 2.0)
        for i, (start, work) in enumerate(
            zip(rng.uniform(0, 5, 800), rng.uniform(0.5, 4.0, 800))
        ):
            env.process(submit(env, float(start), float(work), weights[i % 3]))
        env.run()
        return cpu.delivered_work

    delivered = benchmark(run_bank)
    assert delivered > 0


def test_priority_queue_throughput(benchmark):
    """Push/pop cycles on the invoker's stable priority queue."""
    rng = np.random.default_rng(1)
    priorities = rng.uniform(0, 100, 50_000)

    def churn():
        queue = StablePriorityQueue()
        for priority in priorities:
            queue.push(float(priority), None)
        while queue:
            queue.pop()

    benchmark(churn)


def test_full_experiment_wall_time(benchmark):
    """End-to-end cost of one loaded single-node experiment (the unit of
    work every grid cell pays)."""

    def one_cell():
        cfg = ExperimentConfig(cores=10, intensity=60, policy="FC", seed=1)
        return run_experiment(cfg)

    result = benchmark(one_cell)
    assert len(result.records) == 660
