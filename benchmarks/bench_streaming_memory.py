"""Peak-memory benchmark of the metrics pipeline: retained vs streaming.

Not a pytest-benchmark artifact: this is a standalone script (run it with
``python benchmarks/bench_streaming_memory.py``) because each case must
run in its **own subprocess** — ``ru_maxrss`` is a process-lifetime
high-water mark, so two cases in one process would contaminate each
other.  The committed result pair:

* ``BENCH_streaming_before.json`` — ``--mode retained``: the historical
  pipeline (full ``CallRecord`` retention), memory O(invocations);
* ``BENCH_streaming_after.json`` — ``--mode streaming``
  (``retain_records=False``): the lazy-arrival + accumulator pipeline,
  memory bounded by workload *concurrency*, including the ten-million
  invocation replay under 1 GB.

The workload is a synthetic minute-bucketed trace replayed through the
``replay`` scenario: four trace functions that FNV-hash onto the
catalog's sub-10ms functions, 60k invocations per simulated minute
(~1000/s), on a 16-core FC node with the ``system_cpu_coeff_s``
contention ablation zeroed — the node then sustains the rate with a
bounded queue, so what the benchmark measures is the *metrics pipeline*,
not a backlog.

Usage::

    python benchmarks/bench_streaming_memory.py \
        --mode streaming --sizes 200000 1000000 10000000 \
        --out benchmarks/BENCH_streaming_after.json
"""

import argparse
import json
import os
import resource
import subprocess
import sys
import tempfile
import time
import tracemalloc
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Trace function names chosen to FNV-hash onto the catalog's four
#: fastest functions (dynamic-html, graph-bfs, graph-pagerank, graph-mst;
#: medians 2-9 ms) — see repro.workload.replay._fnv1a.
FAST_FUNCS = ("f2", "f4", "f7", "f9")

#: Invocations per simulated trace minute (~1000/s).
PER_MINUTE = 60_000


def write_bench_trace(path, invocations):
    """A minute-sorted trace totalling *invocations* calls."""
    from repro.workload.replay import TraceRow, write_trace_csv

    rows = []
    remaining = invocations
    minute = 0
    while remaining > 0:
        in_minute = min(PER_MINUTE, remaining)
        share = in_minute // len(FAST_FUNCS)
        for i, func in enumerate(FAST_FUNCS):
            count = share if i else in_minute - share * (len(FAST_FUNCS) - 1)
            if count:
                rows.append(TraceRow("bench", func, minute, count))
        remaining -= in_minute
        minute += 1
    write_trace_csv(path, rows)


def run_case(mode, invocations, trace_allocs=False):
    """One measured run; returns the measurement dict (child process).

    ``trace_allocs`` additionally runs under ``tracemalloc`` — precise
    Python-level peak, but ~4-5x slower, so it is opt-in and the slow
    regression test (not the committed headline numbers) uses it.
    """
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import run_experiment

    with tempfile.TemporaryDirectory() as tmp:
        trace = os.path.join(tmp, "bench_trace.csv")
        write_bench_trace(trace, invocations)
        config = ExperimentConfig(
            cores=16,
            intensity=1,
            policy="FC",
            memory_mb=64 * 1024,
            scenario="replay",
            scenario_params={"path": trace},
            node_overrides=(("system_cpu_coeff_s", 0.0),),
            retain_records=(mode == "retained"),
        )
        traced_peak = None
        if trace_allocs:
            tracemalloc.start()
        start = time.perf_counter()
        result = run_experiment(config)
        wall_s = time.perf_counter() - start
        if trace_allocs:
            _, traced_peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()

    summary = result.streaming_summary()
    assert summary.n_calls == invocations, (summary.n_calls, invocations)
    peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return {
        "mode": mode,
        "invocations": invocations,
        "peak_rss_mb": round(peak_rss_kb / 1024.0, 1),
        "tracemalloc_peak_mb": (
            None if traced_peak is None else round(traced_peak / 1e6, 1)
        ),
        "wall_s": round(wall_s, 1),
        "invocations_per_s": round(invocations / wall_s),
        "mean_response_time_s": round(summary.mean_response_time, 4),
        "p99_response_time_s": round(summary.response_percentile(99), 4),
        "makespan_s": round(summary.max_completion_time, 1),
        "cold_starts": summary.cold_starts,
    }


def run_case_isolated(mode, invocations, trace_allocs=False):
    """Run one case in a fresh interpreter so ru_maxrss is per-case."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    cmd = [sys.executable, os.path.abspath(__file__), "--child", mode, str(invocations)]
    if trace_allocs:
        cmd.append("--tracemalloc")
    out = subprocess.run(
        cmd, check=True, capture_output=True, text=True, env=env, cwd=REPO_ROOT
    )
    return json.loads(out.stdout)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mode", choices=("retained", "streaming"), default="streaming")
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[200_000, 1_000_000],
        metavar="N", help="invocation counts, one isolated case each",
    )
    parser.add_argument("--out", default=None, help="write JSON here (default: stdout)")
    parser.add_argument(
        "--tracemalloc", action="store_true",
        help="also measure the Python-level allocation peak (~4-5x slower)",
    )
    parser.add_argument(
        "--child", nargs=2, metavar=("MODE", "N"), default=None,
        help=argparse.SUPPRESS,  # internal: run one case in-process
    )
    args = parser.parse_args(argv)

    if args.child is not None:
        mode, n = args.child[0], int(args.child[1])
        json.dump(run_case(mode, n, trace_allocs=args.tracemalloc), sys.stdout)
        return 0

    cases = []
    for n in args.sizes:
        sys.stderr.write(f"[bench] {args.mode} n={n:,} ...\n")
        case = run_case_isolated(args.mode, n, trace_allocs=args.tracemalloc)
        sys.stderr.write(
            f"[bench]   peak_rss={case['peak_rss_mb']}MB wall={case['wall_s']}s\n"
        )
        cases.append(case)

    payload = {
        "benchmark": "streaming_memory",
        "mode": args.mode,
        "workload": (
            f"replay scenario, {PER_MINUTE} invocations/min onto fast "
            f"catalog functions, 16-core FC node, system_cpu_coeff_s=0"
        ),
        "python": sys.version.split()[0],
        "cases": cases,
    }
    text = json.dumps(payload, indent=2) + "\n"
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        sys.stderr.write(f"[bench] wrote {args.out}\n")
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
