"""Bench: regenerate Fig. 4 (stretch boxes, same sub-grid as Fig. 3).

Expected shape: the SEPT/FC stretch boxes sit 1-2 orders of magnitude
below FIFO's; the baseline's average stretch is the largest at 20 cores.
"""

from repro.experiments.artifacts import fig4_from_grid
from repro.experiments.grid import GridSpec, run_grid


def test_fig4_stretch_boxes(run_once, full_protocol, engine_opts):
    spec = GridSpec(
        cores=(10, 20),
        intensities=(30, 40, 60),
        strategies=("baseline", "FIFO", "SEPT", "EECT", "RECT", "FC"),
        seeds=(1, 2, 3, 4, 5) if full_protocol else (1,),
    )
    grid = run_once(run_grid, spec, **engine_opts)
    figure = fig4_from_grid(grid)
    print()
    print(figure.render())

    for cores in (10, 20):
        for intensity in (40, 60):
            fifo = figure.boxes[(cores, intensity, "FIFO")]
            sept = figure.boxes[(cores, intensity, "SEPT")]
            fc = figure.boxes[(cores, intensity, "FC")]
            assert sept.mean < 0.5 * fifo.mean, (cores, intensity)
            assert fc.mean < 0.5 * fifo.mean, (cores, intensity)
    for intensity in (30, 40, 60):
        base = figure.boxes[(20, intensity, "baseline")]
        fifo = figure.boxes[(20, intensity, "FIFO")]
        assert base.mean > fifo.mean, intensity
