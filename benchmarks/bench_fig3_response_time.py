"""Bench: regenerate Fig. 3 (response-time boxes, {10,20}c x {30,40,60}v).

Expected shape per panel: baseline and FIFO boxes sit far above SEPT/FC;
SEPT/FC medians stay near idle response times.
"""

from repro.experiments.artifacts import fig3_from_grid
from repro.experiments.grid import GridSpec, run_grid


def test_fig3_response_time_boxes(run_once, full_protocol, engine_opts):
    spec = GridSpec(
        cores=(10, 20),
        intensities=(30, 40, 60),
        strategies=("baseline", "FIFO", "SEPT", "EECT", "RECT", "FC"),
        seeds=(1, 2, 3, 4, 5) if full_protocol else (1,),
    )
    grid = run_once(run_grid, spec, **engine_opts)
    figure = fig3_from_grid(grid)
    print()
    print(figure.render())

    for cores in (10, 20):
        for intensity in (40, 60):
            fifo = figure.boxes[(cores, intensity, "FIFO")]
            sept = figure.boxes[(cores, intensity, "SEPT")]
            fc = figure.boxes[(cores, intensity, "FC")]
            assert sept.median < fifo.median, (cores, intensity)
            assert fc.median < fifo.median, (cores, intensity)
    # Baseline is the worst box at 20 cores (paper Sect. VII-C).
    for intensity in (30, 40, 60):
        base = figure.boxes[(20, intensity, "baseline")]
        fifo = figure.boxes[(20, intensity, "FIFO")]
        assert base.mean > fifo.mean, intensity
