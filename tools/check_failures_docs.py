#!/usr/bin/env python
"""Fail when docs/FAILURES.md is out of sync with FailureSpec.

Checks, in both directions:

* every field of ``repro.failures.FailureSpec`` has a ``## `name` ...``
  catalog heading in docs/FAILURES.md;
* every documented field heading names a real ``FailureSpec`` field
  (no stale catalog entries).

Run from the repository root (CI's docs job does)::

    python tools/check_failures_docs.py
"""

from __future__ import annotations

import dataclasses
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = REPO_ROOT / "docs" / "FAILURES.md"

#: Catalog entries look like: ## `name` — description
HEADING = re.compile(r"^##\s+`(?P<name>[^`]+)`", re.MULTILINE)


def main() -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.failures import FailureSpec

    registered = {field.name for field in dataclasses.fields(FailureSpec)}
    if not DOCS.exists():
        print(f"error: {DOCS} does not exist", file=sys.stderr)
        return 1
    documented = set(HEADING.findall(DOCS.read_text(encoding="utf-8")))

    undocumented = sorted(registered - documented)
    stale = sorted(documented - registered)
    if undocumented:
        print(
            "error: FailureSpec field(s) missing from docs/FAILURES.md: "
            + ", ".join(undocumented),
            file=sys.stderr,
        )
    if stale:
        print(
            "error: docs/FAILURES.md documents unknown field(s): "
            + ", ".join(stale),
            file=sys.stderr,
        )
    if undocumented or stale:
        return 1
    print(f"docs/FAILURES.md covers all {len(registered)} FailureSpec fields")
    return 0


if __name__ == "__main__":
    sys.exit(main())
