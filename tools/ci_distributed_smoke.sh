#!/usr/bin/env bash
# Distributed-executor smoke (.github/workflows/ci.yml, distributed-smoke):
# three faas-sched worker processes share one cache root with a 24-cell
# queue-executor sweep; one worker is SIGKILLed mid-sweep.  The sweep must
# still complete (the dead worker's lease expires and its cell is stolen),
# a re-run must be served 100% from cache, and cache verify must be clean.
set -euo pipefail

cache="${1:-.cache-distributed}"
rm -rf "${cache}"
mkdir -p "${cache}"

# Short TTL so the killed worker's orphaned lease is stolen within
# seconds instead of the default 60.
export REPRO_LEASE_TTL=5

grid_args=(
  --cores 4 --intensities 10 20 30
  --strategies FIFO SEPT
  --seeds 1 2 3 4
  --cache-dir "${cache}" --no-progress
)

pids=()
for i in 1 2 3; do
  faas-sched worker --cache-dir "${cache}" \
    --idle-timeout 10 --poll 0.1 --no-progress &
  pids+=($!)
done
echo "workers: ${pids[*]}"

# SIGKILL the second worker mid-sweep — no cleanup, no lease release.
(
  sleep 2
  echo "killing worker ${pids[1]} (SIGKILL)"
  kill -9 "${pids[1]}" 2>/dev/null || true
) &
killer=$!

faas-sched grid --executor queue "${grid_args[@]}" | tee distributed_sweep.out
grep -q "engine: 24 runs" distributed_sweep.out
grep -q "executor=queue" distributed_sweep.out

wait "${killer}" 2>/dev/null || true
for pid in "${pids[@]}"; do
  wait "${pid}" 2>/dev/null || true
done

# Resume semantics: the re-run computes nothing.
faas-sched grid --executor queue "${grid_args[@]}" | tee distributed_rerun.out
grep -q "engine: 24 runs (0 computed, 24 from cache" distributed_rerun.out

# No entry may be corrupt or stale despite the mid-sweep SIGKILL.
faas-sched cache verify --cache-dir "${cache}" | tee distributed_verify.out
grep -q "corrupt: 0  stale: 0" distributed_verify.out

faas-sched cache stats --cache-dir "${cache}"

if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
  {
    echo "### Distributed smoke"
    echo '```'
    grep "^engine:" distributed_sweep.out distributed_rerun.out
    grep "^scanned:" distributed_verify.out
    echo '```'
  } >> "${GITHUB_STEP_SUMMARY}"
fi
echo "distributed smoke OK"
