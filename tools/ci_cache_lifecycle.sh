#!/usr/bin/env bash
# Cache-lifecycle smoke (.github/workflows/ci.yml, distributed-smoke job):
# builds two disjoint cache roots, merges one into the other, asserts the
# merged sweep re-runs 100% from cache, then garbage-collects down to a
# size budget and asserts exactly the oldest entry was evicted.
set -euo pipefail

a=".cache-lifecycle-a"
b=".cache-lifecycle-b"
rm -rf "${a}" "${b}"

# Two disjoint halves of one 4-cell sweep.
faas-sched grid --cores 4 --intensities 10 --strategies FIFO \
  --seeds 1 2 --cache-dir "${a}" --no-progress
faas-sched grid --cores 4 --intensities 10 --strategies SEPT \
  --seeds 1 2 --cache-dir "${b}" --no-progress

faas-sched cache stats --cache-dir "${a}" | tee stats_a.out
grep -q "cache: 2 entries" stats_a.out
faas-sched cache stats --cache-dir "${b}" | tee stats_b.out
grep -q "cache: 2 entries" stats_b.out

# Merge b's entries into a; the union serves the combined sweep entirely
# from cache.
faas-sched cache merge "${b}" "${a}" | tee merge.out
grep -q "merge: 2 copied" merge.out
faas-sched grid --cores 4 --intensities 10 --strategies FIFO SEPT \
  --seeds 1 2 --cache-dir "${a}" --no-progress | tee merged_rerun.out
grep -q "0 computed, 4 from cache" merged_rerun.out

# Merging again is a no-op: every entry is already present, byte-identical.
faas-sched cache merge "${b}" "${a}" | tee merge_again.out
grep -q "merge: 0 copied" merge_again.out
grep -q "2 already present" merge_again.out

# GC to (total - 1) bytes: exactly the single oldest entry must go.
total=$(find "${a}" -mindepth 2 -name '*.json' -printf '%s\n' \
  | awk '{s+=$1} END {print s}')
oldest=$(find "${a}" -mindepth 2 -name '*.json' -printf '%T@ %p\n' \
  | sort -n | head -1 | cut -d' ' -f2)
echo "total=${total} bytes, oldest=${oldest}"
faas-sched cache gc --cache-dir "${a}" --size-budget "$((total - 1))" \
  --dry-run | tee gc_dry.out
grep -q "would evict 1 of 4" gc_dry.out
test -e "${oldest}"  # dry-run deleted nothing
faas-sched cache gc --cache-dir "${a}" --size-budget "$((total - 1))" \
  | tee gc.out
grep -q "evicted 1 of 4" gc.out
grep -q "1 budget" gc.out
test ! -e "${oldest}"

# The re-run recomputes exactly the evicted cell.
faas-sched grid --cores 4 --intensities 10 --strategies FIFO SEPT \
  --seeds 1 2 --cache-dir "${a}" --no-progress | tee post_gc_rerun.out
grep -q "1 computed, 3 from cache" post_gc_rerun.out

if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
  {
    echo "### Cache lifecycle smoke"
    echo '```'
    cat merge.out gc.out
    grep "^engine:" merged_rerun.out post_gc_rerun.out
    echo '```'
  } >> "${GITHUB_STEP_SUMMARY}"
fi
echo "cache lifecycle OK"
