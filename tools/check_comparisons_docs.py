#!/usr/bin/env python
"""Fail when docs/COMPARISONS.md is out of sync with COMPARE_METRICS.

Checks, in both directions:

* every comparable metric in ``repro.metrics.compare.COMPARE_METRICS``
  has a ``## `name` ...`` catalog heading in docs/COMPARISONS.md;
* every documented metric heading names a registered comparison metric
  (no stale catalog entries).

Run from the repository root (CI's docs job does)::

    python tools/check_comparisons_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = REPO_ROOT / "docs" / "COMPARISONS.md"

#: Catalog entries look like: ## `name` — description
HEADING = re.compile(r"^##\s+`(?P<name>[^`]+)`", re.MULTILINE)


def main() -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.metrics.compare import COMPARE_METRICS

    registered = set(COMPARE_METRICS)
    if not DOCS.exists():
        print(f"error: {DOCS} does not exist", file=sys.stderr)
        return 1
    documented = set(HEADING.findall(DOCS.read_text(encoding="utf-8")))

    undocumented = sorted(registered - documented)
    stale = sorted(documented - registered)
    if undocumented:
        print(
            "error: comparison metric(s) missing from docs/COMPARISONS.md: "
            + ", ".join(undocumented),
            file=sys.stderr,
        )
    if stale:
        print(
            "error: docs/COMPARISONS.md documents unknown metric(s): "
            + ", ".join(stale),
            file=sys.stderr,
        )
    if undocumented or stale:
        return 1
    print(f"docs/COMPARISONS.md covers all {len(registered)} comparison metrics")
    return 0


if __name__ == "__main__":
    sys.exit(main())
