"""Golden metric fingerprints for the simulation kernel.

The DES kernel is performance-critical and is rewritten from time to time
(see docs/PERFORMANCE.md).  Every rewrite must keep the *metrics output*
bit-identical: the same configs must produce the same call records, node
stats, and summary statistics down to the last IEEE-754 ulp.  This module
pins that property:

* :func:`fingerprint_cases` enumerates one representative config per
  registered workload scenario, crossed with both node models (the
  modified invoker and the stock-OpenWhisk baseline — the latter is the
  oversubscription stress for the processor-sharing CPU bank).
* :func:`compute_fingerprints` runs each case and hashes the exact
  serialized output (floats serialize via ``repr``, which round-trips
  doubles exactly).
* Run as a script to (re)capture ``tests/data/golden_kernel_fingerprints
  .json``; ``tests/experiments/test_golden_fingerprints.py`` asserts the
  current kernel still matches, serially and through the parallel engine.

Usage::

    PYTHONPATH=src python tools/golden_fingerprints.py            # check
    PYTHONPATH=src python tools/golden_fingerprints.py --write    # capture

Recapture is only legitimate when the *simulated system* intentionally
changed (new scenario defaults, node-model changes) — never to paper over
an unintended kernel divergence.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import tempfile
from pathlib import Path
from typing import Dict, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN_PATH = REPO_ROOT / "tests" / "data" / "golden_kernel_fingerprints.json"

#: Fixed replay trace content (the ``replay`` scenario needs a CSV file;
#: the file lives in a temp dir but its content — and therefore the
#: workload — is pinned here).
REPLAY_ROWS: Tuple[Tuple[str, str, int, int], ...] = (
    ("app-a", "f1", 0, 14),
    ("app-a", "f2", 0, 9),
    ("app-b", "f1", 1, 11),
    ("app-b", "f3", 2, 17),
)

#: Policies crossed with every scenario: one modified-invoker policy
#: (bounded concurrency, tasks pinned at one core) and the baseline
#: (memory-bounded concurrency -> CPU oversubscription + water-filling).
POLICIES: Tuple[str, ...] = ("FC", "baseline")


def _replay_params(tmpdir: Path) -> Dict[str, object]:
    from repro.workload.replay import TraceRow, write_trace_csv

    csv_path = write_trace_csv(
        tmpdir / "golden_trace.csv", [TraceRow(*row) for row in REPLAY_ROWS]
    )
    return {"path": str(csv_path), "minute_s": 10.0}


def fingerprint_cases(tmpdir: Path) -> List[Tuple[str, "object"]]:
    """``(label, ExperimentConfig)`` pairs covering every registered
    scenario under both node models."""
    from repro.experiments.config import ExperimentConfig
    from repro.workload.registry import scenario_names

    cases = []
    for scenario in scenario_names():
        params = _replay_params(tmpdir) if scenario == "replay" else {}
        for policy in POLICIES:
            label = f"{scenario}:{policy}"
            cases.append(
                (
                    label,
                    ExperimentConfig(
                        cores=4,
                        intensity=10,
                        policy=policy,
                        seed=1,
                        scenario=scenario,
                        scenario_params=params,
                    ),
                )
            )
    # Heavy oversubscription stress: tens of concurrent mixed-weight tasks
    # water-filling one CPU bank for thousands of membership changes —
    # the regime the incremental kernel optimizes, pinned exactly.
    cases.append(
        (
            "uniform:baseline:heavy",
            ExperimentConfig(cores=8, intensity=200, policy="baseline", seed=1),
        )
    )
    cases.append(
        (
            "skewed:FC:heavy",
            ExperimentConfig(cores=8, intensity=200, policy="FC", seed=1, scenario="skewed"),
        )
    )
    return cases


def result_digest(result) -> str:
    """SHA-256 over the exact serialized metrics output of one run.

    Covers the full call-record list (every timestamp field), per-node
    diagnostics, and the summary statistics.  ``json.dumps`` renders
    floats with ``repr`` — exact for IEEE-754 doubles — so two digests
    are equal iff the outputs are bit-identical.

    ``cpu_utilization`` is excluded from the digest and pinned separately
    (:func:`result_cpu_utilizations`, tolerance-compared): it integrates
    ``delivered_work``, whose floating-point sum order in the historical
    kernel followed Python *set* iteration — i.e. object memory addresses
    — so its last ulps were never a deterministic function of the
    simulated system in the first place.  Everything the paper reports
    (per-call timestamps, response times, stretches, percentiles) is
    digest-exact.
    """
    from repro.metrics.serialize import records_to_dicts

    summary = result.summary()
    payload = {
        "records": records_to_dicts(result.records),
        "node_stats": [
            {k: v for k, v in stats.items() if k != "cpu_utilization"}
            for stats in result.node_stats
        ],
        "summary": {
            "n_calls": summary.n_calls,
            "mean_response_time": summary.mean_response_time,
            "response_time_percentiles": {
                str(q): v for q, v in summary.response_time_percentiles.items()
            },
            "mean_stretch": summary.mean_stretch,
            "stretch_percentiles": {
                str(q): v for q, v in summary.stretch_percentiles.items()
            },
            "max_completion_time": summary.max_completion_time,
            "cold_starts": summary.cold_starts,
        },
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def result_cpu_utilizations(result) -> List[float]:
    """Per-node ``cpu_utilization`` values (tolerance-pinned, see
    :func:`result_digest`)."""
    return [stats["cpu_utilization"] for stats in result.node_stats]


#: Maximum relative deviation tolerated on ``cpu_utilization``.  Six
#: orders of magnitude tighter than any behavioural change, six orders
#: looser than address-dependent summation noise.
CPU_UTILIZATION_RTOL = 1e-9


def compute_fingerprints(tmpdir: Path, jobs: int = 1) -> Dict[str, Dict[str, object]]:
    """Run every fingerprint case; ``label -> {digest, cpu_utilization}``."""
    from repro.experiments.parallel import run_configs

    cases = fingerprint_cases(tmpdir)
    results = run_configs([cfg for _, cfg in cases], jobs=jobs)
    return {
        label: {
            "digest": result_digest(res),
            "cpu_utilization": result_cpu_utilizations(res),
        }
        for (label, _), res in zip(cases, results)
    }


def compare_fingerprints(
    golden: Dict[str, Dict[str, object]], current: Dict[str, Dict[str, object]]
) -> List[str]:
    """Human-readable mismatch descriptions (empty when everything is
    within contract)."""
    problems = []
    for label in sorted(set(golden) | set(current)):
        want, got = golden.get(label), current.get(label)
        if want is None or got is None:
            problems.append(f"{label}: present only in {'current' if want is None else 'golden'}")
            continue
        if want["digest"] != got["digest"]:
            problems.append(
                f"{label}: digest mismatch golden={want['digest'][:16]}… "
                f"current={got['digest'][:16]}…"
            )
        for i, (u_want, u_got) in enumerate(
            zip(want["cpu_utilization"], got["cpu_utilization"])
        ):
            scale = max(abs(u_want), abs(u_got), 1e-300)
            if abs(u_want - u_got) / scale > CPU_UTILIZATION_RTOL:
                problems.append(
                    f"{label}: cpu_utilization[{i}] golden={u_want!r} current={u_got!r}"
                )
    return problems


def load_golden(path: Path = GOLDEN_PATH) -> Dict[str, Dict[str, object]]:
    return json.loads(path.read_text())["fingerprints"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write", action="store_true", help="(re)capture the golden file"
    )
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as tmp:
        fingerprints = compute_fingerprints(Path(tmp), jobs=args.jobs)

    if args.write:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(
                {
                    "comment": "Exact-output fingerprints of the DES kernel; "
                    "see tools/golden_fingerprints.py.",
                    "fingerprints": fingerprints,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        print(f"wrote {len(fingerprints)} fingerprints to {GOLDEN_PATH}")
        return 0

    problems = compare_fingerprints(load_golden(), fingerprints)
    if problems:
        for line in problems:
            print(f"MISMATCH {line}")
        return 1
    print(f"all {len(fingerprints)} fingerprints match")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    sys.exit(main())
