"""Compare two pytest-benchmark JSON files and flag regressions.

Usage::

    python tools/bench_compare.py BENCH_old.json BENCH_new.json
    python tools/bench_compare.py --threshold 0.10 old.json new.json

Reads the ``--benchmark-json`` output of two benchmark runs (e.g. the
committed ``benchmarks/BENCH_kernel_before.json`` /
``BENCH_kernel_after.json`` pair, or a CI run against the committed
baseline), matches benchmarks by name, and reports the speed ratio per
benchmark.  Exits non-zero when any shared benchmark slowed down by more
than ``--threshold`` (default 20%), so a CI job can surface kernel
performance regressions — run it ``continue-on-error`` if the signal
should stay advisory.

Comparison uses each benchmark's *minimum* observed time: the minimum is
the least noise-sensitive location statistic for a deterministic
workload (everything above it is scheduler/cache interference).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict


def load_benchmarks(path: Path) -> Dict[str, dict]:
    """``name -> stats`` for every benchmark in a pytest-benchmark JSON."""
    data = json.loads(path.read_text())
    benchmarks = data.get("benchmarks")
    if not isinstance(benchmarks, list):
        raise ValueError(f"{path}: not a pytest-benchmark JSON file")
    return {bench["name"]: bench["stats"] for bench in benchmarks}


def format_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.1f}us"


def compare(old: Dict[str, dict], new: Dict[str, dict], threshold: float):
    """Yield ``(name, old_min, new_min, ratio, regressed)`` rows for the
    shared benchmarks, slowest regression first."""
    rows = []
    for name in sorted(set(old) & set(new)):
        old_min = float(old[name]["min"])
        new_min = float(new[name]["min"])
        ratio = new_min / old_min if old_min > 0 else float("inf")
        rows.append((name, old_min, new_min, ratio, ratio > 1.0 + threshold))
    rows.sort(key=lambda row: -row[3])
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff two pytest-benchmark JSON files and flag regressions."
    )
    parser.add_argument("old", type=Path, help="baseline benchmark JSON")
    parser.add_argument("new", type=Path, help="candidate benchmark JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="max tolerated slowdown fraction before failing (default 0.20)",
    )
    args = parser.parse_args(argv)

    old = load_benchmarks(args.old)
    new = load_benchmarks(args.new)
    rows = compare(old, new, args.threshold)

    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))
    if not rows:
        print("no shared benchmarks between the two files")
        return 2

    width = max(len(name) for name, *_ in rows)
    regressions = 0
    for name, old_min, new_min, ratio, regressed in rows:
        if regressed:
            verdict = f"REGRESSION (+{(ratio - 1.0) * 100.0:.1f}%)"
            regressions += 1
        elif ratio < 1.0:
            verdict = f"{1.0 / ratio:.2f}x faster"
        else:
            verdict = f"+{(ratio - 1.0) * 100.0:.1f}% (within threshold)"
        print(
            f"{name:<{width}}  {format_seconds(old_min):>10} -> "
            f"{format_seconds(new_min):>10}  {verdict}"
        )
    for name in only_old:
        print(f"{name:<{width}}  removed (baseline only)")
    for name in only_new:
        print(f"{name:<{width}}  new (no baseline)")

    if regressions:
        print(
            f"\n{regressions} benchmark(s) regressed beyond "
            f"{args.threshold * 100:.0f}% tolerance"
        )
        return 1
    print("\nno regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
