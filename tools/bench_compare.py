"""Compare two pytest-benchmark JSON files and flag regressions.

Usage::

    python tools/bench_compare.py BENCH_old.json BENCH_new.json
    python tools/bench_compare.py --threshold 0.10 old.json new.json
    python tools/bench_compare.py --gate --alpha 0.01 old.json new.json

Reads the ``--benchmark-json`` output of two benchmark runs (e.g. the
committed ``benchmarks/BENCH_kernel_before.json`` /
``BENCH_kernel_after.json`` pair, or a CI run against the committed
baseline), matches benchmarks by name, and reports the comparison.  Exits
non-zero on a regression, so a CI job can surface kernel performance
regressions — run it ``continue-on-error`` if the signal should stay
advisory.

Two modes:

* **Legacy differ** (default): compares each benchmark's *minimum*
  observed time — the least noise-sensitive location statistic for a
  deterministic workload (everything above it is scheduler/cache
  interference) — and flags ratios beyond ``--threshold`` (default 20%).
  A benchmark with a zero/missing baseline timing renders as ``n/a``
  instead of an infinite percentage and never counts as a regression.

* **Significance gate** (``--gate``): feeds the per-round raw samples
  (``stats.data``) of both runs through
  :func:`repro.metrics.compare.compare_samples` — Mann-Whitney U per
  benchmark with Holm correction across all shared benchmarks, Cliff's
  delta effect sizes, and bootstrap CIs on the mean difference.  A
  benchmark regresses only when the corrected test is significant at
  ``--alpha`` *and* the candidate is slower; a >20% min-time blip backed
  by overlapping distributions no longer trips CI.  See
  docs/COMPARISONS.md.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.metrics.compare import ComparisonResult, compare_samples  # noqa: E402


def load_benchmarks(path: Path) -> Dict[str, dict]:
    """``name -> stats`` for every benchmark in a pytest-benchmark JSON."""
    data = json.loads(path.read_text())
    benchmarks = data.get("benchmarks")
    if not isinstance(benchmarks, list):
        raise ValueError(f"{path}: not a pytest-benchmark JSON file")
    return {bench["name"]: bench["stats"] for bench in benchmarks}


def format_seconds(value: Optional[float]) -> str:
    if value is None:
        return "n/a"
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.1f}us"


def _min_of(stats: dict) -> Optional[float]:
    """A benchmark's minimum time, or ``None`` when absent/unusable — a
    hand-edited or truncated JSON must degrade to "n/a", not crash or
    produce an infinite percentage."""
    value = stats.get("min")
    if not isinstance(value, (int, float)) or value <= 0:
        return None
    return float(value)


def compare(old: Dict[str, dict], new: Dict[str, dict], threshold: float):
    """Yield ``(name, old_min, new_min, ratio, regressed)`` rows for the
    shared benchmarks, slowest regression first.  ``ratio`` is ``None``
    (and ``regressed`` False) when either side has no usable timing."""
    rows: List[Tuple[str, Optional[float], Optional[float], Optional[float], bool]] = []
    for name in sorted(set(old) & set(new)):
        old_min = _min_of(old[name])
        new_min = _min_of(new[name])
        if old_min is None or new_min is None:
            rows.append((name, old_min, new_min, None, False))
            continue
        ratio = new_min / old_min
        rows.append((name, old_min, new_min, ratio, ratio > 1.0 + threshold))
    rows.sort(key=lambda row: -(row[3] if row[3] is not None else 0.0))
    return rows


def gate_comparison(
    old: Dict[str, dict],
    new: Dict[str, dict],
    *,
    alpha: float = 0.05,
    resamples: int = 2000,
) -> Tuple[Optional[ComparisonResult], List[str]]:
    """The significance-gate comparison over shared benchmarks carrying
    raw per-round samples, plus the names skipped for lacking them."""
    samples_old: Dict[str, List[float]] = {}
    samples_new: Dict[str, List[float]] = {}
    skipped: List[str] = []
    for name in sorted(set(old) & set(new)):
        data_old = old[name].get("data")
        data_new = new[name].get("data")
        if not data_old or not data_new:
            skipped.append(name)
            continue
        samples_old[name] = [float(v) for v in data_old]
        samples_new[name] = [float(v) for v in data_new]
    if not samples_old:
        return None, skipped
    return (
        compare_samples(
            samples_old,
            samples_new,
            label_a="baseline",
            label_b="candidate",
            alpha=alpha,
            resamples=resamples,
        ),
        skipped,
    )


def gate_regressions(comparison: ComparisonResult) -> List[str]:
    """Benchmarks where the candidate is *significantly slower* (Holm-
    corrected): ``diff = mean(baseline) - mean(candidate) < 0`` means the
    baseline was faster."""
    return [c.metric for c in comparison.significant() if c.diff < 0]


def run_gate(old: Dict[str, dict], new: Dict[str, dict], args) -> int:
    comparison, skipped = gate_comparison(
        old, new, alpha=args.alpha, resamples=args.resamples
    )
    if comparison is None:
        print(
            "no shared benchmark carries raw per-round samples "
            "(stats.data); rerun pytest-benchmark with --benchmark-json "
            "or drop --gate for the min-time differ"
        )
        return 2
    print(
        comparison.render(
            title=(
                f"Benchmark significance gate (baseline vs. candidate, "
                f"Mann-Whitney U over per-round samples, Holm-corrected "
                f"at α={args.alpha:g})"
            )
        )
    )
    for name in skipped:
        print(f"{name}: skipped (no raw samples in one of the files)")
    regressions = gate_regressions(comparison)
    improvements = [c.metric for c in comparison.significant() if c.diff > 0]
    if regressions:
        print(
            f"\n{len(regressions)} significant regression(s) at "
            f"α={args.alpha:g}: {', '.join(regressions)}"
        )
        return 1
    if improvements:
        print(f"\nsignificant improvement(s): {', '.join(improvements)}")
    print("no significant regressions")
    return 0


def run_differ(old: Dict[str, dict], new: Dict[str, dict], args) -> int:
    rows = compare(old, new, args.threshold)
    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))
    if not rows:
        print("no shared benchmarks between the two files")
        return 2

    width = max(len(name) for name, *_ in rows)
    regressions = 0
    for name, old_min, new_min, ratio, regressed in rows:
        if ratio is None:
            verdict = "n/a (no usable timing)"
        elif regressed:
            verdict = f"REGRESSION (+{(ratio - 1.0) * 100.0:.1f}%)"
            regressions += 1
        elif ratio < 1.0:
            verdict = f"{1.0 / ratio:.2f}x faster"
        else:
            verdict = f"+{(ratio - 1.0) * 100.0:.1f}% (within threshold)"
        print(
            f"{name:<{width}}  {format_seconds(old_min):>10} -> "
            f"{format_seconds(new_min):>10}  {verdict}"
        )
    for name in only_old:
        print(f"{name:<{width}}  removed (baseline only)")
    for name in only_new:
        print(f"{name:<{width}}  new (no baseline)")

    if regressions:
        print(
            f"\n{regressions} benchmark(s) regressed beyond "
            f"{args.threshold * 100:.0f}% tolerance"
        )
        return 1
    print("\nno regressions beyond tolerance")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff two pytest-benchmark JSON files and flag regressions."
    )
    parser.add_argument("old", type=Path, help="baseline benchmark JSON")
    parser.add_argument("new", type=Path, help="candidate benchmark JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="max tolerated slowdown fraction before failing (default 0.20)",
    )
    parser.add_argument(
        "--gate",
        action="store_true",
        help=(
            "significance-tested mode: Mann-Whitney U over each "
            "benchmark's raw per-round samples, Holm-corrected; only a "
            "statistically significant slowdown fails"
        ),
    )
    parser.add_argument(
        "--alpha",
        type=float,
        default=0.05,
        help="family-wise significance level for --gate (default 0.05)",
    )
    parser.add_argument(
        "--resamples",
        type=int,
        default=2000,
        help="bootstrap resamples per CI in --gate mode (default 2000)",
    )
    args = parser.parse_args(argv)

    old = load_benchmarks(args.old)
    new = load_benchmarks(args.new)
    if args.gate:
        return run_gate(old, new, args)
    return run_differ(old, new, args)


if __name__ == "__main__":
    sys.exit(main())
