#!/usr/bin/env python
"""Fail when docs/POLICIES.md is out of sync with the policy registry.

Checks, in both directions:

* every scheduling policy registered in ``repro.scheduling.registry`` has
  a ``## `name` ...`` heading in docs/POLICIES.md;
* every documented policy heading names a registered policy (no stale
  catalog entries; the pseudo-policy ``baseline`` is allowed).

Run from the repository root (CI's docs job does)::

    python tools/check_policies_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = REPO_ROOT / "docs" / "POLICIES.md"

#: Catalog entries look like: ## `name` — description
HEADING = re.compile(r"^##\s+`(?P<name>[^`]+)`", re.MULTILINE)

#: Documented but not in the registry by design: the stock invoker.
PSEUDO_POLICIES = {"baseline"}


def main() -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.scheduling.registry import policy_names

    registered = set(policy_names())
    if not DOCS.exists():
        print(f"error: {DOCS} does not exist", file=sys.stderr)
        return 1
    documented = set(HEADING.findall(DOCS.read_text(encoding="utf-8")))

    undocumented = sorted(registered - documented)
    stale = sorted(documented - registered - PSEUDO_POLICIES)
    if undocumented:
        print(
            "error: registered policy(ies) missing from docs/POLICIES.md: "
            + ", ".join(undocumented),
            file=sys.stderr,
        )
    if stale:
        print(
            "error: docs/POLICIES.md documents unregistered policy(ies): "
            + ", ".join(stale),
            file=sys.stderr,
        )
    if undocumented or stale:
        return 1
    print(f"docs/POLICIES.md covers all {len(registered)} registered policies")
    return 0


if __name__ == "__main__":
    sys.exit(main())
