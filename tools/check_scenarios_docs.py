#!/usr/bin/env python
"""Fail when docs/SCENARIOS.md is out of sync with the scenario registry.

Checks, in both directions:

* every scenario registered in ``repro.workload.registry`` has a
  ``## `name` ...`` heading in docs/SCENARIOS.md;
* every documented scenario heading names a registered scenario (no stale
  catalog entries).

Run from the repository root (CI's docs job does)::

    python tools/check_scenarios_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = REPO_ROOT / "docs" / "SCENARIOS.md"

#: Catalog entries look like: ## `name` — description
HEADING = re.compile(r"^##\s+`(?P<name>[^`]+)`", re.MULTILINE)


def main() -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.workload.registry import scenario_names

    registered = set(scenario_names())
    if not DOCS.exists():
        print(f"error: {DOCS} does not exist", file=sys.stderr)
        return 1
    documented = set(HEADING.findall(DOCS.read_text(encoding="utf-8")))

    undocumented = sorted(registered - documented)
    stale = sorted(documented - registered)
    if undocumented:
        print(
            "error: registered scenario(s) missing from docs/SCENARIOS.md: "
            + ", ".join(undocumented),
            file=sys.stderr,
        )
    if stale:
        print(
            "error: docs/SCENARIOS.md documents unregistered scenario(s): "
            + ", ".join(stale),
            file=sys.stderr,
        )
    if undocumented or stale:
        return 1
    print(f"docs/SCENARIOS.md covers all {len(registered)} registered scenarios")
    return 0


if __name__ == "__main__":
    sys.exit(main())
