#!/usr/bin/env bash
# One named smoke scenario of the CI smoke matrix (.github/workflows/ci.yml).
#
# Usage: tools/ci_smoke.sh <engine|scenario|policy|cluster|compare|chaos|adaptive>
#
# Each smoke is self-contained (its own cache root), so the matrix can run
# them on independent runners.  When $GITHUB_STEP_SUMMARY is set, the wall
# time of the smoke is appended to the job summary.
set -euo pipefail

smoke="${1:?usage: ci_smoke.sh <engine|scenario|policy|cluster|compare|chaos|adaptive>}"
cache=".cache-smoke-${smoke}"
rm -rf "${cache}"
started=$(date +%s)

case "${smoke}" in
  engine)
    # Parallel engine through the grid CLI, cached re-run.
    faas-sched grid --jobs 2 --cores 4 --intensities 10 \
      --strategies FIFO SEPT --seeds 1 --cache-dir "${cache}" --no-progress
    faas-sched grid --jobs 2 --cores 4 --intensities 10 \
      --strategies FIFO SEPT --seeds 1 --cache-dir "${cache}" --no-progress \
      | tee engine_smoke.out
    grep -q "0 computed, 2 from cache" engine_smoke.out
    ;;
  scenario)
    # Non-default scenario through the engine.
    faas-sched scenarios
    faas-sched grid --jobs 2 --cores 4 --intensities 10 \
      --strategies FIFO --seeds 1 --scenario poisson \
      --scenario-param zipf_exponent=1.1 --cache-dir "${cache}" --no-progress
    ;;
  policy)
    # Parameterized policy through the cache, hit asserted.
    faas-sched policies
    faas-sched grid --jobs 2 --cores 4 --intensities 10 \
      --strategies SEPT SEPT-EMA --seeds 1 \
      --policy-param window=3 \
      --cache-dir "${cache}" --no-progress
    faas-sched grid --jobs 2 --cores 4 --intensities 10 \
      --strategies SEPT SEPT-EMA --seeds 1 \
      --policy-param window=3 \
      --cache-dir "${cache}" --no-progress | tee policy_smoke.out
    grep -q "0 computed, 2 from cache" policy_smoke.out
    ;;
  cluster)
    # Cluster dimension through the engine, cached re-run.
    faas-sched grid --jobs 2 --cores 4 --intensities 10 \
      --strategies FC --seeds 1 --nodes 3 --balancer power-of-d \
      --cache-dir "${cache}" --no-progress
    faas-sched grid --jobs 2 --cores 4 --intensities 10 \
      --strategies FC --seeds 1 --nodes 3 --balancer power-of-d \
      --cache-dir "${cache}" --no-progress | tee cluster_smoke.out
    grep -q "0 computed, 1 from cache" cluster_smoke.out
    faas-sched simulate --cores 4 --intensity 10 --policy FC \
      --nodes 3 --balancer locality
    ;;
  compare)
    # The compare verb, retained and streaming modes over a shared cache.
    faas-sched compare FC SEPT --cores 4 --intensity 10 \
      --num-seeds 5 --resamples 300 --jobs 2 \
      --cache-dir "${cache}" --no-progress
    faas-sched compare FC SEPT --cores 4 --intensity 10 \
      --num-seeds 5 --resamples 300 --jobs 2 --streaming \
      --cache-dir "${cache}" --no-progress
    ;;
  chaos)
    # A failure-injection grid runs through the cache twice — the failure
    # regime is part of the fingerprint, so the re-run must be served
    # entirely from cache — plus a compare under a shared failure regime
    # and a cache-verify pass.
    faas-sched grid --jobs 2 --cores 4 --intensities 10 \
      --strategies FIFO FC --seeds 1 --nodes 2 \
      --failure-param node_crash_rate=0.01 \
      --failure-param timeout_s=20 \
      --cache-dir "${cache}" --no-progress
    faas-sched grid --jobs 2 --cores 4 --intensities 10 \
      --strategies FIFO FC --seeds 1 --nodes 2 \
      --failure-param node_crash_rate=0.01 \
      --failure-param timeout_s=20 \
      --cache-dir "${cache}" --no-progress | tee chaos_smoke.out
    grep -q "0 computed, 2 from cache" chaos_smoke.out
    faas-sched compare baseline FC --cores 4 --intensity 10 \
      --num-seeds 3 --resamples 300 --jobs 2 --nodes 2 \
      --failure-param node_crash_rate=0.005 \
      --cache-dir "${cache}" --no-progress | tee chaos_compare.out
    grep -q "retries" chaos_compare.out
    faas-sched cache verify --cache-dir "${cache}"
    ;;
  adaptive)
    # FC vs FIFO at intensity 30 separates on mean stretch at the first
    # 5-seed batch (deterministic given seeds), so the adaptive allocator
    # must stop there and report the exact runs saved over the fixed
    # 20-seed protocol.
    faas-sched compare FC FIFO --cores 4 --intensity 30 \
      --num-seeds 5 --adaptive --max-seeds 20 --batch 5 \
      --resamples 300 --jobs 2 --cache-dir "${cache}" --no-progress \
      | tee adaptive_smoke.out
    grep -q "converged after 5 seeds (10/40 runs, 30 saved)" \
      adaptive_smoke.out
    ;;
  *)
    echo "unknown smoke '${smoke}'" >&2
    exit 2
    ;;
esac

elapsed=$(( $(date +%s) - started ))
echo "smoke ${smoke}: ${elapsed}s"
if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
  echo "| ${smoke} | ${elapsed}s |" >> "${GITHUB_STEP_SUMMARY}"
fi
