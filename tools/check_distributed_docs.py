#!/usr/bin/env python
"""Fail when docs/DISTRIBUTED.md is out of sync with the distributed surface.

Checks, in both directions:

* every registered executor (``repro.experiments.executor.executor_names``)
  has a ``## `name` `` catalog heading in docs/DISTRIBUTED.md, the
  ``worker`` verb has one, and every ``faas-sched cache`` subcommand has a
  ``## `cache <verb>` `` heading;
* every backticked heading names a real executor, the worker verb, or a
  real cache subcommand (no stale catalog entries);
* every ``worker`` / ``cache`` CLI flag (introspected from
  ``repro.cli.build_parser``) and both environment variables
  (``REPRO_EXECUTOR``, ``REPRO_LEASE_TTL``) are mentioned somewhere in
  the document.

Run from the repository root (CI's docs job does)::

    python tools/check_distributed_docs.py
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = REPO_ROOT / "docs" / "DISTRIBUTED.md"

#: Catalog entries look like: ## `local` or ## `cache gc`
HEADING = re.compile(r"^##\s+`(?P<name>[^`]+)`", re.MULTILINE)

#: Flags that need no documentation.
IGNORED_FLAGS = {"-h", "--help"}


def _subcommands(parser: argparse.ArgumentParser) -> dict[str, argparse.ArgumentParser]:
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return dict(action.choices)
    return {}


def _flags(parser: argparse.ArgumentParser) -> set[str]:
    flags: set[str] = set()
    for action in parser._actions:
        flags.update(option for option in action.option_strings)
    return flags - IGNORED_FLAGS


def main() -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.cli import build_parser
    from repro.experiments.executor import EXECUTOR_ENV, executor_names
    from repro.experiments.queue import LEASE_TTL_ENV

    commands = _subcommands(build_parser())
    cache_verbs = _subcommands(commands["cache"])

    expected = set(executor_names())
    expected.add("worker")
    expected.update(f"cache {verb}" for verb in cache_verbs)

    if not DOCS.exists():
        print(f"error: {DOCS} does not exist", file=sys.stderr)
        return 1
    text = DOCS.read_text(encoding="utf-8")
    documented = set(HEADING.findall(text))

    errors = []
    undocumented = sorted(expected - documented)
    stale = sorted(documented - expected)
    if undocumented:
        errors.append(
            "entries missing from docs/DISTRIBUTED.md: " + ", ".join(undocumented)
        )
    if stale:
        errors.append(
            "docs/DISTRIBUTED.md documents unknown entries: " + ", ".join(stale)
        )

    required_flags: set[str] = _flags(commands["worker"])
    for verb_parser in cache_verbs.values():
        required_flags.update(_flags(verb_parser))
    missing_flags = sorted(flag for flag in required_flags if flag not in text)
    if missing_flags:
        errors.append(
            "flags missing from docs/DISTRIBUTED.md: " + ", ".join(missing_flags)
        )

    missing_env = sorted(
        env for env in (EXECUTOR_ENV, LEASE_TTL_ENV) if env not in text
    )
    if missing_env:
        errors.append(
            "environment variables missing from docs/DISTRIBUTED.md: "
            + ", ".join(missing_env)
        )

    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    if errors:
        return 1
    print(
        f"docs/DISTRIBUTED.md covers {len(expected)} catalog entries, "
        f"{len(required_flags)} flags, and both environment variables"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
