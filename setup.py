"""Setuptools shim.

This offline environment lacks the ``wheel`` package that PEP-517 editable
installs require, so ``pip install -e .`` falls back to this shim
(``python setup.py develop`` also works directly).  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
