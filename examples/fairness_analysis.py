#!/usr/bin/env python3
"""Fairness analysis: does aggressive shortest-first starve long functions?

Reproduces the paper's Sect. VII-D study as a per-function drill-down: a
skewed workload (10 calls of the long dna-visualisation among 990 total)
on a 10-core node at intensity 90, comparing SEPT (pure shortest-first)
with Fair-Choice (consumption-aware).  Prints per-function stretch so
you can see who pays for whom.

Run:
    python examples/fairness_analysis.py
"""

from collections import defaultdict

import numpy as np

from repro import ExperimentConfig, run_experiment
from repro.metrics.report import format_table


def per_function_stretch(policy: str, seeds=(1, 2, 3)) -> dict:
    values = defaultdict(list)
    for seed in seeds:
        config = ExperimentConfig(
            cores=10, intensity=90, policy=policy, seed=seed, scenario="skewed"
        )
        for record in run_experiment(config).records:
            values[record.function_name].append(record.stretch)
    return values


def main() -> None:
    print("Skewed burst: 10x dna-visualisation, ~98x each remaining function\n")
    sept = per_function_stretch("SEPT")
    fc = per_function_stretch("FC")

    rows = []
    for name in sorted(sept, key=lambda n: -np.mean(sept[n])):
        rows.append(
            [
                name,
                len(sept[name]),
                float(np.mean(sept[name])),
                float(np.median(sept[name])),
                float(np.mean(fc[name])),
                float(np.median(fc[name])),
            ]
        )
    print(
        format_table(
            ["function", "calls", "SEPT avg S", "SEPT med S", "FC avg S", "FC med S"],
            rows,
            title="Per-function stretch: SEPT vs. Fair-Choice",
        )
    )

    dna_sept = float(np.mean(sept["dna-visualisation"]))
    dna_fc = float(np.mean(fc["dna-visualisation"]))
    bfs_sept = float(np.mean(sept["graph-bfs"]))
    bfs_fc = float(np.mean(fc["graph-bfs"]))
    print(
        f"\nRare long function (dna-visualisation): SEPT {dna_sept:.1f} -> FC {dna_fc:.1f} "
        f"({'fairer' if dna_fc < dna_sept else 'no gain'})\n"
        f"Frequent short function (graph-bfs):     SEPT {bfs_sept:.1f} -> FC {bfs_fc:.1f} "
        f"(the price of fairness)"
    )


if __name__ == "__main__":
    main()
