#!/usr/bin/env python3
"""Peak absorption: node-level scheduling vs. horizontal autoscaling.

The paper's core economic argument (Sect. I): autoscaling cannot absorb
short load peaks because a new node takes dozens of seconds to arrive,
so operators over-provision instead — unless the node itself handles
overload gracefully.  This example replays a trace-shaped workload (a
5-minute trace with a 60-second peak, Zipf-skewed functions) against:

1. stock OpenWhisk + a reactive autoscaler (up to 3 nodes, 30 s boots);
2. a single node running the paper's Fair-Choice scheduler, no scaling.

Run:
    python examples/peak_absorption.py
"""

import numpy as np

from repro.cluster.autoscaler import AutoscalerConfig, ReactiveAutoscaler
from repro.cluster.platform import FaaSPlatform
from repro.metrics.report import format_table
from repro.node.baseline import BaselineInvoker
from repro.node.config import NodeConfig
from repro.node.invoker import Invoker
from repro.sim.core import Environment
from repro.workload.functions import sebs_catalog
from repro.workload.trace import TraceProfile, trace_scenario

PROFILE = TraceProfile(
    duration_s=300.0,
    base_rate=2.0,
    peak_rate=18.0,
    peak_start_s=120.0,
    peak_duration_s=60.0,
    zipf_exponent=1.1,
)
CORES = 8


def run_autoscaled_baseline(seed: int):
    env = Environment()
    node_config = NodeConfig(cores=CORES)
    first = BaselineInvoker(env, node_config, name="node-0")
    first.warm_up(sebs_catalog())
    invokers = [first]
    autoscaler = ReactiveAutoscaler(
        env, invokers, node_config,
        config=AutoscalerConfig(max_nodes=3, provisioning_delay_s=30.0),
    )
    scenario = trace_scenario(PROFILE, np.random.default_rng(seed))
    records = FaaSPlatform(env, invokers).run_scenario(scenario)
    return records, autoscaler


def run_fc_single_node(seed: int):
    env = Environment()
    invoker = Invoker(env, NodeConfig(cores=CORES), policy="FC", name="node-0")
    invoker.warm_up(sebs_catalog())
    scenario = trace_scenario(PROFILE, np.random.default_rng(seed))
    records = FaaSPlatform(env, [invoker]).run_scenario(scenario)
    return records


def stats_row(label, records, extra=""):
    responses = np.array([r.response_time for r in records])
    return [
        label,
        len(records),
        float(responses.mean()),
        float(np.percentile(responses, 50)),
        float(np.percentile(responses, 95)),
        float(np.percentile(responses, 99)),
        extra,
    ]


def main() -> None:
    print(
        f"Trace: {PROFILE.duration_s:.0f} s, base {PROFILE.base_rate:.0f} req/s, "
        f"peak {PROFILE.peak_rate:.0f} req/s for {PROFILE.peak_duration_s:.0f} s, "
        f"{CORES}-core nodes\n"
    )
    base_records, autoscaler = run_autoscaled_baseline(seed=1)
    fc_records = run_fc_single_node(seed=1)

    scale_note = (
        f"scaled to {autoscaler.fleet_size} nodes at "
        + ", ".join(f"t={t:.0f}s" for t, _ in autoscaler.scale_events)
        if autoscaler.scale_events
        else "never scaled"
    )
    rows = [
        stats_row("baseline + autoscaler (<=3 nodes)", base_records, scale_note),
        stats_row("Fair-Choice, 1 node, no scaling", fc_records),
    ]
    print(
        format_table(
            ["setup", "n", "avg [s]", "p50 [s]", "p95 [s]", "p99 [s]", "notes"],
            rows,
        )
    )
    base_mean = np.mean([r.response_time for r in base_records])
    fc_mean = np.mean([r.response_time for r in fc_records])
    print(
        f"\nOne FC node vs. an autoscaled baseline fleet: "
        f"{base_mean / fc_mean:.1f}x better mean response — the peak is over "
        f"before the new nodes can help."
    )


if __name__ == "__main__":
    main()
