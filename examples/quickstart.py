#!/usr/bin/env python3
"""Quickstart: compare all node-level scheduling policies on one burst.

Simulates a 10-core FaaS worker node under the paper's intensity-60
burst (660 requests over 60 seconds, 11 SeBS functions) for the stock
OpenWhisk baseline and the five policies of the paper, and prints the
response-time / stretch statistics the paper reports.

Run:
    python examples/quickstart.py
"""

from repro import ExperimentConfig, run_experiment
from repro.metrics.report import render_summary_table

CORES = 10
INTENSITY = 60
SEED = 1


def main() -> None:
    print(
        f"Simulating a {CORES}-core worker node, intensity {INTENSITY} "
        f"({int(1.1 * CORES * INTENSITY)} requests in a 60 s burst)\n"
    )
    entries = []
    for policy in ("baseline", "FIFO", "SEPT", "EECT", "RECT", "FC"):
        config = ExperimentConfig(
            cores=CORES, intensity=INTENSITY, policy=policy, seed=SEED
        )
        result = run_experiment(config)
        entries.append((policy, result.summary()))

    print(render_summary_table(entries, title="Response time [s] and stretch per policy"))

    base, fc = dict(entries)["baseline"], dict(entries)["FC"]
    print(
        f"\nFair-Choice vs. stock OpenWhisk on this burst:\n"
        f"  average response time: {base.mean_response_time:7.1f} s -> "
        f"{fc.mean_response_time:6.1f} s "
        f"({base.mean_response_time / fc.mean_response_time:.1f}x better)\n"
        f"  average stretch:       {base.mean_stretch:7.0f}   -> "
        f"{fc.mean_stretch:6.0f}   "
        f"({base.mean_stretch / fc.mean_stretch:.1f}x better)"
    )


if __name__ == "__main__":
    main()
