#!/usr/bin/env python3
"""Capacity planning: how many worker VMs does a latency target need?

The paper's Sect. VIII scenario as a practitioner workflow: a fixed peak
load (2376 requests in 60 s) must be served within response-time
targets.  We sweep the fleet size from 4 down to 1 VM for the stock
OpenWhisk baseline and the Fair-Choice scheduler and report which
configurations meet the targets — reproducing the headline that FC needs
one VM fewer than the baseline.

Run:
    python examples/capacity_planning.py
"""

from repro import MultiNodeConfig, run_multi_node_experiment
from repro.metrics.report import format_table

CORES_PER_VM = 18
TOTAL_REQUESTS = 2376
#: Service objective: average and tail response-time budgets (seconds).
TARGET_AVG_S = 60.0
TARGET_P95_S = 250.0


def main() -> None:
    print(
        f"Peak load: {TOTAL_REQUESTS} requests / 60 s on {CORES_PER_VM}-core VMs\n"
        f"Targets: avg <= {TARGET_AVG_S:.0f} s, p95 <= {TARGET_P95_S:.0f} s\n"
    )
    rows = []
    verdicts = {}
    for policy in ("baseline", "FC"):
        for vms in (4, 3, 2, 1):
            config = MultiNodeConfig(
                nodes=vms,
                cores_per_node=CORES_PER_VM,
                total_requests=TOTAL_REQUESTS,
                policy=policy,
                seed=1,
            )
            stats = run_multi_node_experiment(config).summary()
            ok = (
                stats.mean_response_time <= TARGET_AVG_S
                and stats.response_time_percentiles[95] <= TARGET_P95_S
            )
            verdicts[(policy, vms)] = ok
            rows.append(
                [
                    policy,
                    vms,
                    stats.mean_response_time,
                    stats.response_time_percentiles[75],
                    stats.response_time_percentiles[95],
                    stats.response_time_percentiles[99],
                    "MEETS TARGET" if ok else "too slow",
                ]
            )
    print(
        format_table(
            ["policy", "VMs", "avg [s]", "p75 [s]", "p95 [s]", "p99 [s]", "verdict"],
            rows,
        )
    )

    smallest = {
        policy: min(
            (vms for (p, vms), ok in verdicts.items() if p == policy and ok),
            default=None,
        )
        for policy in ("baseline", "FC")
    }
    print(
        f"\nSmallest fleet meeting the targets: "
        f"baseline -> {smallest['baseline']} VMs, FC -> {smallest['FC']} VMs."
    )
    if (
        smallest["FC"] is not None
        and (smallest["baseline"] is None or smallest["FC"] < smallest["baseline"])
    ):
        print(
            "Fair-Choice serves the same peak with a smaller fleet — the "
            "paper's >=25% machine-reduction claim."
        )


if __name__ == "__main__":
    main()
