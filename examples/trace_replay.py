#!/usr/bin/env python3
"""CSV trace replay, end to end.

Generates a tiny synthetic Azure-shaped trace file (``app,func,minute,
count`` rows: a steady application plus one that spikes in minute 2),
replays it through the simulator under two scheduling policies via the
``replay`` scenario, and prints the metrics report.

The same file runs from the command line::

    faas-sched simulate --scenario replay \
        --scenario-param path=/tmp/azure_like_trace.csv \
        --scenario-param minute_s=10

Run:
    python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro import ExperimentConfig, run_experiment
from repro.metrics.report import render_summary_table
from repro.workload.replay import TraceRow, write_trace_csv

CORES = 8
SEED = 1
#: Compress each trace minute to 10 simulated seconds to keep the run short.
MINUTE_S = 10.0


def synthetic_trace() -> list:
    """Five trace minutes: app 'steady' hums along while app 'spiky'
    bursts in minute 2 — the uneven-rate shape of the Azure trace."""
    rows = []
    for minute in range(5):
        rows.append(TraceRow("steady", "api", minute, 20))
        rows.append(TraceRow("steady", "thumbs", minute, 8))
        rows.append(TraceRow("spiky", "batch", minute, 120 if minute == 2 else 2))
    return rows


def main() -> None:
    trace_path = Path(tempfile.gettempdir()) / "azure_like_trace.csv"
    rows = synthetic_trace()
    write_trace_csv(trace_path, rows)
    total = sum(r.count for r in rows)
    print(
        f"Wrote {len(rows)} trace rows ({total} invocations over 5 minutes) "
        f"to {trace_path}\nReplaying on a {CORES}-core node at "
        f"{MINUTE_S:.0f} s per trace minute:\n"
    )

    entries = []
    for policy in ("baseline", "SEPT"):
        config = ExperimentConfig(
            cores=CORES,
            intensity=30,  # shapes the node only; the trace defines the load
            policy=policy,
            seed=SEED,
            scenario="replay",
            scenario_params={"path": str(trace_path), "minute_s": MINUTE_S},
        )
        result = run_experiment(config)
        entries.append((policy, result.summary()))
        stats = result.node_stats[0]
        print(
            f"{policy:>8}: {len(result.records)} calls answered, "
            f"{result.cold_starts} cold starts, "
            f"{int(stats['evictions'])} evictions"
        )

    print()
    print(render_summary_table(entries, title="Trace replay — response time [s] and stretch"))
    print(
        "\nEach app/func keeps its own containers (namespace_functions=true),"
        "\nso the minute-2 spike of 'spiky/batch' contends with the steady"
        "\napps for cores and memory exactly as in a multi-tenant deployment."
    )


if __name__ == "__main__":
    main()
