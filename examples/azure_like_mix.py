#!/usr/bin/env python3
"""Robustness check: do the paper's conclusions survive a realistic,
Zipf-skewed call mix?

The paper's main grid calls every function equally often; real FaaS
traffic (the Azure Functions trace the paper cites) is heavily skewed
toward a few hot, short functions.  This example replays the loaded-node
comparison under a Zipf-distributed mix and checks whether SEPT/FC still
beat FIFO and the baseline.

Run:
    python examples/azure_like_mix.py
"""

from repro import ExperimentConfig, run_experiment
from repro.metrics.report import render_summary_table

CORES = 10
INTENSITY = 60


def main() -> None:
    for scenario in ("uniform", "azure"):
        entries = []
        for policy in ("baseline", "FIFO", "SEPT", "FC"):
            config = ExperimentConfig(
                cores=CORES,
                intensity=INTENSITY,
                policy=policy,
                seed=1,
                scenario=scenario,
            )
            entries.append((policy, run_experiment(config).summary()))
        print(
            render_summary_table(
                entries,
                title=f"{scenario} call mix ({CORES} cores, intensity {INTENSITY})",
            )
        )
        print()

    print(
        "Shape check: SEPT/FC should dominate FIFO under both mixes; the "
        "skewed mix concentrates load on short functions, so absolute "
        "response times drop but the ordering persists."
    )


if __name__ == "__main__":
    main()
