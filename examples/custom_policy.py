#!/usr/bin/env python3
"""Extending the library: plug in a custom scheduling policy.

The invoker accepts any :class:`repro.SchedulingPolicy` subclass.  This
example implements *Weighted SEPT* — ``E(p(i)) / (1 + age_bonus)`` style
aging that bounds starvation while keeping shortest-first behaviour —
and benchmarks it against the paper's policies on a loaded node.

Run:
    python examples/custom_policy.py
"""

from repro import ExperimentConfig, SchedulingPolicy, run_experiment
from repro.experiments.runner import ExperimentResult
from repro.metrics.report import render_summary_table
from repro.node.invoker import Invoker
from repro.cluster.platform import FaaSPlatform
from repro.scheduling.estimator import RuntimeEstimator
from repro.sim.core import Environment
from repro.sim.rng import RngRegistry
from repro.workload.functions import sebs_catalog
from repro.workload.scenarios import uniform_burst

CORES = 10
INTENSITY = 60
SEED = 1


class AgingSept(SchedulingPolicy):
    """SEPT with linear aging: priority = E(p) - aging_rate * r'(i).

    Older calls gradually outrank newer short ones, so no call starves,
    at a small cost in mean response time versus pure SEPT.
    """

    name = "AGING-SEPT"
    starvation_free = True  # priority decreases without bound over time

    def __init__(self, estimator: RuntimeEstimator, aging_rate: float = 0.02) -> None:
        super().__init__(estimator)
        self.aging_rate = aging_rate

    def priority(self, request, received_at: float) -> float:
        estimate = self.estimator.expected_processing_time(request.function.name)
        return estimate - self.aging_rate * received_at


def run_custom(policy: SchedulingPolicy) -> ExperimentResult:
    """Run the standard burst against an invoker using *policy*."""
    env = Environment()
    rngs = RngRegistry(SEED)
    config = ExperimentConfig(cores=CORES, intensity=INTENSITY, seed=SEED)
    invoker = Invoker(env, config.node_config(), policy=policy, name="custom-node")
    invoker.warm_up(sebs_catalog())
    scenario = uniform_burst(CORES, INTENSITY, rngs.get("scenario"))
    platform = FaaSPlatform(env, [invoker])
    records = platform.run_scenario(scenario)
    return ExperimentResult(config=config, records=records, node_stats=[])


def main() -> None:
    entries = []
    for policy in ("FIFO", "SEPT", "FC"):
        config = ExperimentConfig(
            cores=CORES, intensity=INTENSITY, policy=policy, seed=SEED
        )
        entries.append((policy, run_experiment(config).summary()))

    custom = AgingSept(RuntimeEstimator())
    entries.append((custom.name, run_custom(custom).summary()))

    print(
        render_summary_table(
            entries,
            title=f"Custom policy vs. paper policies ({CORES} cores, intensity {INTENSITY})",
        )
    )
    print(
        "\nAGING-SEPT trades a little mean response time for a starvation "
        "bound — compare its p99 with SEPT's."
    )


if __name__ == "__main__":
    main()
