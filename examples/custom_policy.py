#!/usr/bin/env python3
"""Extending the library: register a custom scheduling policy.

One ``@register_policy`` decorator makes a :class:`repro.SchedulingPolicy`
subclass a first-class citizen: runnable by name through
``ExperimentConfig`` (and therefore the grid, the parallel engine, the
result cache, and the CLI), with declared, validated parameters.  This
example implements *Aging SEPT* — shortest-first with linear aging that
bounds starvation — and benchmarks it, at two aging rates, against the
paper's policies on a loaded node.

Run:
    python examples/custom_policy.py
"""

from repro import ExperimentConfig, SchedulingPolicy, run_experiment
from repro.metrics.report import render_summary_table
from repro.scheduling.registry import PolicyParam, register_policy

CORES = 10
INTENSITY = 60
SEED = 1


@register_policy(
    "AGING-SEPT",
    description="SEPT with linear aging: E(p) - aging_rate * r'(i)",
    starvation_free=True,
    params=(
        PolicyParam(
            "aging_rate",
            0.02,
            "priority decay per second of receipt time; higher favours old calls",
        ),
    ),
)
class AgingSept(SchedulingPolicy):
    """SEPT with linear aging: priority = E(p) - aging_rate * r'(i).

    Older calls gradually outrank newer short ones, so no call starves,
    at a small cost in mean response time versus pure SEPT.
    """

    name = "AGING-SEPT"
    starvation_free = True  # priority decreases without bound over time

    def __init__(self, estimator, aging_rate: float = 0.02) -> None:
        super().__init__(estimator)
        self.aging_rate = aging_rate

    def priority(self, request, received_at: float) -> float:
        estimate = self.estimator.expected_processing_time(request.function.name)
        return estimate - self.aging_rate * received_at


def main() -> None:
    entries = []
    for policy in ("FIFO", "SEPT", "FC"):
        config = ExperimentConfig(
            cores=CORES, intensity=INTENSITY, policy=policy, seed=SEED
        )
        entries.append((policy, run_experiment(config).summary()))

    # The registered policy runs through the exact same path — by name,
    # with its declared parameter validated and cache-fingerprinted.
    for rate in (0.02, 0.2):
        config = ExperimentConfig(
            cores=CORES,
            intensity=INTENSITY,
            policy="AGING-SEPT",
            policy_params={"aging_rate": rate},
            seed=SEED,
        )
        label = f"AGING-SEPT r={rate}"
        entries.append((label, run_experiment(config).summary()))

    print(
        render_summary_table(
            entries,
            title=f"Custom policy vs. paper policies ({CORES} cores, intensity {INTENSITY})",
        )
    )
    print(
        "\nAGING-SEPT trades a little mean response time for a starvation "
        "bound — compare its p99 with SEPT's, and the two aging rates "
        "against each other."
    )


if __name__ == "__main__":
    main()
