"""Tests for the stock OpenWhisk baseline invoker."""


from repro.node.baseline import BaselineInvoker
from repro.node.config import NodeConfig
from repro.sim.core import Environment
from repro.workload.functions import sebs_catalog
from repro.workload.generator import Request

from tests.node.conftest import make_request


def submit_all(env, invoker, requests):
    infos = []

    def client(env, request):
        if request.release_time > env.now:
            yield env.timeout(request.release_time - env.now)
        info = yield invoker.submit(request)
        infos.append(info)

    for request in requests:
        env.process(client(env, request))
    return infos


class TestGreedyPlacement:
    def test_single_call(self, env, config, catalog):
        invoker = BaselineInvoker(env, config)
        invoker.warm_up(sebs_catalog())
        infos = submit_all(env, invoker, [make_request(catalog, service=0.2)])
        env.run()
        assert len(infos) == 1 and infos[0].start_kind == "warm"

    def test_concurrency_exceeds_cores(self, env, config, catalog):
        # Memory-bounded concurrency: 6 concurrent 1s calls on 2 cores all
        # start immediately (unlike our invoker).
        invoker = BaselineInvoker(env, config)
        invoker.warm_up(sebs_catalog())
        requests = [
            make_request(catalog, name="sleep", rid=i, service=1.0) for i in range(6)
        ]
        infos = submit_all(env, invoker, requests)
        env.run()
        # sleep is ~pure I/O: all 6 overlap, so every wait is ~the unpause
        # latency, not a slot wait.
        assert all(i.wait_time < 0.5 for i in infos)

    def test_greedy_creates_when_warm_busy(self, env, config, catalog):
        invoker = BaselineInvoker(env, config)
        spec = catalog["sleep"]
        invoker.pool.seed_warm(spec, 1)
        requests = [
            make_request(catalog, name="sleep", rid=i, service=2.0) for i in range(3)
        ]
        submit_all(env, invoker, requests)
        env.run()
        # 1 warm + prewarm stock (2) + creations cover the burst.
        assert invoker.pool.prewarm_starts + invoker.pool.cold_starts >= 2

    def test_fifo_order_under_queueing(self, env, catalog):
        # Tiny memory: one container at a time -> strict FIFO service.
        config = NodeConfig(
            cores=2, memory_mb=256, prewarm_stock=0,
            dispatch_op_s=0.01, create_op_s=0.05, invoker_overhead_s=0.0,
            system_cpu_coeff_s=0.0, cold_init_latency_s=0.01, cold_init_cpu_s=0.0,
        )
        invoker = BaselineInvoker(env, config)
        requests = [
            make_request(catalog, name="graph-bfs", rid=i, release=i * 0.001, service=0.1)
            for i in range(5)
        ]
        infos = submit_all(env, invoker, requests)
        env.run()
        order = [i.request.rid for i in sorted(infos, key=lambda x: x.dispatched_at)]
        assert order == [0, 1, 2, 3, 4]

    def test_eviction_churn_when_memory_tight(self, env, catalog):
        config = NodeConfig(
            cores=2, memory_mb=300, prewarm_stock=0,
            dispatch_op_s=0.01, create_op_s=0.02, remove_op_s=0.01,
            invoker_overhead_s=0.0, system_cpu_coeff_s=0.0,
            cold_init_latency_s=0.01, cold_init_cpu_s=0.0,
        )
        invoker = BaselineInvoker(env, config)
        # Alternate two 128 MiB functions + one 256 MiB: constant eviction.
        names = ["graph-bfs", "dynamic-html", "compression"] * 4
        requests = [
            make_request(catalog, name=n, rid=i, release=i * 0.5, service=0.05)
            for i, n in enumerate(names)
        ]
        infos = submit_all(env, invoker, requests)
        env.run()
        assert len(infos) == len(names)
        assert invoker.pool.evictions > 0
        assert invoker.pool.cold_starts > 3

    def test_all_complete_conservation(self, env, config, catalog):
        invoker = BaselineInvoker(env, config)
        invoker.warm_up(sebs_catalog())
        requests = [
            make_request(catalog, name=spec.name, rid=i, release=i * 0.02)
            for i, spec in enumerate(sebs_catalog() * 3)
        ]
        infos = submit_all(env, invoker, requests)
        env.run()
        assert len(infos) == len(requests)
        assert invoker.outstanding == 0


class TestCpuSharing:
    def test_memory_proportional_weights_slow_small_containers(self, env, catalog):
        # Two CPU-bound calls on one core: the 512 MiB container gets 2x the
        # share of the 256 MiB one... verified via completion order of
        # equal-work calls.
        config = NodeConfig(
            cores=1, memory_mb=4096, prewarm_stock=0,
            dispatch_op_s=0.0, create_op_s=0.0, invoker_overhead_s=0.0,
            system_cpu_coeff_s=0.0, cold_init_latency_s=0.0, cold_init_cpu_s=0.0,
            unpause_latency_s=0.0, kappa=0.0,
        )
        invoker = BaselineInvoker(env, config)
        invoker.pool.seed_warm(catalog["image-recognition"], 1)  # 512 MiB
        invoker.pool.seed_warm(catalog["compression"], 1)  # 256 MiB
        big = Request(0, catalog["image-recognition"], 0.0, 1.0)
        small = Request(1, catalog["compression"], 0.0, 1.0)
        infos = submit_all(env, invoker, [big, small])
        env.run()
        by_rid = {i.request.rid: i for i in infos}
        assert by_rid[0].exec_end < by_rid[1].exec_end

    def test_kappa_penalty_slows_oversubscribed_node(self, env, catalog):
        def run_with(kappa):
            env = Environment()
            config = NodeConfig(
                cores=1, memory_mb=8192, prewarm_stock=0,
                dispatch_op_s=0.0, create_op_s=0.0, invoker_overhead_s=0.0,
                system_cpu_coeff_s=0.0, cold_init_latency_s=0.0,
                cold_init_cpu_s=0.0, unpause_latency_s=0.0, kappa=kappa,
            )
            invoker = BaselineInvoker(env, config)
            invoker.pool.seed_warm(catalog["graph-bfs"], 4)
            requests = [
                Request(i, catalog["graph-bfs"], 0.0, 1.0) for i in range(4)
            ]
            infos = submit_all(env, invoker, requests)
            env.run()
            return max(i.exec_end for i in infos)

        assert run_with(1.0) > run_with(0.0)
