"""Tests for the memory pool."""

import pytest

from repro.node.memory import MemoryPool


class TestMemoryPool:
    def test_reserve_release_roundtrip(self):
        pool = MemoryPool(1024)
        pool.reserve(512)
        assert pool.used_mb == 512 and pool.free_mb == 512
        pool.release(512)
        assert pool.used_mb == 0

    def test_can_reserve(self):
        pool = MemoryPool(1024)
        assert pool.can_reserve(1024)
        assert not pool.can_reserve(1025)

    def test_overcommit_raises(self):
        pool = MemoryPool(256)
        pool.reserve(200)
        with pytest.raises(MemoryError):
            pool.reserve(100)

    def test_over_release_raises(self):
        pool = MemoryPool(256)
        pool.reserve(100)
        with pytest.raises(ValueError):
            pool.release(200)

    def test_negative_amounts_rejected(self):
        pool = MemoryPool(256)
        with pytest.raises(ValueError):
            pool.reserve(-1)
        with pytest.raises(ValueError):
            pool.release(-1)

    def test_peak_tracking(self):
        pool = MemoryPool(1024)
        pool.reserve(700)
        pool.release(600)
        pool.reserve(100)
        assert pool.peak_used_mb == 700

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            MemoryPool(0)
