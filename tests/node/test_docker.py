"""Tests for the serialized docker-daemon model."""

import pytest

from repro.node.config import NodeConfig
from repro.node.docker import DockerDaemon
from repro.sim.core import Environment


@pytest.fixture
def setup():
    env = Environment()
    config = NodeConfig(cores=2, create_op_s=1.0, dispatch_op_s=0.5, pause_op_s=0.25,
                        remove_op_s=0.1)
    return env, DockerDaemon(env, config)


class TestDockerDaemon:
    def test_single_op_duration(self, setup):
        env, daemon = setup
        done = {}

        def proc(env):
            yield from daemon.op("create")
            done["t"] = env.now

        env.process(proc(env))
        env.run()
        assert done["t"] == pytest.approx(1.0)
        assert daemon.op_counts["create"] == 1

    def test_ops_serialize(self, setup):
        env, daemon = setup
        finished = []

        def proc(env, kind):
            yield from daemon.op(kind)
            finished.append((kind, env.now))

        env.process(proc(env, "create"))
        env.process(proc(env, "dispatch"))
        env.run()
        # dispatch waits for the 1.0s create, then takes 0.5s.
        assert finished == [("create", pytest.approx(1.0)), ("dispatch", pytest.approx(1.5))]

    def test_priority_order(self, setup):
        env, daemon = setup
        finished = []

        def proc(env, kind, priority, delay):
            if delay:
                yield env.timeout(delay)
            yield from daemon.op(kind, priority=priority)
            finished.append(kind)

        # While the first create runs, a low-priority dispatch jumps ahead
        # of an earlier-enqueued high-priority one.
        env.process(proc(env, "create", 0.0, 0.0))
        env.process(proc(env, "pause", 100.0, 0.1))
        env.process(proc(env, "dispatch", 1.0, 0.2))
        env.run()
        assert finished == ["create", "dispatch", "pause"]

    def test_default_priority_is_enqueue_time(self, setup):
        env, daemon = setup
        finished = []

        def proc(env, tag, delay):
            if delay:
                yield env.timeout(delay)
            yield from daemon.op("remove")
            finished.append(tag)

        env.process(proc(env, "first", 0.0))
        env.process(proc(env, "second", 0.01))
        env.process(proc(env, "third", 0.02))
        env.run()
        assert finished == ["first", "second", "third"]

    def test_unknown_op_rejected(self, setup):
        env, daemon = setup
        with pytest.raises(KeyError):
            daemon.duration_of("explode")

    def test_utilization_and_busy_seconds(self, setup):
        env, daemon = setup

        def proc(env):
            yield from daemon.op("create")
            yield env.timeout(1.0)  # idle gap

        env.process(proc(env))
        env.run()
        assert daemon.busy_seconds == pytest.approx(1.0)
        assert daemon.utilization() == pytest.approx(0.5)

    def test_queue_length(self, setup):
        env, daemon = setup

        def worker(env):
            yield from daemon.op("create")

        env.process(worker(env))
        env.process(worker(env))
        env.process(worker(env))
        env.run(until=0.5)
        assert daemon.queue_length == 2
