"""Tests for our invoker (priority queue + CPU-based container management)."""

import pytest

from repro.node.config import NodeConfig
from repro.node.invoker import Invoker
from repro.workload.functions import sebs_catalog

from tests.node.conftest import make_request


def submit_all(env, invoker, requests):
    """Submit requests at their release times; return the list of infos."""
    infos = []

    def client(env, request):
        if request.release_time > env.now:
            yield env.timeout(request.release_time - env.now)
        info = yield invoker.submit(request)
        infos.append(info)

    for request in requests:
        env.process(client(env, request))
    return infos


class TestBasicExecution:
    def test_single_call_completes(self, env, config, catalog):
        invoker = Invoker(env, config, policy="FIFO")
        invoker.warm_up(sebs_catalog())
        infos = submit_all(env, invoker, [make_request(catalog, service=0.5)])
        env.run()
        assert len(infos) == 1
        info = infos[0]
        assert info.exec_end > info.exec_start
        assert info.finished_at >= info.exec_end
        assert info.start_kind == "warm"

    def test_all_calls_complete_conservation(self, env, config, catalog):
        invoker = Invoker(env, config, policy="SEPT")
        invoker.warm_up(sebs_catalog())
        requests = [
            make_request(catalog, name=n, rid=i, release=i * 0.01)
            for i, n in enumerate(
                ["graph-bfs", "sleep", "dna-visualisation", "uploader"] * 5
            )
        ]
        infos = submit_all(env, invoker, requests)
        env.run()
        assert len(infos) == len(requests)
        assert invoker.outstanding == 0
        assert {i.request.rid for i in infos} == {r.rid for r in requests}

    def test_busy_limit_respected(self, env, config, catalog):
        invoker = Invoker(env, config, policy="FIFO")  # 2 cores
        invoker.warm_up(sebs_catalog())
        requests = [
            make_request(catalog, name="sleep", rid=i, service=1.0) for i in range(6)
        ]
        submit_all(env, invoker, requests)
        max_seen = 0

        def monitor(env):
            nonlocal max_seen
            while True:
                max_seen = max(max_seen, invoker.busy_count)
                yield env.timeout(0.05)

        env.process(monitor(env))
        env.run(until=10.0)
        assert max_seen <= config.effective_busy_limit == 2

    def test_cpu_never_oversubscribed(self, env, config, catalog):
        invoker = Invoker(env, config, policy="FIFO")
        invoker.warm_up(sebs_catalog())
        requests = [
            make_request(catalog, name="graph-bfs", rid=i, service=0.2)
            for i in range(20)
        ]
        submit_all(env, invoker, requests)
        env.run()
        # 1-core tasks, busy <= cores: the bank never holds more tasks than
        # cores (the paper's no-preemption guarantee).
        assert invoker.cpu.peak_tasks <= config.cores

    def test_cold_start_when_not_warmed(self, env, config, catalog):
        invoker = Invoker(env, config, policy="FIFO")  # no warm_up
        infos = submit_all(env, invoker, [make_request(catalog)])
        env.run()
        assert infos[0].start_kind in ("cold", "prewarm")
        assert infos[0].cold_start

    def test_zero_cold_starts_after_warmup(self, env, config, catalog):
        # Needs a pool that holds the full warm working set
        # (2 cores x 11 functions ~ 5.8 GiB).
        config = NodeConfig(cores=2, memory_mb=8192, invoker_overhead_s=0.0)
        invoker = Invoker(env, config, policy="FIFO")
        invoker.warm_up(sebs_catalog())
        requests = [
            make_request(catalog, name=spec.name, rid=i)
            for i, spec in enumerate(sebs_catalog())
        ]
        submit_all(env, invoker, requests)
        env.run()
        assert invoker.pool.cold_starts == 0


class TestSchedulingOrder:
    def _queued_burst(self, env, config, catalog, policy):
        """All requests arrive while the node is plugged by long calls."""
        invoker = Invoker(env, config, policy=policy)
        invoker.warm_up(sebs_catalog())
        # Two pluggers occupy both cores; then shorts and longs queue.
        pluggers = [
            make_request(catalog, name="sleep", rid=90 + i, release=0.0, service=3.0)
            for i in range(2)
        ]
        queued = [
            make_request(catalog, "dna-visualisation", rid=0, release=0.1, service=8.0),
            make_request(catalog, "dna-visualisation", rid=1, release=0.15, service=8.0),
            make_request(catalog, "graph-bfs", rid=2, release=0.2, service=0.01),
            make_request(catalog, "graph-bfs", rid=3, release=0.25, service=0.01),
        ]
        infos = submit_all(env, invoker, pluggers + queued)
        env.run()
        order = [i.request.rid for i in sorted(infos, key=lambda x: x.dispatched_at)
                 if i.request.rid < 90]
        return order

    def test_fifo_serves_in_arrival_order(self, env, config, catalog):
        assert self._queued_burst(env, config, catalog, "FIFO") == [0, 1, 2, 3]

    def test_sept_serves_short_first(self, env, config, catalog):
        order = self._queued_burst(env, config, catalog, "SEPT")
        assert order[:2] == [2, 3]  # graph-bfs jumps dna-visualisation

    def test_fc_repeat_long_call_deprioritised(self, env, config, catalog):
        # FC gives any function's FIRST call priority 0 (no recent
        # consumption), so dna #0 may go early — but the SECOND dna call
        # already carries its 8.5 s consumption and must fall behind both
        # graph-bfs calls.
        order = self._queued_burst(env, config, catalog, "FC")
        assert order[-1] == 1
        assert order.index(2) < order.index(1)
        assert order.index(3) < order.index(1)

    def test_estimator_learns_during_run(self, env, config, catalog):
        invoker = Invoker(env, config, policy="SEPT")
        est = invoker.policy.estimator
        assert est.expected_processing_time("graph-bfs") == 0.0
        submit_all(env, invoker, [make_request(catalog, service=0.25)])
        env.run()
        assert est.expected_processing_time("graph-bfs") == pytest.approx(0.25, abs=0.05)


class TestNodeCallInfo:
    def test_timeline_monotone(self, env, config, catalog):
        invoker = Invoker(env, config, policy="FIFO")
        invoker.warm_up(sebs_catalog())
        infos = submit_all(env, invoker, [make_request(catalog, service=0.3)])
        env.run()
        info = infos[0]
        assert (
            info.received_at
            <= info.dispatched_at
            <= info.exec_start
            <= info.exec_end
            <= info.finished_at
        )

    def test_processing_time_close_to_service(self, env, config, catalog):
        invoker = Invoker(env, config, policy="FIFO")
        invoker.warm_up(sebs_catalog())
        infos = submit_all(env, invoker, [make_request(catalog, service=0.4)])
        env.run()
        # Uncontended, the node-measured processing time equals the service
        # time (the 1-core guarantee).
        assert infos[0].processing_time == pytest.approx(0.4, abs=1e-6)

    def test_wait_time(self, env, config, catalog):
        invoker = Invoker(env, config, policy="FIFO")
        invoker.warm_up(sebs_catalog())
        requests = [
            make_request(catalog, name="sleep", rid=i, service=1.0) for i in range(4)
        ]
        infos = submit_all(env, invoker, requests)
        env.run()
        waits = sorted(i.wait_time for i in infos)
        assert waits[0] == pytest.approx(0.0, abs=1e-6)
        assert waits[-1] > 0.5  # 3rd/4th call waited for a slot


class TestBusyLimitAblation:
    def test_higher_busy_limit_allows_oversubscription(self, env, catalog):
        config = NodeConfig(
            cores=2, memory_mb=4096, busy_limit=8,
            dispatch_op_s=0.0, create_op_s=0.0, invoker_overhead_s=0.0,
            system_cpu_coeff_s=0.0, pause_grace_s=0.5,
        )
        invoker = Invoker(env, config, policy="FIFO")
        invoker.warm_up(sebs_catalog())
        requests = [
            make_request(catalog, name="graph-bfs", rid=i, service=1.0)
            for i in range(8)
        ]
        submit_all(env, invoker, requests)
        env.run()
        assert invoker.cpu.peak_tasks > config.cores  # OS-level preemption back
