"""Tests for container lifecycle and the warm/prewarm pools."""

import pytest

from repro.node.container import ContainerState
from repro.node.docker import DockerDaemon
from repro.node.memory import MemoryPool
from repro.node.pool import ContainerPool


def make_pool(env, config, memory_mb=None, manage_pause=True):
    memory = MemoryPool(memory_mb or config.memory_mb)
    daemon = DockerDaemon(env, config)
    return ContainerPool(env, config, daemon, memory, manage_pause=manage_pause), memory


class TestSeeding:
    def test_seed_warm_creates_paused_containers(self, env, config, catalog):
        pool, memory = make_pool(env, config)
        created = pool.seed_warm(catalog["graph-bfs"], 3)
        assert created == 3
        assert pool.warm_count(catalog["graph-bfs"]) == 3
        assert all(c.state is ContainerState.PAUSED for c in pool.containers)
        assert memory.used_mb == 3 * catalog["graph-bfs"].memory_mb

    def test_seed_warm_respects_memory(self, env, config, catalog):
        pool, memory = make_pool(env, config, memory_mb=300)
        created = pool.seed_warm(catalog["dna-visualisation"], 5)  # 512 MiB each
        assert created == 0

    def test_seeding_evicts_lru_when_full(self, env, config, catalog):
        pool, memory = make_pool(env, config, memory_mb=1024)
        pool.seed_warm(catalog["graph-bfs"], 8)  # 8 * 128 = 1024 -> full
        pool.seed_warm(catalog["sleep"], 2)  # evicts 2 bfs seeds
        assert pool.warm_count(catalog["sleep"]) == 2
        assert pool.warm_count(catalog["graph-bfs"]) == 6
        assert pool.evictions == 2

    def test_bootstrap_prewarm(self, env, config, catalog):
        pool, memory = make_pool(env, config)
        pool.bootstrap_prewarm(3)
        assert len(pool.prewarm_shells) == 3
        assert memory.used_mb == 3 * config.prewarm_memory_mb


class TestAcquire:
    def test_cold_when_empty(self, env, config, catalog):
        pool, _ = make_pool(env, config)
        plan = pool.acquire(catalog["graph-bfs"], allow_prewarm=False)
        assert plan.kind == "cold"
        assert plan.container.busy
        assert pool.cold_starts == 1

    def test_warm_preferred_over_cold(self, env, config, catalog):
        pool, _ = make_pool(env, config)
        pool.seed_warm(catalog["graph-bfs"], 1)
        plan = pool.acquire(catalog["graph-bfs"])
        assert plan.kind == "warm"
        assert pool.cold_starts == 0

    def test_hot_preferred_over_paused(self, env, config, catalog):
        pool, _ = make_pool(env, config)
        pool.seed_warm(catalog["graph-bfs"], 2)
        plan1 = pool.acquire(catalog["graph-bfs"])
        pool.release(plan1.container)  # now HOT (manage_pause grace)
        plan2 = pool.acquire(catalog["graph-bfs"])
        assert plan2.kind == "hot"
        assert plan2.container is plan1.container

    def test_no_hot_without_manage_pause(self, env, config, catalog):
        pool, _ = make_pool(env, config, manage_pause=False)
        pool.seed_warm(catalog["graph-bfs"], 1)
        plan1 = pool.acquire(catalog["graph-bfs"])
        pool.release(plan1.container)
        assert plan1.container.state is ContainerState.PAUSED
        plan2 = pool.acquire(catalog["graph-bfs"])
        assert plan2.kind == "warm"

    def test_prewarm_used_before_cold(self, env, config, catalog):
        pool, _ = make_pool(env, config)
        pool.bootstrap_prewarm(1)
        plan = pool.acquire(catalog["sleep"])
        assert plan.kind == "prewarm"
        assert plan.container.function is catalog["sleep"]
        assert pool.prewarm_starts == 1
        assert not pool.prewarm_shells

    def test_prewarm_memory_delta_reserved(self, env, config, catalog):
        pool, memory = make_pool(env, config)
        pool.bootstrap_prewarm(1)  # 256 MiB shell
        before = memory.used_mb
        pool.acquire(catalog["dna-visualisation"])  # 512 MiB function
        assert memory.used_mb == before + (512 - 256)

    def test_busy_container_not_reused(self, env, config, catalog):
        pool, _ = make_pool(env, config)
        pool.seed_warm(catalog["graph-bfs"], 1)
        pool.acquire(catalog["graph-bfs"])
        plan2 = pool.acquire(catalog["graph-bfs"], allow_prewarm=False)
        assert plan2.kind == "cold"

    def test_acquire_fails_when_memory_exhausted_by_busy(self, env, config, catalog):
        pool, _ = make_pool(env, config, memory_mb=256)
        plan = pool.acquire(catalog["sleep"], allow_prewarm=False)  # 128 MiB busy
        assert plan is not None
        plan2 = pool.acquire(catalog["dna-visualisation"], allow_prewarm=False)
        assert plan2 is None  # 512 MiB needed, only 128 free, nothing evictable

    def test_wrong_function_warm_not_matched(self, env, config, catalog):
        pool, _ = make_pool(env, config)
        pool.seed_warm(catalog["sleep"], 1)
        plan = pool.acquire(catalog["graph-bfs"], allow_prewarm=False)
        assert plan.kind == "cold"


class TestEviction:
    def test_evict_frees_memory_and_counts(self, env, config, catalog):
        pool, memory = make_pool(env, config)
        pool.seed_warm(catalog["sleep"], 1)
        container = pool.containers[0]
        pool.evict(container)
        assert memory.used_mb == 0
        assert container.state is ContainerState.DEAD
        assert pool.evictions == 1
        env.run()  # let the daemon remove op finish
        assert pool.daemon.op_counts["remove"] == 1

    def test_cannot_evict_busy(self, env, config, catalog):
        pool, _ = make_pool(env, config)
        plan = pool.acquire(catalog["sleep"], allow_prewarm=False)
        with pytest.raises(ValueError):
            pool.evict(plan.container)

    def test_lru_order(self, env, config, catalog):
        pool, _ = make_pool(env, config)
        pool.seed_warm(catalog["sleep"], 1)
        first = pool.containers[0]

        def use_later(env):
            yield env.timeout(1.0)
            plan = pool.acquire(catalog["sleep"])
            yield env.timeout(0.1)
            pool.release(plan.container)

        env.process(use_later(env))
        env.run(until=2.0)
        pool.seed_warm(catalog["graph-bfs"], 2)
        idle = pool.idle_warm_containers()
        # graph-bfs seeds are newest; `first` (sleep, reused at t=1.0)
        # should not be the LRU head if another older existed; with one
        # sleep container it is simply ordered by last_used.
        assert idle[0].last_used <= idle[-1].last_used


class TestPauseLifecycle:
    def test_hot_container_pauses_after_grace(self, env, config, catalog):
        pool, _ = make_pool(env, config)
        pool.seed_warm(catalog["graph-bfs"], 1)
        plan = pool.acquire(catalog["graph-bfs"])
        pool.release(plan.container)
        assert plan.container.state is ContainerState.HOT
        env.run()  # grace + pause op
        assert plan.container.state is ContainerState.PAUSED

    def test_reuse_within_grace_cancels_pause(self, env, config, catalog):
        pool, _ = make_pool(env, config)
        pool.seed_warm(catalog["graph-bfs"], 1)

        def scenario(env):
            plan = pool.acquire(catalog["graph-bfs"])
            pool.release(plan.container)
            yield env.timeout(config.pause_grace_s / 2)
            plan2 = pool.acquire(catalog["graph-bfs"])
            assert plan2.kind == "hot"
            yield env.timeout(10.0)  # long past original grace
            assert plan2.container.busy

        env.process(scenario(env))
        env.run()

    def test_release_without_manage_pause_pauses_immediately(self, env, config, catalog):
        pool, _ = make_pool(env, config, manage_pause=False)
        pool.seed_warm(catalog["graph-bfs"], 1)
        plan = pool.acquire(catalog["graph-bfs"])
        pool.release(plan.container)
        assert plan.container.state is ContainerState.PAUSED
        env.run()
        assert pool.daemon.op_counts["pause"] == 0  # no daemon pause op

    def test_calls_served_counter(self, env, config, catalog):
        pool, _ = make_pool(env, config)
        pool.seed_warm(catalog["graph-bfs"], 1)
        for _ in range(3):
            plan = pool.acquire(catalog["graph-bfs"])
            pool.release(plan.container)
        assert plan.container.calls_served == 3
