"""Shared fixtures for node-layer tests."""

import pytest

from repro.node.config import NodeConfig
from repro.sim.core import Environment
from repro.workload.functions import catalog_by_name
from repro.workload.generator import Request


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def config():
    """A small, fast node: 2 cores, modest memory, cheap docker ops."""
    return NodeConfig(
        cores=2,
        memory_mb=4096,
        dispatch_op_s=0.05,
        create_op_s=0.2,
        remove_op_s=0.02,
        pause_op_s=0.05,
        pause_grace_s=0.5,
        cold_init_latency_s=0.1,
        cold_init_cpu_s=0.1,
        invoker_overhead_s=0.0,
        system_cpu_coeff_s=0.0,
    )


@pytest.fixture
def catalog():
    return catalog_by_name()


def make_request(catalog, name="graph-bfs", rid=0, release=0.0, service=0.1):
    return Request(rid, catalog[name], release, service)
