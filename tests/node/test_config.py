"""Tests for NodeConfig validation."""

import pytest

from repro.node.config import NodeConfig


class TestNodeConfig:
    def test_defaults_valid(self):
        cfg = NodeConfig(cores=10)
        assert cfg.cores == 10
        assert cfg.memory_mb == 32768
        assert cfg.effective_busy_limit == 10

    def test_busy_limit_override(self):
        cfg = NodeConfig(cores=10, busy_limit=25)
        assert cfg.effective_busy_limit == 25

    def test_invalid_cores(self):
        with pytest.raises(ValueError):
            NodeConfig(cores=0)

    def test_invalid_memory(self):
        with pytest.raises(ValueError):
            NodeConfig(cores=2, memory_mb=100)

    def test_negative_durations_rejected(self):
        with pytest.raises(ValueError):
            NodeConfig(cores=2, create_op_s=-0.1)
        with pytest.raises(ValueError):
            NodeConfig(cores=2, kappa=-1.0)
        with pytest.raises(ValueError):
            NodeConfig(cores=2, system_cpu_coeff_s=-0.5)

    def test_invalid_busy_limit(self):
        with pytest.raises(ValueError):
            NodeConfig(cores=2, busy_limit=0)

    def test_invalid_estimator_window(self):
        with pytest.raises(ValueError):
            NodeConfig(cores=2, estimator_window=0)

    def test_frozen(self):
        cfg = NodeConfig(cores=2)
        with pytest.raises(Exception):
            cfg.cores = 4  # type: ignore[misc]
