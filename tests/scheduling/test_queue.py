"""Tests for the stable priority queue."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduling.queue import StablePriorityQueue


class TestBasics:
    def test_pop_lowest_priority_first(self):
        q = StablePriorityQueue()
        q.push(3.0, "c")
        q.push(1.0, "a")
        q.push(2.0, "b")
        assert [q.pop()[1] for _ in range(3)] == ["a", "b", "c"]

    def test_ties_broken_fifo(self):
        q = StablePriorityQueue()
        for tag in "abcde":
            q.push(1.0, tag)
        assert [q.pop()[1] for _ in range(5)] == list("abcde")

    def test_pop_returns_priority(self):
        q = StablePriorityQueue()
        q.push(7.5, "x")
        priority, item = q.pop()
        assert priority == 7.5 and item == "x"

    def test_peek_nondestructive(self):
        q = StablePriorityQueue()
        q.push(2.0, "b")
        q.push(1.0, "a")
        assert q.peek() == (1.0, "a")
        assert len(q) == 2

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            StablePriorityQueue().pop()

    def test_len_and_bool(self):
        q = StablePriorityQueue()
        assert not q and len(q) == 0
        q.push(1.0, "a")
        assert q and len(q) == 1

    def test_iter_in_priority_order(self):
        q = StablePriorityQueue()
        q.push(2.0, "b")
        q.push(1.0, "a")
        q.push(3.0, "c")
        assert list(q) == ["a", "b", "c"]
        assert len(q) == 3  # iteration is non-destructive

    def test_iter_priority_then_fifo_order(self):
        # Regression: __iter__ heap-pops a shallow copy; equal priorities
        # must still surface in insertion (receipt) order.
        q = StablePriorityQueue()
        q.push(2.0, "b1")
        q.push(1.0, "a1")
        q.push(2.0, "b2")
        q.push(1.0, "a2")
        q.push(0.5, "z")
        assert list(q) == ["z", "a1", "a2", "b1", "b2"]
        # Unchanged by iteration, and popping still agrees with __iter__.
        assert len(q) == 5
        assert [q.pop()[1] for _ in range(5)] == ["z", "a1", "a2", "b1", "b2"]

    def test_iter_is_lazy_and_isolated(self):
        # Taking a prefix must not disturb the queue, and pushes made
        # mid-iteration must not corrupt an in-flight iterator's copy.
        q = StablePriorityQueue()
        for i in range(10):
            q.push(float(i), i)
        it = iter(q)
        assert next(it) == 0
        q.push(-1.0, "new-min")  # mutate mid-iteration
        assert next(it) == 1  # iterator sees the pre-push snapshot
        assert q.peek() == (-1.0, "new-min")
        assert len(q) == 11


class TestProperties:
    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False), max_size=200))
    @settings(max_examples=100)
    def test_pops_in_sorted_order(self, priorities):
        q = StablePriorityQueue()
        for idx, priority in enumerate(priorities):
            q.push(priority, idx)
        popped = [q.pop()[0] for _ in range(len(priorities))]
        assert popped == sorted(priorities)

    @given(st.lists(st.integers(0, 3), min_size=1, max_size=100))
    @settings(max_examples=100)
    def test_stability_within_priority_class(self, priorities):
        q = StablePriorityQueue()
        for idx, priority in enumerate(priorities):
            q.push(float(priority), idx)
        popped = [q.pop() for _ in range(len(priorities))]
        for klass in set(priorities):
            indices = [item for prio, item in popped if prio == klass]
            assert indices == sorted(indices)  # insertion order preserved
