"""Tests for the extension policies (oracle, ETAS-like, per-function RR)."""

import pytest

from repro.scheduling.estimator import RuntimeEstimator
from repro.scheduling.extra import (
    EXTRA_POLICIES,
    ClairvoyantSPT,
    EtasLike,
    RoundRobinPerFunction,
)
from repro.workload.functions import catalog_by_name
from repro.workload.generator import Request


def req(name: str, service: float, rid: int = 0) -> Request:
    return Request(rid, catalog_by_name()[name], 0.0, service)


class TestClairvoyant:
    def test_priority_is_true_service_time(self):
        policy = ClairvoyantSPT(RuntimeEstimator())
        assert policy.priority(req("sleep", 2.5), 0.0) == 2.5

    def test_oracle_beats_sept_on_mean_response(self):
        # The whole point of the oracle: it bounds SEPT from below.
        from repro.cluster.platform import FaaSPlatform
        from repro.node.invoker import Invoker
        from repro.node.config import NodeConfig
        from repro.sim.core import Environment
        from repro.workload.functions import sebs_catalog
        from repro.workload.scenarios import uniform_burst
        import numpy as np

        def mean_response(policy):
            env = Environment()
            invoker = Invoker(env, NodeConfig(cores=4), policy=policy)
            invoker.warm_up(sebs_catalog())
            scenario = uniform_burst(4, 30, np.random.default_rng(1))
            records = FaaSPlatform(env, [invoker]).run_scenario(scenario)
            return float(np.mean([r.response_time for r in records]))

        oracle = mean_response(ClairvoyantSPT(RuntimeEstimator()))
        sept = mean_response("SEPT")
        assert oracle <= sept * 1.1  # oracle no worse (tolerance for ties)


class TestEtasLike:
    def test_ema_initialises_to_first_sample(self):
        policy = EtasLike(RuntimeEstimator())
        policy.on_completed(req("sleep", 1.0), 2.0)
        assert policy.ema("sleep") == pytest.approx(2.0)

    def test_ema_update_rule(self):
        policy = EtasLike(RuntimeEstimator(), alpha=0.5)
        policy.on_completed(req("sleep", 1.0), 2.0)
        policy.on_completed(req("sleep", 1.0), 4.0)
        assert policy.ema("sleep") == pytest.approx(3.0)  # 0.5*4 + 0.5*2

    def test_priority_shape_matches_eect(self):
        policy = EtasLike(RuntimeEstimator())
        policy.on_completed(req("sleep", 1.0), 1.0)
        assert policy.priority(req("sleep", 1.0), 10.0) == pytest.approx(11.0)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            EtasLike(RuntimeEstimator(), alpha=0.0)
        with pytest.raises(ValueError):
            EtasLike(RuntimeEstimator(), alpha=1.5)

    def test_still_feeds_window_estimator(self):
        est = RuntimeEstimator()
        policy = EtasLike(est)
        policy.on_completed(req("sleep", 1.0), 3.0)
        assert est.expected_processing_time("sleep") == pytest.approx(3.0)


class TestRoundRobinPerFunction:
    def test_interleaves_functions(self):
        policy = RoundRobinPerFunction(RuntimeEstimator())
        p_a1 = policy.priority(req("sleep", 1.0), 0.0)
        p_a2 = policy.priority(req("sleep", 1.0), 0.0)
        p_b1 = policy.priority(req("graph-bfs", 0.01), 5.0)
        assert p_a1 == p_b1 == 0.0  # first calls tie -> FIFO among them
        assert p_a2 == 1.0  # second sleep falls behind first bfs


class TestRegistry:
    def test_extras_registered_separately(self):
        assert set(EXTRA_POLICIES) == {"ORACLE-SPT", "ETAS", "RR-FN"}
        from repro.scheduling.policies import POLICIES

        assert not set(EXTRA_POLICIES) & set(POLICIES)


class TestExtrasUnderPolicyRegistry:
    """The three extension policies as first-class registry citizens: built
    by name, runnable through ExperimentConfig, priorities honouring their
    documented ordering properties."""

    def test_all_three_buildable_by_name(self):
        from repro.scheduling.registry import build_policy

        assert isinstance(build_policy("ORACLE-SPT"), ClairvoyantSPT)
        assert isinstance(build_policy("ETAS"), EtasLike)
        assert isinstance(build_policy("RR-FN"), RoundRobinPerFunction)

    def test_all_three_run_through_experiment_config(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_experiment

        for name in ("ORACLE-SPT", "ETAS", "RR-FN"):
            result = run_experiment(
                ExperimentConfig(cores=4, intensity=10, policy=name, seed=1)
            )
            assert len(result.records) == 44  # 1.1 * 4 * 10
            assert result.summary().mean_response_time > 0

    def test_oracle_orders_by_true_service_time(self):
        from repro.scheduling.registry import build_policy

        oracle = build_policy("ORACLE-SPT")
        short = oracle.priority(req("graph-bfs", 0.05, rid=1), 10.0)
        long = oracle.priority(req("sleep", 3.0, rid=2), 0.0)
        assert short < long  # receipt times are irrelevant to the oracle

    def test_etas_priority_tracks_ema_not_window_mean(self):
        from repro.scheduling.registry import build_policy

        etas = build_policy("ETAS", {"alpha": 0.5})
        etas.on_completed(req("sleep", 1.0), 2.0)
        etas.on_completed(req("sleep", 1.0), 4.0)
        # EMA = 0.5*4 + 0.5*2 = 3; window mean would be 3 too — diverge it:
        etas.on_completed(req("sleep", 1.0), 4.0)  # EMA 3.5, mean 10/3
        assert etas.priority(req("sleep", 1.0), 10.0) == pytest.approx(13.5)

    def test_rr_fn_round_robin_order_property(self):
        from repro.scheduling.registry import build_policy

        rr = build_policy("RR-FN")
        # k-th call of any function gets priority k: two functions
        # interleave regardless of arrival times.
        priorities = [
            rr.priority(req("sleep", 1.0, rid=i), float(i)) for i in range(3)
        ] + [rr.priority(req("graph-bfs", 0.1, rid=9), 99.0)]
        assert priorities == [0.0, 1.0, 2.0, 0.0]

    def test_oracle_upper_bounds_sept_on_seeded_workload(self):
        # The oracle knows every true p(i); estimate-driven SEPT cannot
        # beat it on the same seeded workload (tolerance for ties).
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_experiment

        def mean_response(policy: str) -> float:
            cfg = ExperimentConfig(cores=4, intensity=30, policy=policy, seed=1)
            return run_experiment(cfg).summary().mean_response_time

        assert mean_response("ORACLE-SPT") <= mean_response("SEPT") * 1.05
