"""Tests for the scheduling-policy registry (repro.scheduling.registry)."""

import pytest

from repro.scheduling.estimator import RuntimeEstimator
from repro.scheduling.extra import EtasLike
from repro.scheduling.parametric import HybridFairCompletion, SmoothedSEPT
from repro.scheduling.policies import (
    POLICIES,
    FairChoice,
    FirstInFirstOut,
    SchedulingPolicy,
)
from repro.scheduling.registry import (
    POLICY_REGISTRY,
    REQUIRED,
    PolicyParam,
    PolicyRegistry,
    build_policy,
    get_policy,
    policy_names,
    policy_param_names,
)
from repro.workload.functions import catalog_by_name
from repro.workload.generator import Request


def req(name: str, service: float, rid: int = 0) -> Request:
    return Request(rid, catalog_by_name()[name], 0.0, service)


class TestCatalog:
    def test_all_builtin_policies_registered(self):
        assert set(policy_names()) == {
            "FIFO", "SEPT", "EECT", "RECT", "FC",
            "ORACLE-SPT", "ETAS", "RR-FN",
            "FC-HYBRID", "SEPT-EMA",
        }

    def test_legacy_policies_dict_unchanged(self):
        # The paper's five stay importable exactly as before; the registry
        # absorbs them without changing the historical surface.
        assert set(POLICIES) == {"FIFO", "SEPT", "EECT", "RECT", "FC"}

    def test_paper_five_marked_with_section(self):
        for name in POLICIES:
            assert get_policy(name).paper_section == "IV"

    def test_registry_iv_entries_match_legacy_dict(self):
        # The legacy POLICIES dict and the registry's paper-section
        # entries are two views over the same five classes; this pins
        # them together so neither can grow without the other.
        section_iv = {
            name for name in policy_names() if get_policy(name).paper_section == "IV"
        }
        assert section_iv == set(POLICIES)

    def test_starvation_freedom_matches_class_attribute(self):
        for name in policy_names():
            spec = get_policy(name)
            built = build_policy(name)
            assert spec.starvation_free == built.starvation_free, name

    def test_descriptions_present(self):
        for name in policy_names():
            assert get_policy(name).description


class TestLookup:
    def test_case_insensitive(self):
        assert get_policy("sept").name == "SEPT"
        assert get_policy("Fc-Hybrid").name == "FC-HYBRID"
        assert "sept-ema" in POLICY_REGISTRY

    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match="SEPT.*SEPT-EMA"):
            get_policy("SJF")

    def test_duplicate_registration_rejected(self):
        registry = PolicyRegistry()
        registry.register("X", description="first")(FirstInFirstOut)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("x", description="second")(FairChoice)

    def test_non_policy_registration_rejected(self):
        registry = PolicyRegistry()
        with pytest.raises(TypeError):
            registry.register("X", description="not a policy")(object())


class TestParams:
    def test_unknown_param_rejected_with_valid_listing(self):
        with pytest.raises(ValueError, match="alpha"):
            get_policy("ETAS").validate_params({"alhpa": 0.5})

    def test_defaults_merged(self):
        assert get_policy("ETAS").validate_params(None) == {"alpha": 0.3}
        merged = get_policy("SEPT-EMA").validate_params({"window": 3})
        assert merged == {"window": 3, "smoothing": 0.0}
        assert get_policy("SEPT-EMA").defaults() == {"window": None, "smoothing": 0.0}

    def test_parameterless_policy_rejects_any_param(self):
        with pytest.raises(ValueError, match=r"\(none\)"):
            get_policy("FIFO").validate_params({"alpha": 0.5})

    def test_required_param_enforced(self):
        registry = PolicyRegistry()

        @registry.register(
            "NEEDY",
            description="requires k",
            params=(PolicyParam("k", REQUIRED, "mandatory knob"),),
        )
        def _build(make_estimator, *, k):  # pragma: no cover - never built
            raise AssertionError

        with pytest.raises(ValueError, match="requires parameter"):
            registry.get("NEEDY").validate_params({})

    def test_policy_param_names_helper(self):
        assert policy_param_names("SEPT-EMA") == ["window", "smoothing"]
        assert policy_param_names("RECT") == []


class TestBuild:
    def test_builds_correct_classes(self):
        assert isinstance(build_policy("fifo"), FirstInFirstOut)
        assert isinstance(build_policy("ETAS"), EtasLike)
        assert isinstance(build_policy("FC-HYBRID"), HybridFairCompletion)
        assert isinstance(build_policy("SEPT-EMA"), SmoothedSEPT)

    def test_node_estimator_defaults_reach_the_policy(self):
        policy = build_policy("FC", window=7, frequency_horizon=30.0)
        assert policy.estimator.window == 7
        assert policy.estimator.frequency_horizon == 30.0

    def test_declared_window_overrides_node_default(self):
        # SEPT-EMA routes its `window` parameter into estimator
        # construction; the node default only applies when unset.
        policy = build_policy("SEPT-EMA", {"window": 3}, window=10)
        assert policy.estimator.window == 3
        default = build_policy("SEPT-EMA", {}, window=10)
        assert default.estimator.window == 10

    def test_node_estimator_window_reaches_sept_ema_through_config(self):
        # window=None (the declared default) must defer to the node's
        # estimator_window — an ablation over node_overrides applies to
        # SEPT-EMA exactly like to SEPT.
        from repro.experiments.config import ExperimentConfig
        from repro.node.invoker import Invoker
        from repro.sim.core import Environment

        cfg = ExperimentConfig(
            cores=4, intensity=10, policy="SEPT-EMA",
            node_overrides=(("estimator_window", 20),),
        )
        invoker = Invoker(
            Environment(), cfg.node_config(),
            policy=cfg.policy, policy_params=cfg.policy_kwargs(),
        )
        assert invoker.policy.estimator.window == 20

    def test_constructor_params_forwarded(self):
        assert build_policy("ETAS", {"alpha": 0.9}).alpha == 0.9

    def test_invalid_param_value_raises(self):
        with pytest.raises(ValueError):
            build_policy("ETAS", {"alpha": 0.0})
        with pytest.raises(ValueError):
            build_policy("SEPT-EMA", {"smoothing": 1.0})
        with pytest.raises(ValueError):
            build_policy("SEPT-EMA", {"window": 0})
        with pytest.raises(ValueError):
            build_policy("FC-HYBRID", {"deadline_weight": 1.5})

    def test_window_with_smoothing_rejected_as_inert(self):
        # With smoothing > 0 the priority reads only the EMA — a window
        # would change the fingerprint but not the results.
        with pytest.raises(ValueError, match="not both"):
            build_policy("SEPT-EMA", {"window": 3, "smoothing": 0.4})
        # An explicitly spelled-out smoothing=0.0 default stays valid.
        assert build_policy("SEPT-EMA", {"window": 3, "smoothing": 0.0}).estimator.window == 3

    def test_validator_runs_at_validate_params_time(self):
        # Bad values and combinations fail in validate_params — which is
        # what ExperimentConfig calls at construction — not only when the
        # policy is eventually built inside a run.
        with pytest.raises(ValueError, match="not both"):
            get_policy("SEPT-EMA").validate_params({"window": 3, "smoothing": 0.4})
        with pytest.raises(ValueError, match="must be a number"):
            get_policy("ETAS").validate_params({"alpha": "high"})
        with pytest.raises(ValueError, match="must be a number"):
            get_policy("FC-HYBRID").validate_params({"deadline_weight": True})

    def test_invalid_params_fail_at_config_construction(self):
        from repro.experiments.config import ExperimentConfig

        with pytest.raises(ValueError, match="not both"):
            ExperimentConfig(
                cores=4, intensity=10, policy="SEPT-EMA",
                policy_params={"window": 3, "smoothing": 0.4},
            )
        with pytest.raises(ValueError, match="must be a number"):
            ExperimentConfig(
                cores=4, intensity=10, policy="ETAS",
                policy_params={"alpha": "high"},
            )

    def test_integral_float_window_canonicalised(self):
        # 3.0 and 3 are the same experiment; the validator canonicalises
        # so they share one config — and one cache fingerprint.
        from repro.experiments.config import ExperimentConfig

        as_float = ExperimentConfig(
            cores=4, intensity=10, policy="SEPT-EMA", policy_params={"window": 3.0}
        )
        as_int = ExperimentConfig(
            cores=4, intensity=10, policy="SEPT-EMA", policy_params={"window": 3}
        )
        assert as_float == as_int
        assert as_float.policy_kwargs()["window"] == 3

    def test_warm_up_fills_policy_configured_window(self):
        # A policy-widened estimator window must be warmed to its own
        # length, not the node default's.
        from repro.node.config import NodeConfig
        from repro.node.invoker import Invoker
        from repro.sim.core import Environment
        from repro.workload.functions import sebs_catalog

        invoker = Invoker(
            Environment(), NodeConfig(cores=20, estimator_window=10),
            policy="SEPT-EMA", policy_params={"window": 20},
        )
        invoker.warm_up(sebs_catalog())
        assert invoker.policy.estimator.sample_count("sleep") == 20

    def test_custom_registration_is_immediately_buildable(self):
        registry = PolicyRegistry()

        @registry.register(
            "LIFO-ISH",
            description="newest first",
            params=(PolicyParam("bias", 0.0, "priority offset"),),
        )
        class LastInFirstOut(SchedulingPolicy):
            def __init__(self, estimator: RuntimeEstimator, bias: float = 0.0):
                super().__init__(estimator)
                self.bias = bias

            def priority(self, request, received_at):
                return self.bias - received_at

        built = registry.get("lifo-ish").build({"bias": 2.0})
        assert isinstance(built, LastInFirstOut)
        assert built.priority(req("sleep", 1.0), 5.0) == -3.0


class TestHybridFairCompletion:
    def test_weight_zero_is_exactly_fc(self):
        est = RuntimeEstimator()
        hybrid = HybridFairCompletion(est, deadline_weight=0.0)
        fc = FairChoice(est)
        est.record_completion("sleep", 2.0)
        est.record_arrival("sleep", 0.0)
        r = req("sleep", 2.0)
        assert hybrid.priority(r, 10.0) == fc.priority(r, 10.0)

    def test_weight_one_is_exactly_eect(self):
        est = RuntimeEstimator()
        hybrid = HybridFairCompletion(est, deadline_weight=1.0)
        est.record_completion("sleep", 2.0)
        r = req("sleep", 2.0)
        assert hybrid.priority(r, 10.0) == 10.0 + 2.0

    def test_blend_is_convex(self):
        est = RuntimeEstimator()
        est.record_completion("sleep", 2.0)
        est.record_arrival("sleep", 9.0)
        r = req("sleep", 2.0)
        lo = HybridFairCompletion(est, deadline_weight=0.0).priority(r, 10.0)
        hi = HybridFairCompletion(est, deadline_weight=1.0).priority(r, 10.0)
        mid = HybridFairCompletion(est, deadline_weight=0.5).priority(r, 10.0)
        assert mid == pytest.approx(0.5 * lo + 0.5 * hi)


class TestSmoothedSEPT:
    def test_zero_smoothing_matches_window_mean(self):
        policy = build_policy("SEPT-EMA", {"window": 2})
        policy.on_completed(req("sleep", 1.0), 2.0)
        policy.on_completed(req("sleep", 1.0), 4.0)
        policy.on_completed(req("sleep", 1.0), 6.0)  # 2.0 falls out of window
        assert policy.priority(req("sleep", 1.0), 0.0) == pytest.approx(5.0)

    def test_positive_smoothing_orders_by_ema(self):
        policy = build_policy("SEPT-EMA", {"smoothing": 0.5})
        policy.on_completed(req("sleep", 1.0), 2.0)
        policy.on_completed(req("sleep", 1.0), 4.0)
        assert policy.ema("sleep") == pytest.approx(3.0)  # 0.5*4 + 0.5*2
        assert policy.priority(req("sleep", 1.0), 0.0) == pytest.approx(3.0)

    def test_never_seen_function_has_estimate_zero(self):
        policy = build_policy("SEPT-EMA", {"smoothing": 0.5})
        assert policy.priority(req("sleep", 1.0), 0.0) == 0.0


class TestWarmupSeedsEmaPolicies:
    """Invoker.warm_up routes through policy.record_warmup, so EMA-keeping
    policies start seeded exactly like the window-estimator ones."""

    @pytest.mark.parametrize(
        "policy,params", [("ETAS", {}), ("SEPT-EMA", {"smoothing": 0.4})]
    )
    def test_warm_up_seeds_the_ema(self, policy, params):
        from repro.node.config import NodeConfig
        from repro.node.invoker import Invoker
        from repro.sim.core import Environment
        from repro.workload.functions import sebs_catalog

        invoker = Invoker(
            Environment(), NodeConfig(cores=4), policy=policy, policy_params=params
        )
        invoker.warm_up(sebs_catalog())
        for spec in sebs_catalog():
            assert invoker.policy.ema(spec.name) == pytest.approx(
                spec.service_distribution.median
            )
            # The window estimator is seeded identically (same samples).
            assert invoker.policy.estimator.expected_processing_time(
                spec.name
            ) == pytest.approx(spec.service_distribution.median)
