"""Tests for the five scheduling policies (paper Sect. IV)."""

import pytest

from repro.scheduling.estimator import RuntimeEstimator
from repro.scheduling.policies import (
    POLICIES,
    EarliestExpectedCompletionTime,
    FairChoice,
    FirstInFirstOut,
    RecentExpectedCompletionTime,
    SchedulingPolicy,
    ShortestExpectedProcessingTime,
    make_policy,
)
from repro.workload.functions import catalog_by_name
from repro.workload.generator import Request


def req(name: str, rid: int = 0, release: float = 0.0) -> Request:
    return Request(rid, catalog_by_name()[name], release, 1.0)


class TestRegistry:
    def test_all_five_policies_registered(self):
        assert set(POLICIES) == {"FIFO", "SEPT", "EECT", "RECT", "FC"}

    def test_make_policy_case_insensitive(self):
        assert isinstance(make_policy("sept"), ShortestExpectedProcessingTime)
        assert isinstance(make_policy("Fc"), FairChoice)

    def test_make_policy_unknown(self):
        with pytest.raises(KeyError):
            make_policy("SJF")

    def test_make_policy_shares_estimator(self):
        est = RuntimeEstimator()
        policy = make_policy("SEPT", est)
        assert policy.estimator is est

    def test_starvation_free_flags(self):
        # Paper Sect. IV: EECT and RECT prevent starvation; SEPT and FC may
        # starve.
        assert EarliestExpectedCompletionTime.starvation_free
        assert RecentExpectedCompletionTime.starvation_free
        assert FirstInFirstOut.starvation_free
        assert not ShortestExpectedProcessingTime.starvation_free
        assert not FairChoice.starvation_free


class TestFIFO:
    def test_priority_is_receipt_time(self):
        policy = make_policy("FIFO")
        assert policy.on_received(req("graph-bfs"), 12.5) == 12.5
        assert policy.on_received(req("dna-visualisation"), 13.5) == 13.5


class TestSEPT:
    def test_priority_is_expected_processing_time(self):
        policy = make_policy("SEPT")
        policy.estimator.record_completion("graph-bfs", 0.01)
        policy.estimator.record_completion("dna-visualisation", 8.5)
        assert policy.on_received(req("graph-bfs"), 0.0) == pytest.approx(0.01)
        assert policy.on_received(req("dna-visualisation"), 0.0) == pytest.approx(8.5)

    def test_unknown_function_gets_zero(self):
        policy = make_policy("SEPT")
        assert policy.on_received(req("sleep"), 100.0) == 0.0

    def test_receipt_time_irrelevant(self):
        policy = make_policy("SEPT")
        policy.estimator.record_completion("sleep", 1.0)
        assert policy.priority(req("sleep"), 0.0) == policy.priority(req("sleep"), 999.0)


class TestEECT:
    def test_priority_is_receipt_plus_estimate(self):
        policy = make_policy("EECT")
        policy.estimator.record_completion("compression", 0.8)
        assert policy.on_received(req("compression"), 10.0) == pytest.approx(10.8)

    def test_starvation_bound(self):
        # If r'(j) > r'(i) + E(p(i)), j is served after i (paper Sect. IV).
        policy = make_policy("EECT")
        policy.estimator.record_completion("compression", 0.8)
        policy.estimator.record_completion("graph-bfs", 0.01)
        early_long = policy.on_received(req("compression"), 0.0)
        late_short = policy.on_received(req("graph-bfs"), 1.0)
        assert late_short > early_long


class TestRECT:
    def test_first_call_anchored_at_own_receipt(self):
        policy = make_policy("RECT")
        policy.estimator.record_completion("sleep", 1.0)
        assert policy.on_received(req("sleep"), 5.0) == pytest.approx(6.0)

    def test_subsequent_call_anchored_at_previous_receipt(self):
        policy = make_policy("RECT")
        policy.estimator.record_completion("sleep", 1.0)
        policy.on_received(req("sleep"), 5.0)
        # Second call at t=9: anchor is the previous receipt (5.0).
        assert policy.on_received(req("sleep"), 9.0) == pytest.approx(6.0)

    def test_anchor_increases_over_time(self):
        policy = make_policy("RECT")
        policy.estimator.record_completion("sleep", 1.0)
        p1 = policy.on_received(req("sleep"), 5.0)
        policy.on_received(req("sleep"), 9.0)
        p3 = policy.on_received(req("sleep"), 20.0)
        assert p3 > p1  # r̄ is increasing -> no starvation


class TestFairChoice:
    def test_priority_is_count_times_estimate(self):
        policy = make_policy("FC")
        policy.estimator.record_completion("sleep", 1.0)
        # First call: no recorded arrivals yet -> count 0 -> priority 0.
        assert policy.on_received(req("sleep"), 0.0) == 0.0
        # Second call: one arrival within T -> 1 * 1.0.
        assert policy.on_received(req("sleep"), 1.0) == pytest.approx(1.0)
        assert policy.on_received(req("sleep"), 2.0) == pytest.approx(2.0)

    def test_frequency_window_forgets(self):
        policy = make_policy("FC", frequency_horizon=10.0)
        policy.estimator.record_completion("sleep", 1.0)
        policy.on_received(req("sleep"), 0.0)
        policy.on_received(req("sleep"), 1.0)
        # At t=50 both previous arrivals are outside T=10.
        assert policy.on_received(req("sleep"), 50.0) == 0.0

    def test_rare_long_beats_frequent_short(self):
        # The fairness mechanism (paper Sect. VII-D): a rarely-called long
        # function outranks a frequently-called short one once the short
        # function's recent consumption is higher.
        policy = make_policy("FC")
        policy.estimator.record_completion("dna-visualisation", 8.5)
        policy.estimator.record_completion("graph-bfs", 0.01)
        for t in range(1000):
            policy.on_received(req("graph-bfs"), t * 0.05)
        dna_priority = policy.on_received(req("dna-visualisation"), 50.0)
        bfs_priority = policy.on_received(req("graph-bfs"), 50.0)
        assert dna_priority < bfs_priority


class TestBookkeeping:
    def test_on_completed_feeds_estimator(self):
        policy = make_policy("SEPT")
        policy.on_completed(req("sleep"), 1.5)
        assert policy.estimator.expected_processing_time("sleep") == pytest.approx(1.5)

    def test_base_class_is_abstract(self):
        policy = SchedulingPolicy(RuntimeEstimator())
        with pytest.raises(NotImplementedError):
            policy.priority(req("sleep"), 0.0)

    def test_on_received_records_arrival_after_priority(self):
        # RECT's correctness depends on this ordering: priority must use the
        # PREVIOUS arrival, not the current one.
        policy = make_policy("RECT")
        policy.estimator.record_completion("sleep", 0.0)
        policy.on_received(req("sleep"), 3.0)
        assert policy.estimator.previous_arrival("sleep") == 3.0
