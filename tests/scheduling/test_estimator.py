"""Tests for the sliding-window runtime estimator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduling.estimator import RuntimeEstimator


class TestProcessingTimeEstimate:
    def test_unknown_function_estimates_zero(self):
        # Paper Sect. IV-B: "if a function has never been executed, we set
        # its estimated execution time to 0".
        est = RuntimeEstimator()
        assert est.expected_processing_time("never-seen") == 0.0

    def test_single_sample(self):
        est = RuntimeEstimator()
        est.record_completion("f", 2.0)
        assert est.expected_processing_time("f") == pytest.approx(2.0)

    def test_mean_of_samples(self):
        est = RuntimeEstimator()
        for value in (1.0, 2.0, 3.0):
            est.record_completion("f", value)
        assert est.expected_processing_time("f") == pytest.approx(2.0)

    def test_window_drops_oldest(self):
        est = RuntimeEstimator(window=3)
        for value in (10.0, 1.0, 1.0, 1.0):
            est.record_completion("f", value)
        assert est.expected_processing_time("f") == pytest.approx(1.0)

    def test_default_window_is_ten(self):
        # Paper: "at most 10 recent executions", validated in [18].
        est = RuntimeEstimator()
        for _ in range(10):
            est.record_completion("f", 100.0)
        est.record_completion("f", 0.0)
        # Window now holds nine 100s and one 0 -> mean 90.
        assert est.expected_processing_time("f") == pytest.approx(90.0)
        assert est.sample_count("f") == 10

    def test_functions_independent(self):
        est = RuntimeEstimator()
        est.record_completion("a", 1.0)
        est.record_completion("b", 9.0)
        assert est.expected_processing_time("a") == pytest.approx(1.0)
        assert est.expected_processing_time("b") == pytest.approx(9.0)

    def test_negative_time_rejected(self):
        est = RuntimeEstimator()
        with pytest.raises(ValueError):
            est.record_completion("f", -1.0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            RuntimeEstimator(window=0)
        with pytest.raises(ValueError):
            RuntimeEstimator(frequency_horizon=0.0)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=60))
    @settings(max_examples=100)
    def test_estimate_is_window_mean_property(self, values):
        est = RuntimeEstimator(window=10)
        for v in values:
            est.record_completion("f", v)
        window = values[-10:]
        assert est.expected_processing_time("f") == pytest.approx(
            sum(window) / len(window), rel=1e-9, abs=1e-9
        )

    @given(st.lists(st.floats(min_value=0, max_value=1e3), min_size=1, max_size=40))
    @settings(max_examples=50)
    def test_estimate_bounded_by_extremes(self, values):
        est = RuntimeEstimator(window=10)
        for v in values:
            est.record_completion("f", v)
        estimate = est.expected_processing_time("f")
        assert min(values[-10:]) - 1e-9 <= estimate <= max(values[-10:]) + 1e-9


class TestArrivalHistory:
    def test_recent_call_count_window(self):
        est = RuntimeEstimator(frequency_horizon=60.0)
        est.record_arrival("f", 0.0)
        est.record_arrival("f", 30.0)
        est.record_arrival("f", 59.0)
        assert est.recent_call_count("f", 59.0) == 3
        assert est.recent_call_count("f", 65.0) == 2  # t=0 fell out
        assert est.recent_call_count("f", 125.0) == 0

    def test_unknown_function_zero_count(self):
        est = RuntimeEstimator()
        assert est.recent_call_count("nope", 10.0) == 0

    def test_previous_arrival(self):
        est = RuntimeEstimator()
        assert est.previous_arrival("f") is None
        est.record_arrival("f", 5.0)
        assert est.previous_arrival("f") == 5.0
        est.record_arrival("f", 9.0)
        assert est.previous_arrival("f") == 9.0

    def test_counts_per_function(self):
        est = RuntimeEstimator()
        est.record_arrival("a", 1.0)
        est.record_arrival("b", 2.0)
        est.record_arrival("a", 3.0)
        assert est.recent_call_count("a", 3.0) == 2
        assert est.recent_call_count("b", 3.0) == 1
