"""Cross-cutting property-based tests on full platform runs.

These check invariants that must hold for ANY workload and ANY policy:
conservation (every request answered exactly once), causality (timeline
monotonicity), and the no-oversubscription guarantee of our invoker.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.platform import FaaSPlatform
from repro.node.baseline import BaselineInvoker
from repro.node.config import NodeConfig
from repro.node.invoker import Invoker
from repro.sim.core import Environment
from repro.workload.functions import sebs_catalog
from repro.workload.generator import BurstScenario, Request


@st.composite
def small_scenarios(draw):
    """Random workloads: arbitrary arrival times and service times."""
    catalog = sebs_catalog()
    n = draw(st.integers(min_value=1, max_value=25))
    requests = []
    for rid in range(n):
        spec = catalog[draw(st.integers(0, len(catalog) - 1))]
        release = draw(st.floats(min_value=0.0, max_value=30.0))
        service = draw(st.floats(min_value=1e-3, max_value=5.0))
        requests.append(Request(rid, spec, release, service))
    return BurstScenario(requests=requests, window=30.0)


def run_platform(scenario, policy):
    env = Environment()
    config = NodeConfig(cores=2, memory_mb=8192)
    if policy == "baseline":
        invoker = BaselineInvoker(env, config)
    else:
        invoker = Invoker(env, config, policy=policy)
    invoker.warm_up(sebs_catalog())
    platform = FaaSPlatform(env, [invoker])
    return invoker, platform.run_scenario(scenario)


@pytest.mark.parametrize("policy", ["baseline", "FIFO", "SEPT", "EECT", "RECT", "FC"])
class TestConservationPerPolicy:
    @given(scenario=small_scenarios())
    @settings(max_examples=15, deadline=None)
    def test_every_request_answered_exactly_once(self, policy, scenario):
        _, records = run_platform(scenario, policy)
        assert sorted(r.rid for r in records) == sorted(r.rid for r in scenario)

    @given(scenario=small_scenarios())
    @settings(max_examples=15, deadline=None)
    def test_timeline_causality(self, policy, scenario):
        _, records = run_platform(scenario, policy)
        for record in records:
            assert record.release_time <= record.received_at
            assert record.received_at <= record.dispatched_at
            assert record.dispatched_at <= record.exec_start
            assert record.exec_start <= record.exec_end
            assert record.exec_end <= record.completed_at

    @given(scenario=small_scenarios())
    @settings(max_examples=10, deadline=None)
    def test_execution_at_least_service_time(self, policy, scenario):
        # A call can never finish faster than its intrinsic demand.
        _, records = run_platform(scenario, policy)
        by_rid = {r.rid: r for r in scenario}
        for record in records:
            assert record.processing_time >= by_rid[record.rid].service_time - 1e-6


class TestOurInvokerGuarantees:
    @given(scenario=small_scenarios())
    @settings(max_examples=15, deadline=None)
    def test_cpu_bank_never_oversubscribed(self, scenario):
        invoker, _ = run_platform(scenario, "SEPT")
        assert invoker.cpu.peak_tasks <= invoker.config.cores

    @given(scenario=small_scenarios())
    @settings(max_examples=15, deadline=None)
    def test_work_conservation_on_cpu_bank(self, scenario):
        # Delivered CPU work equals submitted work: the processor-sharing
        # bank neither creates nor loses core-seconds (kappa never fires
        # for our invoker since it cannot oversubscribe).
        invoker, records = run_platform(scenario, "FIFO")
        system_work = invoker.config.system_cpu_coeff_s  # per-call scale
        cpu_work = sum(r.service_time for r in scenario) - sum(
            req.io_time for req in scenario
        )
        assert invoker.cpu.delivered_work >= cpu_work - 1e-6


class TestStarvationFreedom:
    def test_eect_serves_everything_under_persistent_short_stream(self):
        # Adversarial pattern for SEPT-like policies: a steady stream of
        # short calls plus one long call.  EECT/RECT must finish the long
        # call well before the stream ends; SEPT parks it at the end.
        catalog = {s.name: s for s in sebs_catalog()}

        def finish_of_long(policy):
            # Shorts flood from t=0 faster than the 2-core node can drain,
            # so the queue never empties; the long call lands at t=1 into
            # an already-saturated node.
            requests = [
                Request(i, catalog["graph-bfs"], 0.02 * i, 0.3)
                for i in range(1, 1500)
            ]
            requests.append(Request(0, catalog["dna-visualisation"], 1.0, 8.0))
            scenario = BurstScenario(requests=requests, window=30.0)
            _, records = run_platform(scenario, policy)
            return next(r.completed_at for r in records if r.rid == 0)

        sept_finish = finish_of_long("SEPT")
        assert finish_of_long("EECT") < sept_finish
        assert finish_of_long("RECT") < sept_finish
