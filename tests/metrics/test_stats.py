"""Tests for summary statistics and box stats."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.stats import box_stats, percentile, summarize
from tests.metrics.test_records import record


class TestPercentile:
    def test_median_of_odd_list(self):
        assert percentile([1, 2, 3], 50) == 2.0

    def test_interpolation(self):
        assert percentile([0.0, 1.0], 50) == 0.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=100))
    @settings(max_examples=100)
    def test_percentile_bounds_property(self, values):
        for q in (0, 25, 50, 75, 95, 100):
            p = percentile(values, q)
            assert min(values) <= p <= max(values)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=100))
    @settings(max_examples=100)
    def test_percentile_monotone_in_q(self, values):
        ps = [percentile(values, q) for q in (5, 25, 50, 75, 95)]
        assert all(a <= b + 1e-12 for a, b in zip(ps, ps[1:]))


class TestBoxStats:
    def test_quartiles(self):
        box = box_stats(list(range(1, 101)))
        assert box.q1 == pytest.approx(25.75)
        assert box.median == pytest.approx(50.5)
        assert box.q3 == pytest.approx(75.25)
        assert box.n == 100

    def test_whiskers_clip_outliers(self):
        values = [1.0] * 50 + [2.0] * 50 + [1000.0]
        box = box_stats(values)
        assert box.whisker_high < 1000.0

    def test_whiskers_span_data_without_outliers(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        box = box_stats(values)
        assert box.whisker_low == 1.0
        assert box.whisker_high == 5.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            box_stats([])

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200))
    @settings(max_examples=100)
    def test_box_invariants_property(self, values):
        box = box_stats(values)
        assert box.whisker_low <= box.q1 <= box.median <= box.q3 <= box.whisker_high
        eps = 1e-9 * (1.0 + max(values))
        assert min(values) - eps <= box.mean <= max(values) + eps


class TestSummarize:
    def _records(self, n=10):
        return [
            record(rid=i, completed_at=10.0 + (i + 1) * 1.0, release_time=10.0)
            for i in range(n)
        ]

    def test_counts_and_mean(self):
        stats = summarize(self._records(4))  # responses 1,2,3,4
        assert stats.n_calls == 4
        assert stats.mean_response_time == pytest.approx(2.5)

    def test_percentile_keys(self):
        stats = summarize(self._records())
        assert set(stats.response_time_percentiles) == {50, 75, 95, 99}
        assert set(stats.stretch_percentiles) == {50, 75, 95, 99}

    def test_max_completion(self):
        stats = summarize(self._records(5))
        assert stats.max_completion_time == pytest.approx(15.0)

    def test_cold_start_count(self):
        records = self._records(3) + [record(rid=99, cold_start=True)]
        assert summarize(records).cold_starts == 1

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_as_row_layout(self):
        stats = summarize(self._records())
        row = stats.as_row()
        assert len(row) == 11  # R avg + 4 pcts, S avg + 4 pcts, max c(i)
        assert row[0] == stats.mean_response_time
        assert row[-1] == stats.max_completion_time

    def test_stretch_consistent_with_reference(self):
        records = [record(rid=0, completed_at=11.2, release_time=10.0)]
        stats = summarize(records)
        assert stats.mean_stretch == pytest.approx(1.2 / 0.012)
