"""Tests for text report rendering."""

from repro.metrics.report import format_ratio, format_table, render_summary_table
from repro.metrics.stats import summarize
from tests.metrics.test_records import record


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        out = format_table(["a", "b"], [[1, 2.5], ["x", 1234.5]])
        assert "a" in out and "b" in out
        assert "1,234" in out or "1234" in out
        assert "x" in out

    def test_title(self):
        out = format_table(["h"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_alignment_consistent(self):
        out = format_table(["col"], [[1], [22], [333]])
        lines = out.splitlines()
        assert len({len(line) for line in lines}) == 1  # rectangular

    def test_float_formatting(self):
        out = format_table(["v"], [[0.123456], [12.3456], [0]])
        assert "0.12" in out
        assert "12.3" in out


class TestSummaryTable:
    def _stats(self):
        return summarize(
            [record(rid=i, completed_at=10.0 + i + 1.0) for i in range(5)]
        )

    def test_renders_all_configs(self):
        out = render_summary_table([("cfg-a", self._stats()), ("cfg-b", self._stats())])
        assert "cfg-a" in out and "cfg-b" in out
        assert "R.avg" in out and "S.p99" in out

    def test_without_stretch(self):
        out = render_summary_table([("cfg", self._stats())], include_stretch=False)
        assert "S.avg" not in out


class TestFormatRatio:
    def test_ratio_rendering(self):
        assert "(x2.00)" in format_ratio(4.0, 2.0)

    def test_zero_measured(self):
        assert "->" in format_ratio(4.0, 0.0)
