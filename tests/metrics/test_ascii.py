"""Tests for ASCII box-plot rendering."""

import pytest

from repro.metrics.ascii import render_boxplot
from repro.metrics.stats import box_stats


class TestRenderBoxplot:
    def _entries(self):
        return [
            ("FIFO", box_stats([10, 20, 30, 40, 50])),
            ("SEPT", box_stats([1, 2, 3, 4, 5])),
        ]

    def test_contains_labels_and_glyphs(self):
        out = render_boxplot(self._entries(), title="demo")
        assert "FIFO" in out and "SEPT" in out
        assert "demo" in out
        # Median always drawn; the mean marker may coincide with it.
        assert "[" in out and "]" in out and "#" in out

    def test_mean_marker_when_distinct_from_median(self):
        skewed = [("skew", box_stats([1.0] * 9 + [100.0]))]
        out = render_boxplot(skewed)
        assert "*" in out and "#" in out

    def test_axis_annotation(self):
        out = render_boxplot(self._entries())
        assert "axis: linear" in out

    def test_log_scale(self):
        entries = [("x", box_stats([1, 10, 100, 1000]))]
        out = render_boxplot(entries, log_scale=True)
        assert "axis: log10" in out

    def test_rows_aligned(self):
        out = render_boxplot(self._entries())
        plot_lines = [l for l in out.splitlines() if "med=" in l]
        starts = {line.index("|") for line in plot_lines if "|" in line}
        assert len(plot_lines) == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_boxplot([])

    def test_narrow_width_rejected(self):
        with pytest.raises(ValueError):
            render_boxplot(self._entries(), width=5)

    def test_degenerate_distribution(self):
        out = render_boxplot([("const", box_stats([2.0, 2.0, 2.0]))])
        assert "med=2" in out

    def test_unit_suffix(self):
        out = render_boxplot(self._entries(), unit="s")
        assert "med=3s" in out or "med=30s" in out
