"""Record (de)serialization used by the on-disk result cache."""

import json
import math

import pytest

from repro.metrics.records import CallRecord
from repro.metrics.serialize import (
    record_from_dict,
    record_to_dict,
    records_from_dicts,
    records_to_dicts,
)


def make_record(**overrides) -> CallRecord:
    base = dict(
        rid=7,
        function_name="dna-visualisation",
        invoker="SEPT-node",
        release_time=0.1 + 0.2,  # deliberately not exactly 0.3
        received_at=0.30000000000000004,
        dispatched_at=0.5,
        exec_start=0.6,
        exec_end=1.9,
        completed_at=2.0,
        service_time=1.3,
        reference_response_time=1.25,
        cold_start=False,
        start_kind="warm",
    )
    base.update(overrides)
    return CallRecord(**base)


class TestRecordSerialize:
    def test_round_trip_is_equal(self):
        record = make_record()
        assert record_from_dict(record_to_dict(record)) == record

    def test_json_round_trip_preserves_float_bits(self):
        record = make_record(release_time=1 / 3, completed_at=math.pi)
        data = json.loads(json.dumps(record_to_dict(record)))
        loaded = record_from_dict(data)
        assert loaded.release_time == record.release_time
        assert loaded.completed_at == record.completed_at
        # Derived metrics therefore match bit-for-bit too.
        assert loaded.response_time == record.response_time
        assert loaded.stretch == record.stretch

    def test_unknown_keys_ignored(self):
        data = record_to_dict(make_record())
        data["added_in_future_version"] = 123
        assert record_from_dict(data) == make_record()

    def test_missing_key_raises(self):
        data = record_to_dict(make_record())
        del data["rid"]
        with pytest.raises(KeyError):
            record_from_dict(data)

    def test_list_helpers(self):
        records = [make_record(rid=i) for i in range(3)]
        assert records_from_dicts(records_to_dicts(records)) == records
