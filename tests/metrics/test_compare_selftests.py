"""Self-calibrating tests of the statistics in repro.metrics.compare.

Statistical machinery is uniquely easy to get subtly wrong — an
off-by-one in the exact Mann-Whitney enumeration or a bad tie correction
yields p-values that *look* plausible on any single comparison.  These
tests pin the implementation against ground truth we control:

* **Null calibration** — on two samples drawn from the *same* seeded
  distribution, a correct test rejects at rate ≈ α.  Run 1000 resampled
  trials and check the rejection rate sits within binomial noise of α,
  both uncorrected (per test) and Holm-corrected (family-wise).
* **Power** — a seeded 20% location shift at n=30 seeds must be detected
  (the effect the paper's policy gaps correspond to).
* **Exact small-n values** — pinned against hand-computed null
  distributions (the 3v3 and 4v4 tables one can enumerate on paper).
* **Tie/degenerate edges** — all-equal samples, n=1, empty input.
"""

import math
import random

import pytest

from repro.metrics.compare import (
    BootstrapCI,
    bootstrap_diff_ci,
    cliffs_delta,
    effect_magnitude,
    holm_bonferroni,
    mann_whitney_u,
)

ALPHA = 0.05
#: 1000 Bernoulli(α) trials: sd = sqrt(α(1-α)/1000) ≈ 0.0069.  ±4 sd keeps
#: the flake probability ~1e-4 while still catching a mis-calibrated test
#: (a factor-2 error in p lands ~0.10 or ~0.01, both far outside).
TRIALS = 1000
TOLERANCE = 4 * math.sqrt(ALPHA * (1 - ALPHA) / TRIALS)


class TestNullCalibration:
    def test_rejection_rate_matches_alpha_on_identical_distributions(self):
        rng = random.Random(20260808)
        rejections = 0
        for _ in range(TRIALS):
            a = [rng.gauss(0.0, 1.0) for _ in range(12)]
            b = [rng.gauss(0.0, 1.0) for _ in range(12)]
            if mann_whitney_u(a, b).p_value <= ALPHA:
                rejections += 1
        rate = rejections / TRIALS
        assert abs(rate - ALPHA) <= TOLERANCE, (
            f"null rejection rate {rate} outside {ALPHA} ± {TOLERANCE:.4f}"
        )

    def test_family_wise_rate_stays_at_alpha_under_holm(self):
        """Testing 4 metrics per trial, Holm must keep the *family-wise*
        false-positive rate at ≈ α (not 4α)."""
        rng = random.Random(1234)
        family_rejections = 0
        for _ in range(TRIALS):
            p_values = []
            for _metric in range(4):
                a = [rng.gauss(0.0, 1.0) for _ in range(10)]
                b = [rng.gauss(0.0, 1.0) for _ in range(10)]
                p_values.append(mann_whitney_u(a, b).p_value)
            if any(reject for _, reject in holm_bonferroni(p_values, ALPHA)):
                family_rejections += 1
        rate = family_rejections / TRIALS
        assert rate <= ALPHA + TOLERANCE, (
            f"family-wise rate {rate} exceeds {ALPHA} + {TOLERANCE:.4f}"
        )

    def test_normal_approximation_is_calibrated_with_ties(self):
        """Discrete (integer) samples exercise the tie-corrected variance;
        a wrong correction inflates or deflates the rejection rate."""
        rng = random.Random(99)
        rejections = 0
        for _ in range(TRIALS):
            a = [float(rng.randint(0, 5)) for _ in range(30)]
            b = [float(rng.randint(0, 5)) for _ in range(30)]
            if mann_whitney_u(a, b).p_value <= ALPHA:
                rejections += 1
        rate = rejections / TRIALS
        # Discreteness makes the test conservative (rate ≤ α); it must
        # never be anti-conservative beyond noise.
        assert rate <= ALPHA + TOLERANCE


class TestPower:
    def test_twenty_percent_shift_detected_at_n30(self):
        """A 20% location shift at σ=20% of the mean and n=30 — the scale
        of the paper's FC-vs-FIFO stretch gap — must be detected reliably
        (theoretical power ≈ 0.96)."""
        rng = random.Random(7)
        detections = 0
        trials = 200
        for _ in range(trials):
            a = [rng.gauss(1.0, 0.2) for _ in range(30)]
            b = [rng.gauss(1.2, 0.2) for _ in range(30)]
            if mann_whitney_u(a, b).p_value <= ALPHA:
                detections += 1
        assert detections / trials >= 0.85

    def test_fully_separated_samples_hit_the_exact_floor(self):
        """Completely separated 5v5 samples give the smallest two-sided
        exact p: 2 / C(10,5) = 2/252."""
        result = mann_whitney_u([1.0, 2.0, 3.0, 4.0, 5.0], [6.0, 7.0, 8.0, 9.0, 10.0])
        assert result.method == "exact"
        assert result.p_value == pytest.approx(2 / 252)


class TestExactSmallN:
    """Hand-computed exact null distributions (count orderings on paper)."""

    def test_3v3_full_separation(self):
        # C(6,3) = 20 arrangements; U=0 and U=9 are one arrangement each:
        # two-sided p = 2/20.
        result = mann_whitney_u([1.0, 2.0, 3.0], [4.0, 5.0, 6.0])
        assert result.method == "exact"
        assert result.u_statistic == 0.0
        assert result.p_value == pytest.approx(2 / 20)

    def test_4v4_full_separation(self):
        # C(8,4) = 70: two-sided p = 2/70.
        result = mann_whitney_u([1.0, 2.0, 3.0, 4.0], [5.0, 6.0, 7.0, 8.0])
        assert result.p_value == pytest.approx(2 / 70)

    def test_3v3_one_interleave(self):
        # a = {1,2,4}, b = {3,5,6}: U_a counts (a_i < b_j) pairs = 8 of 9.
        # #{U<=1} = 2 (U=0: one, U=1: one); two-sided p = 2*2/20 = 0.2.
        result = mann_whitney_u([1.0, 2.0, 4.0], [3.0, 5.0, 6.0])
        assert result.u_statistic == pytest.approx(1.0)
        assert result.p_value == pytest.approx(0.2)

    def test_2v2_never_significant(self):
        # C(4,2) = 6: the exact floor is 2/6 = 1/3 — n=2 can never reach
        # α=0.05, which is why the adaptive allocator demands more seeds.
        result = mann_whitney_u([1.0, 2.0], [3.0, 4.0])
        assert result.p_value == pytest.approx(1 / 3)

    def test_exact_and_normal_agree_at_moderate_n(self):
        # seed 6 lands the p-value near α, where the approximation's
        # calibration matters most (deep tails diverge relatively by
        # construction and are covered by the power test instead).
        rng = random.Random(6)
        a = [rng.gauss(0, 1) for _ in range(15)]
        b = [rng.gauss(0.6, 1) for _ in range(15)]
        exact = mann_whitney_u(a, b)
        approx = mann_whitney_u(a, b, exact_limit=0)
        assert exact.method == "exact" and approx.method == "normal"
        assert approx.p_value == pytest.approx(exact.p_value, rel=0.1)


class TestEdges:
    def test_all_equal_samples_give_p_one(self):
        result = mann_whitney_u([2.0, 2.0, 2.0], [2.0, 2.0, 2.0])
        assert result.p_value == 1.0
        assert cliffs_delta([2.0, 2.0], [2.0, 2.0]) == 0.0

    def test_n1_works_but_cannot_be_significant(self):
        result = mann_whitney_u([1.0], [2.0])
        assert 0.0 < result.p_value <= 1.0
        assert result.p_value >= 2 / 2  # C(2,1)=2: floor is 2*1/2 = 1.0

    def test_empty_sample_raises_actionable_error(self):
        with pytest.raises(ValueError, match="empty"):
            mann_whitney_u([], [1.0, 2.0])
        with pytest.raises(ValueError, match="empty"):
            mann_whitney_u([1.0, 2.0], [])

    def test_nan_raises_actionable_error(self):
        with pytest.raises(ValueError, match="NaN"):
            mann_whitney_u([1.0, float("nan")], [2.0, 3.0])

    def test_cliffs_delta_extremes_and_magnitudes(self):
        assert cliffs_delta([1.0, 2.0], [3.0, 4.0]) == -1.0
        assert cliffs_delta([3.0, 4.0], [1.0, 2.0]) == 1.0
        assert effect_magnitude(0.1) == "negligible"
        assert effect_magnitude(0.2) == "small"
        assert effect_magnitude(0.4) == "medium"
        assert effect_magnitude(0.6) == "large"

    def test_bootstrap_ci_on_constant_samples_is_degenerate(self):
        ci = bootstrap_diff_ci([3.0, 3.0, 3.0], [3.0, 3.0, 3.0], seed=1)
        assert isinstance(ci, BootstrapCI)
        assert ci.low == ci.high == ci.point == 0.0
        assert not ci.excludes_zero()

    def test_holm_on_empty_family(self):
        assert holm_bonferroni([]) == []

    def test_holm_rejects_invalid_p(self):
        with pytest.raises(ValueError, match="p-value"):
            holm_bonferroni([0.5, 1.5])
