"""Property-based tests for the streaming quantile sketch.

The t-digest's contract (docs/STREAMING.md) is a *rank*-error bound: the
estimated ``q``-quantile must sit between the exact quantiles at ranks
``q ± rank_error_bound(q)``.  Hypothesis drives randomized streams
(mixed scales, duplicates, adversarial orderings) through that contract,
plus merge behaviour and the degenerate empty/single-element edges.

``ExactSum`` carries the stronger contract — bit-identical values across
any add/merge order — checked here over random float streams.
"""

import math
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.metrics.streaming import ExactSum, TDigest

#: Well-scaled values typical of response times / stretches: positive,
#: spanning six orders of magnitude, no NaN/inf.
values = st.floats(min_value=1e-3, max_value=1e3)
streams = st.lists(values, min_size=1, max_size=800)


def exact_quantile(data, q):
    """The same quantile definition numpy's 'linear' interpolation uses."""
    data = sorted(data)
    if len(data) == 1:
        return data[0]
    pos = q * (len(data) - 1)
    lo = int(math.floor(pos))
    hi = min(lo + 1, len(data) - 1)
    return data[lo] + (data[hi] - data[lo]) * (pos - lo)


def assert_within_rank_bound(digest, data, q):
    """The *rank* of the estimate in the data must be within
    ``n·rank_error_bound(q)`` ranks of ``q·n`` — plus one rank of slack
    for discrete-sample granularity (with n=2 points no estimator can
    land between ranks)."""
    n = len(data)
    estimate = digest.quantile(q)
    below = sum(1 for x in data if x < estimate)
    at_most = sum(1 for x in data if x <= estimate)
    slack = n * digest.rank_error_bound(q) + 1.0
    lo_rank, hi_rank = q * n - slack, q * n + slack
    # The estimate's plausible rank interval [below, at_most] must
    # intersect the allowed window around the target rank.
    assert below <= hi_rank and at_most >= lo_rank, (
        f"q={q}: estimate {estimate} has rank interval "
        f"[{below}, {at_most}], outside [{lo_rank:.3f}, {hi_rank:.3f}] "
        f"(n={n}, bound {digest.rank_error_bound(q)})"
    )


QS = (0.01, 0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99)


class TestTDigestRankError:
    @given(data=streams)
    @settings(max_examples=60, deadline=None)
    def test_estimates_within_rank_bound(self, data):
        digest = TDigest()
        for x in data:
            digest.add(x)
        for q in QS:
            assert_within_rank_bound(digest, data, q)

    @given(data=streams, seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_order_of_arrival_does_not_break_the_bound(self, data, seed):
        shuffled = list(data)
        random.Random(seed).shuffle(shuffled)
        digest = TDigest()
        for x in shuffled:
            digest.add(x)
        for q in QS:
            assert_within_rank_bound(digest, data, q)

    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(2000, 4000))
    @settings(max_examples=5, deadline=None)
    def test_memory_stays_bounded_on_long_streams(self, seed, n):
        # A seed, not a drawn list: hypothesis caps generated-input
        # entropy well below a useful "long stream".
        rng = random.Random(seed)
        data = [rng.lognormvariate(0.0, 2.0) for _ in range(n)]
        digest = TDigest()
        for x in data:
            digest.add(x)
        digest._compress()
        # The q(1-q) scale function keeps O(δ·log(n/δ)) centroids — the
        # price of its extra-tight tail quantiles (docs/STREAMING.md).
        limit = digest.compression * (2.0 + math.log(n / digest.compression))
        assert digest.centroid_count <= limit
        for q in QS:
            assert_within_rank_bound(digest, data, q)

    def test_extremes_are_exact(self):
        data = [float(i) for i in range(10_000)]
        digest = TDigest()
        for x in data:
            digest.add(x)
        assert digest.quantile(0.0) == 0.0
        assert digest.quantile(1.0) == 9999.0

    def test_duplicates_collapse_to_the_value(self):
        digest = TDigest()
        for _ in range(5000):
            digest.add(42.0)
        for q in QS:
            assert digest.quantile(q) == 42.0


class TestTDigestMerge:
    @given(a=streams, b=streams)
    @settings(max_examples=40, deadline=None)
    def test_merge_respects_the_bound(self, a, b):
        left, right = TDigest(), TDigest()
        for x in a:
            left.add(x)
        for x in b:
            right.add(x)
        left.merge(right)
        pooled = a + b
        for q in QS:
            assert_within_rank_bound(left, pooled, q)

    @given(a=streams, b=streams)
    @settings(max_examples=40, deadline=None)
    def test_merge_is_commutative_within_the_bound(self, a, b):
        ab_l, ab_r = TDigest(), TDigest()
        ba_l, ba_r = TDigest(), TDigest()
        for x in a:
            ab_l.add(x)
            ba_r.add(x)
        for x in b:
            ab_r.add(x)
            ba_l.add(x)
        ab_l.merge(ab_r)  # merge(a, b)
        ba_l.merge(ba_r)  # merge(b, a)
        pooled = a + b
        # Both orders must satisfy the rank bound against the pooled data;
        # internal centroids may differ, estimates stay in the window.
        for q in QS:
            assert_within_rank_bound(ab_l, pooled, q)
            assert_within_rank_bound(ba_l, pooled, q)

    @given(data=streams, parts=st.integers(min_value=2, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_sharded_merge_matches_pooled_bound(self, data, parts):
        """Splitting a stream across workers and merging (the jobs=N
        path) must estimate as well as one digest over the whole stream."""
        shards = [TDigest() for _ in range(parts)]
        for i, x in enumerate(data):
            shards[i % parts].add(x)
        merged = shards[0]
        for shard in shards[1:]:
            merged.merge(shard)
        for q in QS:
            assert_within_rank_bound(merged, data, q)

    def test_merge_with_empty_is_identity(self):
        digest = TDigest()
        for x in (1.0, 2.0, 3.0):
            digest.add(x)
        before = {q: digest.quantile(q) for q in QS}
        digest.merge(TDigest())
        assert {q: digest.quantile(q) for q in QS} == before


class TestTDigestEdges:
    def test_empty_sketch_raises(self):
        digest = TDigest()
        with pytest.raises(ValueError, match="empty sketch"):
            digest.quantile(0.5)

    def test_single_element_is_every_quantile(self):
        digest = TDigest()
        digest.add(7.25)
        for q in (0.0, 0.01, 0.5, 0.99, 1.0):
            assert digest.quantile(q) == 7.25

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            TDigest().add(float("nan"))

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ValueError, match="weight"):
            TDigest().add(1.0, w=0.0)

    def test_rejects_out_of_range_q(self):
        digest = TDigest()
        digest.add(1.0)
        with pytest.raises(ValueError, match="q must be"):
            digest.quantile(1.5)

    def test_rejects_tiny_compression(self):
        with pytest.raises(ValueError, match="compression"):
            TDigest(compression=5)

    @given(data=streams)
    @settings(max_examples=20, deadline=None)
    def test_dict_round_trip_preserves_estimates(self, data):
        digest = TDigest()
        for x in data:
            digest.add(x)
        clone = TDigest.from_dict(digest.to_dict())
        for q in QS:
            assert clone.quantile(q) == digest.quantile(q)


#: Mixed-scale floats that stress cancellation in naive summation.
hard_floats = st.floats(
    min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False
)


class TestExactSum:
    @given(data=st.lists(hard_floats, min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_matches_fsum(self, data):
        acc = ExactSum()
        for x in data:
            acc.add(x)
        assert acc.value == math.fsum(data)

    @given(data=st.lists(hard_floats, min_size=2, max_size=200), seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_order_independent(self, data, seed):
        shuffled = list(data)
        random.Random(seed).shuffle(shuffled)
        a, b = ExactSum(), ExactSum()
        for x in data:
            a.add(x)
        for x in shuffled:
            b.add(x)
        assert a.value == b.value

    @given(data=st.lists(hard_floats, min_size=2, max_size=200), parts=st.integers(2, 5))
    @settings(max_examples=40, deadline=None)
    def test_sharded_merge_is_bit_identical(self, data, parts):
        whole = ExactSum()
        for x in data:
            whole.add(x)
        shards = [ExactSum() for _ in range(parts)]
        for i, x in enumerate(data):
            shards[i % parts].add(x)
        merged = shards[0]
        for shard in shards[1:]:
            merged.merge(shard)
        assert merged.value == whole.value

    def test_list_round_trip(self):
        acc = ExactSum()
        for x in (1e16, 1.0, -1e16, 2.0**-40):
            acc.add(x)
        assert ExactSum.from_list(acc.to_list()).value == acc.value
