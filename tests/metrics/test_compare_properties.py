"""Property tests (hypothesis) for repro.metrics.compare.

Each property is an algebraic identity the statistics must satisfy for
*every* input, not just the hand-picked cases of the self-test suite:

* antisymmetry — swapping A and B flips the sign of the effect size and
  mean difference but leaves the p-value unchanged;
* permutation invariance — sample order within a group is irrelevant
  (rank statistics see sets, not sequences);
* bootstrap determinism — the same seed reproduces the same CI, and a
  percentile CI contains the point estimate;
* Holm monotonicity — correction never rejects more than the
  uncorrected tests, and adjusted p-values never shrink.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.compare import (
    bootstrap_diff_ci,
    cliffs_delta,
    compare_samples,
    holm_bonferroni,
    mann_whitney_u,
)

#: Finite floats in a range the simulator's metrics actually occupy; a
#: few repeated values (via integer rounding in a sub-strategy) keep the
#: tie paths exercised.
values = st.one_of(
    st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False),
    st.integers(min_value=-5, max_value=5).map(float),
)
samples = st.lists(values, min_size=2, max_size=20)


class TestAntisymmetry:
    @given(a=samples, b=samples)
    @settings(max_examples=60, deadline=None)
    def test_swapping_sides_flips_effect_and_keeps_p(self, a, b):
        forward = mann_whitney_u(a, b)
        backward = mann_whitney_u(b, a)
        assert forward.p_value == backward.p_value
        assert forward.method == backward.method
        # U_a + U_b = n*m.
        assert forward.u_statistic + backward.u_statistic == len(a) * len(b)
        assert cliffs_delta(a, b) == -cliffs_delta(b, a)

    @given(a=samples, b=samples)
    @settings(max_examples=30, deadline=None)
    def test_comparison_result_is_antisymmetric(self, a, b):
        forward = compare_samples({"m": a}, {"m": b}, resamples=50)
        backward = compare_samples({"m": b}, {"m": a}, resamples=50)
        fwd, bwd = forward.comparisons[0], backward.comparisons[0]
        assert fwd.p_value == bwd.p_value
        assert fwd.cliffs_delta == -bwd.cliffs_delta
        assert fwd.diff == -bwd.diff


class TestPermutationInvariance:
    @given(a=samples, b=samples, seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=60, deadline=None)
    def test_shuffling_samples_changes_nothing(self, a, b, seed):
        rng = random.Random(seed)
        a_shuffled, b_shuffled = list(a), list(b)
        rng.shuffle(a_shuffled)
        rng.shuffle(b_shuffled)
        original = mann_whitney_u(a, b)
        shuffled = mann_whitney_u(a_shuffled, b_shuffled)
        assert shuffled.u_statistic == original.u_statistic
        assert shuffled.p_value == original.p_value
        assert cliffs_delta(a_shuffled, b_shuffled) == cliffs_delta(a, b)


class TestBootstrapDeterminism:
    @given(a=samples, b=samples, seed=st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=40, deadline=None)
    def test_same_seed_same_ci(self, a, b, seed):
        first = bootstrap_diff_ci(a, b, seed=seed, resamples=100)
        second = bootstrap_diff_ci(a, b, seed=seed, resamples=100)
        assert first == second

    @given(a=samples, b=samples, seed=st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=40, deadline=None)
    def test_percentile_ci_contains_point_estimate(self, a, b, seed):
        ci = bootstrap_diff_ci(a, b, seed=seed, resamples=200, method="percentile")
        assert ci.low <= ci.point <= ci.high
        # The point estimate is the plain difference of means.
        expected = sum(a) / len(a) - sum(b) / len(b)
        assert abs(ci.point - expected) < 1e-9

    @given(a=samples, b=samples, seed=st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=40, deadline=None)
    def test_bca_interval_is_ordered_and_finite(self, a, b, seed):
        ci = bootstrap_diff_ci(a, b, seed=seed, resamples=200, method="bca")
        assert ci.low <= ci.high
        assert ci.low == ci.low and ci.high == ci.high  # not NaN


class TestHolmMonotonicity:
    p_families = st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=1,
        max_size=12,
    )

    @given(p_values=p_families, alpha=st.floats(min_value=0.001, max_value=0.2))
    @settings(max_examples=80, deadline=None)
    def test_never_more_rejections_than_uncorrected(self, p_values, alpha):
        corrected = holm_bonferroni(p_values, alpha)
        uncorrected = sum(1 for p in p_values if p <= alpha)
        assert sum(1 for _, reject in corrected if reject) <= uncorrected

    @given(p_values=p_families)
    @settings(max_examples=80, deadline=None)
    def test_adjusted_p_never_below_raw(self, p_values):
        corrected = holm_bonferroni(p_values)
        for (adjusted, _), raw in zip(corrected, p_values):
            assert adjusted >= raw
            assert adjusted <= 1.0

    @given(p_values=p_families, alpha=st.floats(min_value=0.001, max_value=0.2))
    @settings(max_examples=80, deadline=None)
    def test_rejection_implies_adjusted_below_alpha(self, p_values, alpha):
        for adjusted, reject in holm_bonferroni(p_values, alpha):
            assert reject == (adjusted <= alpha)
