"""Tests for the per-node (cluster) metric breakdown."""

import pytest

from repro.cluster.spec import ClusterSpec
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.metrics.cluster import cluster_breakdown
from repro.metrics.records import CallRecord


def record(rid, invoker, response_time=2.0):
    return CallRecord(
        rid=rid,
        function_name="f",
        invoker=invoker,
        release_time=0.0,
        received_at=0.0,
        dispatched_at=0.0,
        exec_start=0.0,
        exec_end=1.0,
        completed_at=response_time,
        service_time=1.0,
        reference_response_time=1.0,
        cold_start=False,
        start_kind="hot",
    )


def result_with(records, node_stats, balancer_stats=None):
    config = ExperimentConfig(cores=4, intensity=10)
    return ExperimentResult(
        config=config,
        records=records,
        node_stats=node_stats,
        balancer_stats=balancer_stats,
    )


class TestBreakdownMath:
    def test_counts_shares_and_means(self):
        records = [record(0, "a"), record(1, "a", 4.0), record(2, "b")]
        breakdown = cluster_breakdown(
            result_with(
                records,
                [
                    {"name": "a", "cpu_utilization": 0.5, "cold_starts": 1},
                    {"name": "b", "cpu_utilization": 0.25, "cold_starts": 0},
                ],
            )
        )
        a, b = breakdown.nodes
        assert (a.calls, b.calls) == (2, 1)
        assert a.share == pytest.approx(2 / 3)
        assert a.mean_response_time == pytest.approx(3.0)
        assert b.mean_response_time == pytest.approx(2.0)
        assert a.cpu_utilization == 0.5
        assert a.cold_starts == 1

    def test_imbalance_is_max_over_mean(self):
        records = [record(i, "a") for i in range(3)] + [record(3, "b")]
        breakdown = cluster_breakdown(
            result_with(records, [{"name": "a"}, {"name": "b"}])
        )
        assert breakdown.imbalance == pytest.approx(3 / 2)

    def test_perfectly_even_spread_has_imbalance_one(self):
        records = [record(0, "a"), record(1, "b")]
        breakdown = cluster_breakdown(
            result_with(records, [{"name": "a"}, {"name": "b"}])
        )
        assert breakdown.imbalance == pytest.approx(1.0)

    def test_idle_node_appears_with_zero_calls(self):
        records = [record(0, "a")]
        breakdown = cluster_breakdown(
            result_with(records, [{"name": "a"}, {"name": "scaled-1"}])
        )
        assert breakdown.nodes[1].calls == 0
        assert breakdown.nodes[1].share == 0.0
        assert breakdown.imbalance == pytest.approx(2.0)

    def test_unknown_invoker_in_records_is_an_error(self):
        with pytest.raises(ValueError, match="missing from node_stats"):
            cluster_breakdown(result_with([record(0, "ghost")], [{"name": "a"}]))

    def test_balancer_stats_flow_through(self):
        breakdown = cluster_breakdown(
            result_with(
                [record(0, "a")],
                [{"name": "a"}],
                balancer_stats={
                    "balancer": "locality",
                    "picks": 10,
                    "spills": 3,
                    "spill_rate": 0.3,
                    "scale_events": [[12.5, 2]],
                },
            )
        )
        assert breakdown.balancer == "locality"
        assert breakdown.spill_rate == pytest.approx(0.3)
        assert breakdown.scale_events == [[12.5, 2]]

    def test_single_node_result_defaults(self):
        breakdown = cluster_breakdown(result_with([record(0, "a")], [{"name": "a"}]))
        assert breakdown.balancer is None
        assert breakdown.spill_rate == 0.0
        assert breakdown.scale_events == []


class TestRender:
    def test_render_lists_every_node(self):
        records = [record(0, "a"), record(1, "b")]
        text = cluster_breakdown(
            result_with(
                records,
                [{"name": "a"}, {"name": "b"}],
                balancer_stats={"balancer": "power-of-d", "spill_rate": 0.0},
            )
        ).render()
        assert "a" in text and "b" in text
        assert "power-of-d" in text
        assert "imbalance" in text

    def test_real_cluster_run_renders(self):
        result = run_experiment(
            ExperimentConfig(
                cores=4, intensity=10, policy="FC", cluster=ClusterSpec(nodes=2)
            )
        )
        text = result.cluster_summary().render()
        assert "FC-node-0" in text and "FC-node-1" in text
