"""Tests for CallRecord derived metrics."""

import pytest

from repro.metrics.records import CallRecord


def record(**overrides) -> CallRecord:
    fields = dict(
        rid=0,
        function_name="graph-bfs",
        invoker="node-0",
        release_time=10.0,
        received_at=10.005,
        dispatched_at=12.0,
        exec_start=12.1,
        exec_end=12.2,
        completed_at=12.21,
        service_time=0.1,
        reference_response_time=0.012,
        cold_start=False,
        start_kind="warm",
    )
    fields.update(overrides)
    return CallRecord(**fields)


class TestCallRecord:
    def test_response_time(self):
        # R(i) = c(i) - r(i), paper Sect. II.
        assert record().response_time == pytest.approx(2.21)

    def test_stretch(self):
        # S(i) = R(i) / reference median, paper Sect. II / V-A.
        assert record().stretch == pytest.approx(2.21 / 0.012)

    def test_stretch_can_be_below_one(self):
        # The paper notes stretch < 1 is possible because the reference is
        # the idle-system *median*.
        fast = record(completed_at=10.011)
        assert fast.stretch < 1.0

    def test_wait_time(self):
        assert record().wait_time == pytest.approx(12.0 - 10.005)

    def test_processing_time(self):
        assert record().processing_time == pytest.approx(0.1)

    def test_frozen(self):
        with pytest.raises(Exception):
            record().rid = 5  # type: ignore[misc]
