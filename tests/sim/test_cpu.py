"""Unit tests for the processor-sharing SharedCPU bank."""

import pytest

from repro.sim import Environment, SharedCPU, linear_overhead_efficiency


def run_tasks(cores, specs, efficiency=None):
    """Run tasks on a bank; specs = [(start, work, weight, max_rate)].

    Returns dict task-index -> completion time.
    """
    env = Environment()
    cpu = SharedCPU(env, cores, efficiency=efficiency)
    done = {}

    def submit(env, idx, start, work, weight, max_rate):
        if start:
            yield env.timeout(start)
        task = cpu.execute(work, weight=weight, max_rate=max_rate, label=str(idx))
        yield task.event
        done[idx] = env.now

    for idx, (start, work, weight, max_rate) in enumerate(specs):
        env.process(submit(env, idx, start, work, weight, max_rate))
    env.run()
    return env, cpu, done


class TestSingleTask:
    def test_dedicated_core_runs_at_full_rate(self):
        _, _, done = run_tasks(4, [(0.0, 10.0, 1.0, 1.0)])
        assert done[0] == pytest.approx(10.0)

    def test_zero_work_completes_immediately(self):
        _, _, done = run_tasks(1, [(0.0, 0.0, 1.0, 1.0)])
        assert done[0] == pytest.approx(0.0)

    def test_max_rate_above_one_uses_multiple_cores(self):
        _, _, done = run_tasks(4, [(0.0, 8.0, 1.0, 2.0)])
        assert done[0] == pytest.approx(4.0)

    def test_invalid_args(self):
        env = Environment()
        cpu = SharedCPU(env, 2)
        with pytest.raises(ValueError):
            cpu.execute(-1.0)
        with pytest.raises(ValueError):
            cpu.execute(1.0, weight=0.0)
        with pytest.raises(ValueError):
            cpu.execute(1.0, max_rate=0.0)
        with pytest.raises(ValueError):
            SharedCPU(env, 0)


class TestSharing:
    def test_two_tasks_on_one_core_share_equally(self):
        # Each has 5 core-seconds; sharing a single core -> both end at 10.
        _, _, done = run_tasks(1, [(0.0, 5.0, 1.0, 1.0), (0.0, 5.0, 1.0, 1.0)])
        assert done[0] == pytest.approx(10.0)
        assert done[1] == pytest.approx(10.0)

    def test_two_tasks_on_two_cores_run_independently(self):
        _, _, done = run_tasks(2, [(0.0, 5.0, 1.0, 1.0), (0.0, 3.0, 1.0, 1.0)])
        assert done[0] == pytest.approx(5.0)
        assert done[1] == pytest.approx(3.0)

    def test_weighted_sharing(self):
        # weights 3:1 on one core; short task discovers more capacity after
        # heavy task leaves.  t in [0, T]: rates 0.75/0.25.
        # Task0: 3 core-s at 0.75 -> done at 4.0.  Task1 by then has 4-1=... :
        # work1 = 4 - 0.25*4 = 3 remaining at t=4, then full core -> done at 7.
        _, _, done = run_tasks(1, [(0.0, 3.0, 3.0, 1.0), (0.0, 4.0, 1.0, 1.0)])
        assert done[0] == pytest.approx(4.0)
        assert done[1] == pytest.approx(7.0)

    def test_late_arrival_slows_running_task(self):
        # Task0: 10 core-s alone on 1 core.  Task1 (10 core-s) arrives at t=5;
        # they then share: task0 has 5 left at rate .5 -> done t=15; task1
        # then runs alone: at t=15 it has 10-5=5 left -> done t=20.
        _, _, done = run_tasks(1, [(0.0, 10.0, 1.0, 1.0), (5.0, 10.0, 1.0, 1.0)])
        assert done[0] == pytest.approx(15.0)
        assert done[1] == pytest.approx(20.0)

    def test_caps_leave_cores_idle_when_undersubscribed(self):
        # 4 cores, 2 tasks capped at 1 core each -> both at rate 1.
        env, cpu, done = run_tasks(4, [(0.0, 6.0, 1.0, 1.0), (0.0, 6.0, 1.0, 1.0)])
        assert done[0] == pytest.approx(6.0)
        assert done[1] == pytest.approx(6.0)
        # 2 of 4 cores idle for 6s.
        assert cpu.idle_core_seconds == pytest.approx(12.0)

    def test_water_filling_with_mixed_caps(self):
        # 2 cores; tasks: cap 0.5 (w=1), cap 2.0 (w=1).  Proportional share =
        # 1.0 each; first is capped at 0.5, surplus goes to second, capped at
        # 1.5.  Work: t0 = 1 core-s at 0.5 -> 2.0s.  t1 = 6 core-s at 1.5 for
        # 2s (=3), then alone at cap 2.0 for remaining 3 -> 1.5s more -> 3.5s.
        _, _, done = run_tasks(2, [(0.0, 1.0, 1.0, 0.5), (0.0, 6.0, 1.0, 2.0)])
        assert done[0] == pytest.approx(2.0)
        assert done[1] == pytest.approx(3.5)


class TestEfficiencyPenalty:
    def test_no_penalty_when_not_oversubscribed(self):
        eff = linear_overhead_efficiency(kappa=1.0)
        assert eff(4, 4) == pytest.approx(1.0)
        assert eff(2, 4) == pytest.approx(1.0)

    def test_penalty_grows_with_oversubscription(self):
        eff = linear_overhead_efficiency(kappa=1.0)
        assert eff(8, 4) == pytest.approx(1.0 / 2.0)
        assert eff(12, 4) == pytest.approx(1.0 / 3.0)

    def test_negative_kappa_rejected(self):
        with pytest.raises(ValueError):
            linear_overhead_efficiency(-0.1)

    def test_oversubscribed_bank_delivers_less(self):
        # 1 core, 2 tasks, kappa=1 -> efficiency 1/2 -> capacity 0.5;
        # each task runs at 0.25: 1 core-second each -> both done at t=4...
        # after the first finishes the second runs alone at rate min(1, 1*1)=1.
        # Work each 1.0: shared phase ends when both hit 0 simultaneously at
        # t = 1.0/0.25 = 4.0.
        _, _, done = run_tasks(
            1,
            [(0.0, 1.0, 1.0, 1.0), (0.0, 1.0, 1.0, 1.0)],
            efficiency=linear_overhead_efficiency(1.0),
        )
        assert done[0] == pytest.approx(4.0)
        assert done[1] == pytest.approx(4.0)


class TestAccounting:
    def test_work_conservation_without_penalty(self):
        env, cpu, done = run_tasks(
            2, [(0.0, 3.0, 1.0, 1.0), (1.0, 4.0, 2.0, 1.0), (2.0, 2.0, 1.0, 1.0)]
        )
        assert cpu.delivered_work == pytest.approx(3.0 + 4.0 + 2.0)

    def test_utilization_bounded(self):
        env, cpu, done = run_tasks(2, [(0.0, 4.0, 1.0, 1.0)])
        assert 0.0 < cpu.utilization() <= 1.0

    def test_utilization_normalizes_by_bank_lifetime(self):
        # Regression: a bank created at t>0 must measure utilization over
        # its own lifetime, not since t=0 (which understated idle time —
        # here it would report 4/(2*8)=0.25 instead of 4/(2*4)=0.5).
        env = Environment()

        def late_bank(env):
            yield env.timeout(4.0)
            cpu = SharedCPU(env, 2)
            task = cpu.execute(4.0)  # one core busy for 4s on a 2-core bank
            yield task.event
            return cpu

        proc = env.process(late_bank(env))
        env.run()
        cpu = proc.value
        assert cpu.created_at == pytest.approx(4.0)
        assert env.now == pytest.approx(8.0)
        assert cpu.utilization() == pytest.approx(0.5)

    def test_utilization_zero_horizon(self):
        env = Environment()
        cpu = SharedCPU(env, 2)
        assert cpu.utilization() == 0.0

    def test_peak_tasks_tracked(self):
        env, cpu, _ = run_tasks(
            1, [(0.0, 5.0, 1.0, 1.0), (1.0, 5.0, 1.0, 1.0), (2.0, 5.0, 1.0, 1.0)]
        )
        assert cpu.peak_tasks == 3

    def test_cancel_releases_capacity(self):
        env = Environment()
        cpu = SharedCPU(env, 1)
        results = {}

        def victim(env):
            task = cpu.execute(100.0)
            try:
                yield task.event
            except RuntimeError:
                results["victim"] = ("cancelled", env.now)
            return None

        def other(env):
            task = cpu.execute(4.0)
            yield task.event
            results["other"] = env.now

        def canceller(env):
            yield env.timeout(2.0)
            # victim's task is the long one
            victim_task = next(t for t in cpu._tasks if t.work > 50)
            cpu.cancel(victim_task)

        env.process(victim(env))
        env.process(other(env))
        env.process(canceller(env))
        env.run()
        assert results["victim"] == ("cancelled", 2.0)
        # other: 2s at rate .5 (1 core-s done), then full rate for 3 -> t=5.
        assert results["other"] == pytest.approx(5.0)
