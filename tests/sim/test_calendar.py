"""Cancellable-calendar and reusable-timer semantics.

The calendar's tombstone mechanism is the foundation of the CPU bank's
wake-up scheme: a superseded wake-up must *never* fire, the heap must not
grow without bound under re-arming churn, and cancellation must be
invisible to live entries' ordering.
"""

import pytest

from repro.sim import Environment, SimulationError
from repro.sim.core import _MIN_COMPACT


class TestCancelScheduled:
    def test_cancelled_entry_never_fires(self):
        env = Environment()
        fired = []
        event = env.event()
        event.callbacks.append(lambda ev: fired.append(env.now))
        event._ok = True
        event._value = None
        entry = env.schedule(event, delay=5.0)
        assert env.cancel_scheduled(entry) is True
        env.process(iter(_sleeper(env, 10.0)))
        env.run()
        assert fired == []
        assert env.now == 10.0

    def test_cancel_is_idempotent_and_reports(self):
        env = Environment()
        entry = env.schedule(_inert_event(env), delay=1.0)
        assert env.cancel_scheduled(entry) is True
        assert env.cancel_scheduled(entry) is False

    def test_cancel_after_fire_reports_false(self):
        env = Environment()
        event = env.event()
        event._ok = True
        event._value = None
        entry = env.schedule(event, delay=1.0)
        env.run()
        assert env.cancel_scheduled(entry) is False

    def test_live_count_tracks_cancellations(self):
        env = Environment()
        entries = [env.schedule(_inert_event(env), delay=float(i)) for i in range(10)]
        assert env.scheduled_count == 10
        for entry in entries[:4]:
            env.cancel_scheduled(entry)
        assert env.scheduled_count == 6

    def test_peek_skips_tombstones(self):
        env = Environment()
        first = env.schedule(_inert_event(env), delay=1.0)
        env.schedule(_inert_event(env), delay=2.0)
        env.cancel_scheduled(first)
        assert env.peek() == 2.0

    def test_run_terminates_with_only_tombstones(self):
        env = Environment()
        entry = env.schedule(_inert_event(env), delay=1.0)
        env.cancel_scheduled(entry)
        env.run()  # must not spin or raise
        assert env.now == 0.0

    def test_step_with_only_tombstones_raises(self):
        env = Environment()
        entry = env.schedule(_inert_event(env), delay=1.0)
        env.cancel_scheduled(entry)
        with pytest.raises(SimulationError):
            env.step()

    def test_compaction_bounds_heap_growth(self):
        env = Environment()
        # Cancel-and-re-arm far beyond the compaction threshold; the heap
        # must stay O(live), not O(total arms).
        for i in range(20 * _MIN_COMPACT):
            entry = env.schedule(_inert_event(env), delay=1.0)
            env.cancel_scheduled(entry)
        assert env.scheduled_count == 0
        assert len(env._queue) <= 2 * _MIN_COMPACT + 2

    def test_cancellation_preserves_fifo_of_survivors(self):
        env = Environment()
        order = []
        entries = []
        for tag in range(6):
            event = env.event()
            event._ok = True
            event._value = tag
            event.callbacks.append(lambda ev: order.append(ev.value))
            entries.append(env.schedule(event, delay=1.0))
        env.cancel_scheduled(entries[1])
        env.cancel_scheduled(entries[4])
        env.run()
        assert order == [0, 2, 3, 5]


class TestReusableTimer:
    def test_fires_at_armed_time(self):
        env = Environment()
        fired = []
        timer = env.timer(lambda: fired.append(env.now))
        timer.arm(3.0)
        env.run()
        assert fired == [3.0]
        assert not timer.armed

    def test_rearm_supersedes_previous(self):
        env = Environment()
        fired = []
        timer = env.timer(lambda: fired.append(env.now))
        timer.arm(3.0)
        timer.arm(7.0)  # the 3.0 firing is tombstoned, never happens
        env.run()
        assert fired == [7.0]

    def test_cancel_prevents_firing(self):
        env = Environment()
        fired = []
        timer = env.timer(lambda: fired.append(env.now))
        timer.arm(3.0)
        timer.cancel()
        assert not timer.armed
        env.run()
        assert fired == []

    def test_timer_reusable_across_many_cycles(self):
        env = Environment()
        fired = []
        timer = env.timer(lambda: fired.append(env.now))

        def driver(env):
            for _ in range(5):
                timer.arm(0.5)  # supersedes the 2.0 arm below each round
                yield env.timeout(1.0)

        timer.arm(2.0)
        env.process(driver(env))
        env.run()
        assert fired == [0.5, 1.5, 2.5, 3.5, 4.5]

    def test_rearm_from_within_callback(self):
        env = Environment()
        fired = []

        def on_fire():
            fired.append(env.now)
            if len(fired) < 3:
                timer.arm(1.0)

        timer = env.timer(on_fire)
        timer.arm(1.0)
        env.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_armed_property(self):
        env = Environment()
        timer = env.timer(lambda: None)
        assert not timer.armed
        timer.arm(1.0)
        assert timer.armed
        env.run()
        assert not timer.armed


def _inert_event(env):
    """A triggered event with no callbacks (safe to schedule directly)."""
    event = env.event()
    event._ok = True
    event._value = None
    return event


def _sleeper(env, duration):
    yield env.timeout(duration)
