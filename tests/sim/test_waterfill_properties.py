"""Property tests for the incremental water-filling kernel.

The contract under test: :class:`~repro.sim.cpu.SharedCPU`'s internal
allocator (scalar or vectorized, incremental fast path or frontier
rounds) must reproduce the retained brute-force oracle
:func:`repro.sim.waterfill.waterfill_rates` **exactly** — same IEEE-754
doubles, not approximately — on the live population in insertion order.
Seeds come from :class:`~repro.sim.rng.RngRegistry` streams, so every
"random" population here is reproducible from the printed seed.
"""

import pytest

import repro.sim.cpu as cpumod
from repro.sim import Environment, SharedCPU, linear_overhead_efficiency
from repro.sim.rng import RngRegistry
from repro.sim.waterfill import waterfill_rates

#: Dyadic weight grid matching the real workloads (memory/256 shares).
DYADIC_WEIGHTS = [0.25, 0.5, 1.0, 2.0, 4.0]


def _live_population(cpu):
    """(tasks, weights, caps) of the live population in insertion order."""
    tasks = list(cpu._iter_live())
    return tasks, [t.weight for t in tasks], [t.max_rate for t in tasks]


def _capacity(cpu):
    n = cpu.active_tasks
    eff = cpu._efficiency(n, cpu.cores) if cpu._efficiency else 1.0
    return cpu.cores * eff


def _assert_matches_oracle(cpu):
    tasks, weights, caps = _live_population(cpu)
    expected = waterfill_rates(weights, caps, _capacity(cpu))
    actual = [t.rate for t in tasks]
    assert actual == expected, (
        f"allocator diverged from oracle on n={len(tasks)} "
        f"(vector={cpu._vector})"
    )


def _churn_bank(cpu, rng, n_tasks, weight_pool, cap_pool, cancel_prob=0.1):
    """Drive a bank through arrivals/completions/cancellations, asserting
    oracle equality after every membership change."""
    env = cpu.env
    checked = {"events": 0}

    def submit(env, start, work, weight, cap):
        yield env.timeout(start)
        task = cpu.execute(work, weight=weight, max_rate=cap)
        _assert_matches_oracle(cpu)
        checked["events"] += 1
        if rng.random() < cancel_prob:
            grace = float(rng.uniform(0.0, 1.0))
            yield env.timeout(grace)
            if task.event.callbacks is not None and task in cpu._tasks:
                cpu.cancel(task)
                _assert_matches_oracle(cpu)
                checked["events"] += 1
        else:
            try:
                yield task.event
            except RuntimeError:
                pass
            _assert_matches_oracle(cpu)
            checked["events"] += 1

    starts = rng.uniform(0, 10, n_tasks)
    works = rng.uniform(0.05, 3.0, n_tasks)
    for i in range(n_tasks):
        weight = float(rng.choice(weight_pool))
        cap = float(rng.choice(cap_pool))
        env.process(submit(env, float(starts[i]), float(works[i]), weight, cap))
    env.run()
    assert checked["events"] >= n_tasks


@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("kappa", [0.0, 0.7])
def test_dyadic_weights_uniform_caps_match_oracle_exactly(seed, kappa):
    """The production regime: dyadic weights, unit caps, with and without
    an oversubscription penalty."""
    rng = RngRegistry(seed).get("waterfill-prop")
    env = Environment()
    cpu = SharedCPU(env, cores=4, efficiency=linear_overhead_efficiency(kappa))
    _churn_bank(cpu, rng, n_tasks=120, weight_pool=DYADIC_WEIGHTS, cap_pool=[1.0])


@pytest.mark.parametrize("seed", [11, 12])
def test_arbitrary_weights_and_caps_match_oracle_exactly(seed):
    """Adversarial inputs: continuous random weights/caps (nothing dyadic,
    mixed cap frontier).  The allocator's left-fold reductions are
    op-for-op the oracle's, so equality is still exact."""
    rng = RngRegistry(seed).get("waterfill-prop-arb")
    env = Environment()
    cpu = SharedCPU(env, cores=8)
    weight_pool = [float(w) for w in rng.uniform(0.1, 5.0, 7)]
    cap_pool = [float(c) for c in rng.uniform(0.2, 3.0, 5)]
    _churn_bank(cpu, rng, n_tasks=150, weight_pool=weight_pool, cap_pool=cap_pool)


@pytest.mark.parametrize("seed", [21, 22])
def test_vector_mode_forced_matches_oracle(seed, monkeypatch):
    """Force the NumPy columns from the first task, so even tiny
    populations exercise the vectorized rounds."""
    monkeypatch.setattr(cpumod, "_VECTOR_ENTER", 0)
    monkeypatch.setattr(cpumod, "_SCALAR_EXIT", -1)
    rng = RngRegistry(seed).get("waterfill-prop-vec")
    env = Environment()
    cpu = SharedCPU(env, cores=4, efficiency=linear_overhead_efficiency(1.0))
    weight_pool = DYADIC_WEIGHTS + [float(w) for w in rng.uniform(0.3, 3.0, 3)]
    _churn_bank(cpu, rng, n_tasks=90, weight_pool=weight_pool, cap_pool=[0.5, 1.0, 2.0])


def test_waterfill_invariants_random():
    """Allocation sanity on raw random inputs: caps respected, capacity
    never exceeded (beyond representation slack), full usage when some
    task is uncapped."""
    rng = RngRegistry(99).get("waterfill-invariants")
    for _ in range(200):
        n = int(rng.integers(1, 40))
        weights = [float(w) for w in rng.uniform(0.05, 8.0, n)]
        caps = [float(c) for c in rng.uniform(0.05, 4.0, n)]
        capacity = float(rng.uniform(0.5, 64.0))
        rates = waterfill_rates(weights, caps, capacity)
        assert len(rates) == n
        for rate, cap in zip(rates, caps):
            assert 0.0 <= rate <= cap + 1e-9
        assert sum(rates) <= capacity + 1e-6
        if sum(caps) <= capacity:
            assert rates == caps


class TestModeEquivalence:
    """The scalar and vector representations — and the ETA-heap versus the
    exact scan — are interchangeable: identical completion times,
    identical accounting."""

    @staticmethod
    def _run_workload(seed, cores=16, n_tasks=200, cap_pool=(0.5, 1.0, 2.0)):
        rng = RngRegistry(seed).get("mode-eq")
        env = Environment()
        cpu = SharedCPU(env, cores=cores)
        done = {}

        def submit(env, i, start, work, weight, cap):
            yield env.timeout(start)
            task = cpu.execute(work, weight=weight, max_rate=cap)
            yield task.event
            done[i] = env.now

        for i, (start, work) in enumerate(
            zip(rng.uniform(0, 15, n_tasks), rng.uniform(0.05, 5.0, n_tasks))
        ):
            weight = float(rng.choice(DYADIC_WEIGHTS))
            cap = float(rng.choice(cap_pool))
            env.process(submit(env, i, float(start), float(work), weight, cap))
        env.run()
        return done, cpu.delivered_work, cpu.idle_core_seconds, cpu.peak_tasks

    @pytest.mark.parametrize("seed", [31, 32])
    def test_scalar_vs_vector_bit_identical(self, seed, monkeypatch):
        monkeypatch.setattr(cpumod, "_VECTOR_ENTER", 0)
        monkeypatch.setattr(cpumod, "_SCALAR_EXIT", -1)
        vector = self._run_workload(seed)
        monkeypatch.setattr(cpumod, "_VECTOR_ENTER", 10**9)
        monkeypatch.setattr(cpumod, "_SCALAR_EXIT", -1)
        scalar = self._run_workload(seed)
        assert vector == scalar

    @pytest.mark.parametrize("seed", [41, 42])
    def test_eta_heap_vs_scan_bit_identical(self, seed, monkeypatch):
        # All-capped regime on a wide bank so the heap actually activates.
        monkeypatch.setattr(cpumod, "_HEAP_MIN_N", 4)
        monkeypatch.setattr(cpumod, "_HEAP_STREAK", 1)
        with_heap = self._run_workload(seed, cores=4096)
        monkeypatch.setattr(cpumod, "_HEAP_MIN_N", 10**9)
        without_heap = self._run_workload(seed, cores=4096)
        assert with_heap == without_heap
