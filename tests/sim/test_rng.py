"""Unit tests for the named RNG registry."""

import numpy as np

from repro.sim import RngRegistry


class TestRngRegistry:
    def test_same_name_returns_same_stream(self):
        rngs = RngRegistry(seed=7)
        assert rngs.get("a") is rngs.get("a")

    def test_different_names_give_independent_streams(self):
        rngs = RngRegistry(seed=7)
        a = rngs.get("a").random(100)
        b = rngs.get("b").random(100)
        assert not np.allclose(a, b)

    def test_same_seed_reproduces_values(self):
        r1 = RngRegistry(seed=123).get("arrivals").random(50)
        r2 = RngRegistry(seed=123).get("arrivals").random(50)
        assert np.array_equal(r1, r2)

    def test_different_seeds_differ(self):
        r1 = RngRegistry(seed=1).get("arrivals").random(50)
        r2 = RngRegistry(seed=2).get("arrivals").random(50)
        assert not np.array_equal(r1, r2)

    def test_stream_isolation_under_extra_draws(self):
        # Drawing more from stream "a" must not change stream "b".
        reg1 = RngRegistry(seed=9)
        reg1.get("a").random(1000)
        b1 = reg1.get("b").random(10)

        reg2 = RngRegistry(seed=9)
        b2 = reg2.get("b").random(10)
        assert np.array_equal(b1, b2)

    def test_contains(self):
        rngs = RngRegistry(seed=0)
        assert "x" not in rngs
        rngs.get("x")
        assert "x" in rngs
