"""Unit tests for Resource, PriorityResource, Store, PriorityStore."""

import pytest

from repro.sim import Environment, PriorityResource, PriorityStore, Resource, Store


class TestResource:
    def test_capacity_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_immediate_grant_within_capacity(self):
        env = Environment()
        res = Resource(env, capacity=2)
        got = []

        def proc(env, tag):
            with res.request() as req:
                yield req
                got.append((tag, env.now))
                yield env.timeout(1.0)

        env.process(proc(env, "a"))
        env.process(proc(env, "b"))
        env.run()
        assert got == [("a", 0.0), ("b", 0.0)]

    def test_fifo_wait_order(self):
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        def proc(env, tag, hold):
            with res.request() as req:
                yield req
                order.append((tag, env.now))
                yield env.timeout(hold)

        env.process(proc(env, "first", 2.0))
        env.process(proc(env, "second", 2.0))
        env.process(proc(env, "third", 2.0))
        env.run()
        assert order == [("first", 0.0), ("second", 2.0), ("third", 4.0)]

    def test_release_on_context_exit(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(5.0)

        env.process(holder(env))
        env.run()
        assert res.count == 0

    def test_counts(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(10.0)

        def waiter(env):
            with res.request() as req:
                yield req

        env.process(holder(env))
        env.process(waiter(env))
        env.run(until=1.0)
        assert res.count == 1
        assert res.queued == 1

    def test_cancel_waiting_request(self):
        env = Environment()
        res = Resource(env, capacity=1)
        served = []

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(10.0)

        def impatient(env):
            req = res.request()
            yield env.timeout(1.0)
            req.cancel()  # gives up before being served

        def patient(env):
            with res.request() as req:
                yield req
                served.append(env.now)

        env.process(holder(env))
        env.process(impatient(env))
        env.process(patient(env))
        env.run()
        assert served == [10.0]


class TestPriorityResource:
    def test_lower_priority_served_first(self):
        env = Environment()
        res = PriorityResource(env, capacity=1)
        order = []

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(5.0)

        def proc(env, tag, prio, delay):
            yield env.timeout(delay)
            with res.request(priority=prio) as req:
                yield req
                order.append(tag)

        env.process(holder(env))
        env.process(proc(env, "low-prio", 10.0, 1.0))
        env.process(proc(env, "high-prio", 1.0, 2.0))  # arrives later, served first
        env.run()
        assert order == ["high-prio", "low-prio"]

    def test_tie_broken_fifo(self):
        env = Environment()
        res = PriorityResource(env, capacity=1)
        order = []

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(5.0)

        def proc(env, tag, delay):
            yield env.timeout(delay)
            with res.request(priority=3.0) as req:
                yield req
                order.append(tag)

        env.process(holder(env))
        env.process(proc(env, "a", 1.0))
        env.process(proc(env, "b", 2.0))
        env.run()
        assert order == ["a", "b"]


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)

        def producer(env):
            yield store.put("item")

        def consumer(env):
            item = yield store.get()
            return item

        env.process(producer(env))
        c = env.process(consumer(env))
        env.run()
        assert c.value == "item"

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)

        def consumer(env):
            item = yield store.get()
            return (item, env.now)

        def producer(env):
            yield env.timeout(7.0)
            yield store.put("late")

        c = env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert c.value == ("late", 7.0)

    def test_fifo_item_order(self):
        env = Environment()
        store = Store(env)
        for item in ("x", "y", "z"):
            store.put(item)
        received = []

        def consumer(env):
            for _ in range(3):
                received.append((yield store.get()))

        env.process(consumer(env))
        env.run()
        assert received == ["x", "y", "z"]

    def test_bounded_capacity_blocks_put(self):
        env = Environment()
        store = Store(env, capacity=1)
        events = []

        def producer(env):
            yield store.put("a")
            events.append(("a-stored", env.now))
            yield store.put("b")
            events.append(("b-stored", env.now))

        def consumer(env):
            yield env.timeout(5.0)
            yield store.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert events == [("a-stored", 0.0), ("b-stored", 5.0)]

    def test_invalid_capacity(self):
        env = Environment()
        with pytest.raises(ValueError):
            Store(env, capacity=0)

    def test_cancel_get(self):
        env = Environment()
        store = Store(env)
        outcome = []

        def impatient(env):
            getter = store.get()
            yield env.timeout(1.0)
            getter.cancel()

        def patient(env):
            item = yield store.get()
            outcome.append(item)

        def producer(env):
            yield env.timeout(2.0)
            yield store.put("only")

        env.process(impatient(env))
        env.process(patient(env))
        env.process(producer(env))
        env.run()
        assert outcome == ["only"]


class TestPriorityStore:
    def test_items_retrieved_in_key_order(self):
        env = Environment()
        store = PriorityStore(env, key=lambda item: item[0])
        for entry in [(3, "c"), (1, "a"), (2, "b")]:
            store.put(entry)
        received = []

        def consumer(env):
            for _ in range(3):
                item = yield store.get()
                received.append(item[1])

        env.process(consumer(env))
        env.run()
        assert received == ["a", "b", "c"]

    def test_sorted_items_nondestructive(self):
        env = Environment()
        store = PriorityStore(env, key=lambda item: item)
        for v in (5, 1, 3):
            store.put(v)
        env.run()
        assert store.sorted_items == [1, 3, 5]
        assert len(store) == 3

    def test_late_low_key_item_jumps_queue(self):
        env = Environment()
        store = PriorityStore(env, key=lambda item: item)
        received = []

        def consumer(env):
            for _ in range(3):
                item = yield store.get()
                received.append((item, env.now))
                yield env.timeout(1.0)

        def producer(env):
            yield store.put(10)
            yield store.put(20)
            yield env.timeout(0.5)
            yield store.put(1)  # arrives while 10 is being "processed"

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert [item for item, _ in received] == [10, 1, 20]
